"""FIG5 — Integrated vs Decomposed (paper Figure 5).

The headline comparison: the integrated method must always be tighter,
with improvement growing with network size at moderate loads.
"""

from repro.core.integrated import IntegratedAnalysis
from repro.eval.figures import figure5
from repro.eval.tables import render_figure
from repro.eval.workloads import Sweep
from repro.network.tandem import CONNECTION0, build_tandem

from benchmarks.conftest import emit


def test_fig5_regenerate(benchmark, bench_sweep):
    """Regenerate Figure 5 (timed on a single-load sub-sweep)."""
    small = Sweep(loads=(0.5,), hops=(2, 4, 8))
    benchmark.pedantic(figure5, args=(small,), rounds=3, iterations=1)
    sweep = Sweep(loads=bench_sweep.loads, hops=(2, 4, 8))
    fig = figure5(sweep)
    emit("FIG5: Integrated vs Decomposed", render_figure(fig))
    # shape assertion: integrated always tighter
    for s in fig.improvement_series:
        assert all(v > 0 for v in s.values)


def test_fig5_integrated_n8(benchmark):
    """Time Algorithm Integrated on the n=8, U=0.9 tandem."""
    net = build_tandem(8, 0.9)
    analyzer = IntegratedAnalysis()
    result = benchmark.pedantic(
        lambda: analyzer.analyze(net).delay_of(CONNECTION0),
        rounds=3, iterations=1)
    assert result > 0


def test_fig5_integrated_theorem1_only_n8(benchmark):
    """Time the Theorem-1-only variant (no theta optimization)."""
    net = build_tandem(8, 0.9)
    analyzer = IntegratedAnalysis(use_family_kernel=False)
    result = benchmark(lambda: analyzer.analyze(net)
                       .delay_of(CONNECTION0))
    assert result > 0
