"""BENCH-KERNELS — exact vs grid curve-kernel comparison.

Two legs, both driven through the public
:mod:`repro.curves.operations` dispatch so the numbers include the
façade overhead a real analysis pays:

* a **mixed-convexity convolution microbench** — the workload that
  used to force the sampled-grid fallback.  The exact kernel's
  decompose-convolve-envelope path must beat the grid backend's
  O(n²) sampled inf by at least ``MIN_SPEEDUP``x wall-clock;
* a **tandem sweep tightness leg** — every analyzer bound on the
  paper's tandem sweep computed under both kernels.  The exact bound
  must be <= the grid bound at every point (the grid backend pads for
  soundness, so losing to it means a kernel regression), and the
  artifact records the tightness gap the exact kernel buys.

Runs two ways:

* ``python benchmarks/bench_kernels.py`` — standalone, writes the
  root-level ``BENCH_kernels.json`` (via ``_artifacts``) and exits
  non-zero on a gate failure.  ``REPRO_BENCH_QUICK=1`` selects the
  reduced CI configuration.
* ``pytest benchmarks/bench_kernels.py`` — the quick run as a test.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.context import AnalysisContext, MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.curves.kernels import use_kernel
from repro.curves.operations import convolve, deconvolve
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.eval.workloads import default_sweep, quick_sweep
from repro.network.tandem import CONNECTION0, build_tandem

#: The exact kernel must beat the grid backend by this factor on the
#: mixed-convexity convolution microbench (observed: >100x).
MIN_SPEEDUP = 2.0

ANALYZERS = {
    "integrated": IntegratedAnalysis,
    "decomposed": DecomposedAnalysis,
    "service_curve": ServiceCurveAnalysis,
}


def _mixed_pairs(n: int) -> list[tuple[PiecewiseLinearCurve,
                                       PiecewiseLinearCurve]]:
    """Deterministic mixed-convexity (f, g) operand pairs.

    ``rate_latency ∧ affine`` is convex near 0 and concave beyond —
    neither closed form applies, so the exact kernel takes its general
    decomposition path and the grid backend samples.
    """
    pairs = []
    for i in range(n):
        burst = 1.0 + 0.37 * i
        rho = 0.1 + 0.05 * (i % 7)
        rate = rho + 0.5 + 0.11 * (i % 5)
        latency = 0.3 + 0.21 * (i % 4)
        mixed = PiecewiseLinearCurve.rate_latency(
            rate, latency).minimum(PiecewiseLinearCurve.affine(burst, rho))
        srv = PiecewiseLinearCurve.rate_latency(rate + 0.7,
                                               1.0 + 0.13 * (i % 3))
        pairs.append((mixed.simplified(), srv))
    return pairs


def _time_kernel(kernel: str, pairs, repeats: int) -> float:
    """Wall-clock seconds for *repeats* passes of ⊗ over *pairs*."""
    with use_kernel(kernel):
        t0 = time.perf_counter()
        for _ in range(repeats):
            for f, g in pairs:
                convolve(f, g)
        return time.perf_counter() - t0


def _microbench(quick: bool) -> dict:
    n_pairs, repeats = (4, 2) if quick else (8, 5)
    pairs = _mixed_pairs(n_pairs)
    # warm-up (numpy allocator, branch caches), then measure
    _time_kernel("exact", pairs, 1)
    _time_kernel("grid", pairs, 1)
    t_exact = _time_kernel("exact", pairs, repeats)
    t_grid = _time_kernel("grid", pairs, repeats)
    ops = n_pairs * repeats
    return {
        "operation": "convolve[mixed-convexity]",
        "ops": ops,
        "exact_s": t_exact,
        "grid_s": t_grid,
        "exact_us_per_op": 1e6 * t_exact / ops,
        "grid_us_per_op": 1e6 * t_grid / ops,
        "speedup": t_grid / max(t_exact, 1e-12),
    }


def _deconv_agreement(quick: bool) -> dict:
    """Exact ⊘ vs padded grid ⊘ on the microbench operands (no gate:
    covered by the ``exact_grid`` validation oracle — recorded here so
    the artifact shows the pad the grid backend pays)."""
    pairs = _mixed_pairs(2 if quick else 4)
    worst_pad = 0.0
    for _, srv in pairs:
        arr = PiecewiseLinearCurve.affine(2.0, 0.2)
        exact = deconvolve(arr, srv, kernel="exact")
        grid = deconvolve(arr, srv, kernel="grid")
        worst_pad = max(worst_pad, float(grid(0.0) - exact(0.0)))
    return {"operation": "deconvolve", "worst_burst_pad": worst_pad}


def _sweep_tightness(quick: bool) -> list[dict]:
    sweep = quick_sweep() if quick else default_sweep(hops=(2, 4, 6, 8))
    rows = []
    for name, cls in ANALYZERS.items():
        analyzer = cls()
        for hops in sweep.hops:
            for load in sweep.loads:
                net = build_tandem(hops, float(load), sweep.sigma)
                bounds = {}
                fallbacks = {}
                for kernel in ("exact", "grid"):
                    reg = MetricsRegistry()
                    ctx = AnalysisContext(metrics=reg, kernel=kernel)
                    report = analyzer.analyze(net, ctx=ctx)
                    bounds[kernel] = report.delay_of(CONNECTION0)
                    fallbacks[kernel] = reg.get("curve.fallbacks")
                rows.append({
                    "analyzer": name,
                    "hops": hops,
                    "load": float(load),
                    "exact": bounds["exact"],
                    "grid": bounds["grid"],
                    "gap": bounds["grid"] - bounds["exact"],
                    "exact_fallbacks": fallbacks["exact"],
                })
    return rows


def run_bench(quick: bool) -> dict:
    failures: list[str] = []

    micro = _microbench(quick)
    if micro["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"microbench: exact only {micro['speedup']:.2f}x faster "
            f"than grid (gate: >= {MIN_SPEEDUP:g}x)")

    rows = _sweep_tightness(quick)
    for row in rows:
        if row["exact"] > row["grid"] + 1e-12:
            failures.append(
                f"tightness: exact bound {row['exact']:.9g} exceeds "
                f"grid bound {row['grid']:.9g} "
                f"({row['analyzer']}, n={row['hops']}, U={row['load']:g})")
        if row["exact_fallbacks"]:
            failures.append(
                f"exact path fell back {row['exact_fallbacks']:g}x "
                f"({row['analyzer']}, n={row['hops']}, U={row['load']:g})")

    return {
        "quick": quick,
        "min_speedup_gate": MIN_SPEEDUP,
        "microbench": micro,
        "deconvolve": _deconv_agreement(quick),
        "sweep": rows,
        "failures": failures,
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------

def test_kernels_bench_quick():
    result = run_bench(quick=True)
    assert result["failures"] == []
    assert result["microbench"]["speedup"] >= MIN_SPEEDUP
    assert all(row["gap"] >= -1e-12 for row in result["sweep"])


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------

def main() -> int:
    try:  # package import (pytest / repo root) or script-dir import
        from benchmarks._artifacts import bench_quick, write_artifact
    except ImportError:
        from _artifacts import bench_quick, write_artifact

    quick = bench_quick()
    result = run_bench(quick=quick)
    out = write_artifact("kernels", result)
    micro = result["microbench"]
    worst = max(result["sweep"], key=lambda r: r["gap"])
    size = "quick" if quick else "full"
    print(f"BENCH-KERNELS ({size}): mixed ⊗ exact "
          f"{micro['exact_us_per_op']:.0f}us vs grid "
          f"{micro['grid_us_per_op']:.0f}us per op "
          f"({micro['speedup']:.1f}x); {len(result['sweep'])} sweep "
          f"points, worst grid-vs-exact gap {worst['gap']:.4g} "
          f"({worst['analyzer']}, n={worst['hops']}, "
          f"U={worst['load']:g}) -> {out}")
    for failure in result["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if result["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
