"""ABL3 — burstiness ablation.

The paper asserts (§4.1) that increasing source burstiness (larger
sigma) raises absolute delays but leaves the *relative* improvement
R_{X,Y} essentially unchanged.  This bench regenerates that claim.
"""

import pytest

from repro.analysis.comparison import relative_improvement
from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.network.tandem import CONNECTION0, build_tandem

from benchmarks.conftest import emit


SIGMAS = (0.5, 1.0, 2.0, 4.0)


def improvements(n=4, u=0.6):
    out = {}
    for sigma in SIGMAS:
        net = build_tandem(n, u, sigma=sigma)
        dd = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)
        di = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
        out[sigma] = (dd, di, relative_improvement(dd, di))
    return out


def test_ablation_burstiness_table(benchmark):
    rows = ["sigma    D_decomposed    D_integrated    R[dec,int]"]
    data = benchmark.pedantic(improvements, rounds=1, iterations=1)
    for sigma, (dd, di, r) in data.items():
        rows.append(f"{sigma:5.2f}  {dd:14.4f}  {di:14.4f}  {r:10.4f}")
    emit("ABL3: burstiness ablation (n=4, U=0.6)", "\n".join(rows))
    # absolute delays scale ~linearly with sigma...
    assert data[4.0][0] > data[0.5][0]
    # ...while the relative improvement barely moves (paper claim)
    rs = [r for (_, _, r) in data.values()]
    assert max(rs) - min(rs) < 0.05


def test_ablation_burstiness_timing(benchmark):
    result = benchmark.pedantic(improvements, rounds=2, iterations=1)
    assert result


def test_delays_scale_linearly_with_sigma(benchmark):
    """All three bounds are homogeneous of degree 1 in sigma."""
    benchmark.pedantic(lambda: build_tandem(3, 0.5), rounds=1,
                       iterations=1)
    for analyzer in (DecomposedAnalysis(), IntegratedAnalysis()):
        d1 = analyzer.analyze(build_tandem(3, 0.5, sigma=1.0)) \
            .delay_of(CONNECTION0)
        d3 = analyzer.analyze(build_tandem(3, 0.5, sigma=3.0)) \
            .delay_of(CONNECTION0)
        assert d3 == pytest.approx(3.0 * d1, rel=1e-6)
