"""XOVER — the Figure-4 compounding effect, located precisely.

Bisects (on the exact closed forms) for the load at which the
service-curve and decomposition bounds swap order, per tandem size —
turning the paper's qualitative "partly offset by the compounding
effects" remark into a measured curve U*(n).
"""

from repro.eval.crossover import crossover_table, find_crossover

from benchmarks.conftest import emit

SIZES = (2, 4, 6, 8, 10, 12, 16)


def test_crossover_table(benchmark):
    table = benchmark.pedantic(lambda: crossover_table(SIZES),
                               rounds=1, iterations=1)
    emit("XOVER: load U* where D_SC crosses D_D per tandem size",
         table)


def test_crossover_monotone_in_size(benchmark):
    """U*(n) must be nondecreasing where it exists — more hops, more
    compounding, longer service-curve advantage."""
    benchmark.pedantic(lambda: find_crossover(6), rounds=1, iterations=1)
    loads = [find_crossover(n).load for n in (6, 8, 10, 12)]
    assert all(a <= b + 1e-9 for a, b in zip(loads, loads[1:]))
