"""ABL1 — theta-search resolution ablation for the family kernel.

The theta-family kernel sweeps a coarse (theta1, theta2) grid and
optionally polishes with Nelder–Mead.  This bench quantifies the
tightness/runtime trade-off of the grid resolution — the integrated
method's only tunable knob.
"""

import pytest

from repro.core.fifo_family import family_pair_bound
from repro.curves.token_bucket import TokenBucket

from benchmarks.conftest import emit


def subsystem_curves(u=0.8):
    rho = u / 4.0
    b = TokenBucket(1.0, rho, peak=1.0).constraint_curve()
    return (b + b).simplified(), b, (b + b).simplified()


RESOLUTIONS = (5, 9, 17, 25, 41)


def test_ablation_theta_table(benchmark):
    f12, f1, f2 = benchmark.pedantic(subsystem_curves, rounds=1, iterations=1)
    rows = ["coarse   refine    bound"]
    for coarse in RESOLUTIONS:
        for refine in (False, True):
            res = family_pair_bound(f12, f1, f2, 1.0, 1.0,
                                    coarse=coarse, refine=refine)
            rows.append(f"{coarse:6d}   {str(refine):6s} "
                        f"{res.delay_through:10.6f}")
    emit("ABL1: theta-grid resolution ablation (pair at U=0.8)",
         "\n".join(rows))


@pytest.mark.parametrize("coarse", [5, 25])
def test_ablation_theta_timing(benchmark, coarse):
    f12, f1, f2 = subsystem_curves()
    res = benchmark(lambda: family_pair_bound(
        f12, f1, f2, 1.0, 1.0, coarse=coarse))
    assert res.delay_through > 0


def test_refinement_monotone(benchmark):
    """Finer grids and refinement can only tighten the bound."""
    f12, f1, f2 = benchmark.pedantic(subsystem_curves, rounds=1,
                                     iterations=1)
    bounds = [family_pair_bound(f12, f1, f2, 1.0, 1.0, coarse=c,
                                refine=False).delay_through
              for c in RESOLUTIONS]
    refined = family_pair_bound(f12, f1, f2, 1.0, 1.0, coarse=25,
                                refine=True).delay_through
    # not strictly monotone (grids are not nested), but the refined
    # bound must be at least as tight as every coarse sweep here
    assert refined <= min(bounds) + 1e-9
