"""ADM1 — admission capacity per analysis algorithm.

The paper motivates tighter delay analysis through connection admission
(§1): "some real time connections may be rejected ... even though the
network can guarantee their QoS requirements".  This bench quantifies
the effect: identical deadline-constrained connections are admitted
onto a 4-hop tandem until first rejection, per analyzer.
"""

from repro.eval.admission_capacity import admission_capacity, capacity_table

from benchmarks.conftest import emit

ANALYZERS = ("service_curve", "decomposed", "integrated")
DEADLINES = (10.0, 20.0, 40.0)


def test_admission_capacity_table(benchmark):
    table = benchmark.pedantic(
        lambda: capacity_table(ANALYZERS, 4, DEADLINES, rho=0.02,
                               max_tries=120),
        rounds=1, iterations=1)
    emit("ADM1: connections admitted on a 4-hop tandem "
         "(identical requests, rho=0.02)", table)


def test_integrated_admits_most(benchmark):
    counts = {a: benchmark.pedantic(
        lambda a=a: admission_capacity(a, 4, 20.0, rho=0.02,
                                       max_tries=120).admitted,
        rounds=1, iterations=1) if a == "integrated" else
        admission_capacity(a, 4, 20.0, rho=0.02, max_tries=120).admitted
        for a in ANALYZERS}
    assert counts["integrated"] >= counts["decomposed"]
    assert counts["decomposed"] >= 1
