"""FIG6 — Integrated vs Service Curve (paper Figure 6).

The paper notes the gains are "significant, except for large systems
under high load"; the regenerated improvement panel shows exactly that
taper (R decreasing in n at U=0.9).
"""

from repro.eval.figures import figure6
from repro.eval.tables import render_figure
from repro.eval.workloads import Sweep

from benchmarks.conftest import emit


def test_fig6_regenerate(benchmark, bench_sweep):
    """Regenerate Figure 6 (timed on a single-load sub-sweep)."""
    small = Sweep(loads=(0.5,), hops=(2, 4, 6, 8))
    benchmark.pedantic(figure6, args=(small,), rounds=3, iterations=1)
    fig = figure6(bench_sweep)
    emit("FIG6: Integrated vs Service Curve", render_figure(fig))
    for s in fig.improvement_series:
        assert all(v > 0 for v in s.values)
    # the paper's taper: at the highest load the improvement shrinks
    # with network size
    at_high = {s.label: s.values[-1] for s in fig.improvement_series}
    r2 = at_high["R[service_curve,integrated] (n=2)"]
    r8 = at_high["R[service_curve,integrated] (n=8)"]
    assert r8 < r2
