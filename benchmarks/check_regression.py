"""Bench-regression guard: fresh ``BENCH_*.json`` vs committed baselines.

Compares the artifacts the benchmarks just wrote against the expectation
files in ``benchmarks/baselines/`` and exits non-zero on any regression.
Run it after the benches::

    python benchmarks/check_regression.py            # every baseline
    python benchmarks/check_regression.py store      # one bench

Baseline format (one JSON file per bench)::

    {
      "artifact": "store",              # checks BENCH_store.json
      "checks": {
        "bit_identical":      {"equals": true},
        "warm_cold_computes": {"max": 0},
        "readmit_speedup":    {"min": 1.5},
        "mismatches":         {"empty": true},
        "engine_stats.hits":  {"min": 1}        # dotted = nested
      }
    }

Supported predicates per metric:

``equals``
    Exact equality (bools, strings, counts).
``min`` / ``max``
    Absolute floor / ceiling — the right shape for speedup gates,
    which must hold on any machine.
``empty``
    The value is an empty list/dict (mismatch and failure lists).
``value`` + ``tolerance`` (+ optional ``direction``)
    Relative band around a recorded reference: with direction
    ``higher`` (default) the fresh value must be at least
    ``value * (1 - tolerance)``; with ``lower`` at most
    ``value * (1 + tolerance)``.  Use for timing-derived metrics where
    an absolute floor would be too machine-dependent.

Artifacts are located the same way the benches write them: the repo
root, or ``REPRO_BENCH_DIR`` when set — so CI can point both sides at
a scratch directory.  A baseline whose artifact is missing is a
failure (the bench did not run), unless ``--allow-missing`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:  # package import (repo root) or script-dir import
    from benchmarks._artifacts import artifact_path
except ImportError:
    from _artifacts import artifact_path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def lookup(record: dict, dotted: str):
    """Resolve ``a.b.c`` inside nested dicts; KeyError when absent."""
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def check_metric(name: str, value, spec: dict) -> str | None:
    """One predicate; returns a failure description or None."""
    if "equals" in spec and value != spec["equals"]:
        return f"{name} = {value!r}, expected {spec['equals']!r}"
    if spec.get("empty") and value:
        shown = value if isinstance(value, (int, float)) else len(value)
        return f"{name} expected empty, got {shown} item(s)"
    if "min" in spec or "max" in spec or "value" in spec:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return f"{name} = {value!r} is not numeric"
        if "min" in spec and value < spec["min"]:
            return f"{name} = {value:g} < floor {spec['min']:g}"
        if "max" in spec and value > spec["max"]:
            return f"{name} = {value:g} > ceiling {spec['max']:g}"
        if "value" in spec:
            ref = float(spec["value"])
            tol = float(spec.get("tolerance", 0.0))
            if spec.get("direction", "higher") == "lower":
                ceiling = ref * (1.0 + tol)
                if value > ceiling:
                    return (f"{name} = {value:g} > {ceiling:g} "
                            f"(baseline {ref:g} + {tol:.0%})")
            else:
                floor = ref * (1.0 - tol)
                if value < floor:
                    return (f"{name} = {value:g} < {floor:g} "
                            f"(baseline {ref:g} - {tol:.0%})")
    return None


def check_baseline(path: Path, *,
                   allow_missing: bool = False) -> list[str] | None:
    """All failures of one baseline file.

    Empty list = pass; ``None`` = skipped (artifact absent and
    ``allow_missing`` set).
    """
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
        name = str(baseline["artifact"])
        checks = dict(baseline["checks"])
    except (OSError, ValueError, KeyError) as exc:
        return [f"{path.name}: unreadable baseline: {exc}"]
    artifact = artifact_path(name)
    if not artifact.exists():
        if allow_missing:
            print(f"  SKIP {name}: no {artifact.name}")
            return None
        return [f"{name}: missing artifact {artifact} "
                "(bench did not run?)"]
    try:
        record = json.loads(artifact.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{name}: unreadable artifact {artifact}: {exc}"]
    failures = []
    for metric, spec in checks.items():
        try:
            value = lookup(record, metric)
        except KeyError:
            failures.append(f"{name}: metric {metric!r} missing "
                            f"from {artifact.name}")
            continue
        problem = check_metric(metric, value, spec)
        if problem is not None:
            failures.append(f"{name}: {problem}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json artifacts against "
                    "committed baselines")
    parser.add_argument("names", nargs="*",
                        help="baseline names to check (default: every "
                             "file in benchmarks/baselines/)")
    parser.add_argument("--baselines", default=str(BASELINE_DIR),
                        metavar="DIR", help="baseline directory")
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip baselines whose artifact is absent "
                             "instead of failing")
    args = parser.parse_args(argv)

    base = Path(args.baselines)
    if args.names:
        paths = [base / f"{n}.json" for n in args.names]
    else:
        paths = sorted(base.glob("*.json"))
    if not paths:
        print(f"check_regression: no baselines under {base}",
              file=sys.stderr)
        return 2

    all_failures: list[str] = []
    for path in paths:
        failures = check_baseline(path,
                                  allow_missing=args.allow_missing)
        if failures:
            all_failures.extend(failures)
        elif failures is not None:
            print(f"  ok   {path.stem}")
    if all_failures:
        print(f"{len(all_failures)} bench regression(s):",
              file=sys.stderr)
        for f in all_failures:
            print(f"  REGRESSION {f}", file=sys.stderr)
        return 1
    print(f"check_regression: {len(paths)} baseline(s) pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
