"""VAL — bound-vs-simulation tightness table (not a paper figure).

For each tandem configuration, reports the worst delay observed under
adversarial greedy traffic next to the three analytic bounds.  The
observed value must sit below every bound (soundness) and gives a feel
for each method's slack.
"""

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.network.tandem import CONNECTION0, build_tandem
from repro.sim.simulator import simulate_greedy

from benchmarks.conftest import emit

PKT = 0.05


def run_config(n, u, horizon=120.0):
    net = build_tandem(n, u)
    sim = simulate_greedy(net, horizon=horizon, packet_size=PKT)
    obs = sim.max_delay(CONNECTION0)
    di = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
    dd = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)
    dsc = ServiceCurveAnalysis().analyze(net).delay_of(CONNECTION0)
    return obs, di, dd, dsc


def test_validation_table(benchmark):
    benchmark.pedantic(lambda: run_config(2, 0.4, horizon=40.0), rounds=1, iterations=1)
    rows = ["   n     U    observed    integrated    decomposed"
            "    service-curve"]
    for n in (2, 4):
        for u in (0.4, 0.8):
            obs, di, dd, dsc = run_config(n, u)
            rows.append(f"{n:4d}  {u:.2f}  {obs:10.4f}  {di:12.4f}"
                        f"  {dd:12.4f}  {dsc:15.4f}")
            slack = PKT * n + 1e-9
            assert obs <= di + slack
            assert obs <= dd + slack
    emit("VAL: observed worst delay vs analytic bounds (Connection 0)",
         "\n".join(rows))


def test_validation_sim_timing(benchmark):
    """Time the greedy packet-level simulation (n=4, U=0.8)."""
    net = build_tandem(4, 0.8)
    result = benchmark.pedantic(
        lambda: simulate_greedy(net, horizon=60.0, packet_size=0.1),
        rounds=3, iterations=1)
    assert result.packets_completed > 0
