"""Shared bench-artifact emission: root-level ``BENCH_<name>.json``.

Every benchmark that produces a machine-readable result funnels it
through :func:`write_artifact`, which lands the payload **atomically**
(tmp + fsync + replace, via :mod:`repro.utils.durable`) at the
repository root — the one place the bench trajectory is collected
from.  A benchmark killed mid-write therefore leaves the previous
artifact intact instead of a torn JSON file.

Set ``REPRO_BENCH_DIR`` to redirect artifacts elsewhere (CI uploads,
scratch runs).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.utils.durable import atomic_write_text

__all__ = ["artifact_path", "write_artifact", "bench_quick"]

#: Repository root — benchmarks/ lives one level below it.
_REPO_ROOT = Path(__file__).resolve().parent.parent


def artifact_path(name: str) -> Path:
    """Where ``BENCH_<name>.json`` lands (root or ``REPRO_BENCH_DIR``)."""
    root = os.environ.get("REPRO_BENCH_DIR", "")
    base = Path(root) if root else _REPO_ROOT
    return base / f"BENCH_{name}.json"


def write_artifact(name: str, payload: dict) -> Path:
    """Atomically write one benchmark result; returns its path."""
    path = artifact_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def bench_quick() -> bool:
    """The shared CI switch: ``REPRO_BENCH_QUICK=1`` selects quick mode."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
