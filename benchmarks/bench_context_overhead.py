"""BENCH-CTX — cost of the AnalysisContext execution layer.

Two numbers matter after the context refactor:

* **NullContext overhead** — the default, untraced path added one
  method call per server step and one thread-local read per curve
  kernel.  Measured against a *stripped* run of the same analysis with
  the kernel-count hook disabled (the closest stand-in for the
  pre-context cold path), it must stay within ``OVERHEAD_GATE`` (5%).
  This is the regression gate: it fails the run (and CI) if the
  "free" path ever stops being free.
* **Instrumentation overhead** — the same analysis under full tracing
  + metrics.  Reported for visibility, not gated: the instrumented
  path is allowed to cost real money (it allocates a span per step).

Runs two ways:

* ``python benchmarks/bench_context_overhead.py`` — standalone, writes
  ``BENCH_context.json`` and exits non-zero when the NullContext gate
  fails.  ``REPRO_BENCH_QUICK=1`` selects the reduced CI workload.
* ``pytest benchmarks/bench_context_overhead.py`` — the gate as a test.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager

from repro.analysis.decomposed import DecomposedAnalysis
from repro.context import AnalysisContext
from repro.curves import numeric, operations, piecewise
from repro.network.generators import random_feedforward

SEED = 2026
FULL = {"n_servers": 24, "n_flows": 160, "reps": 5}
QUICK = {"n_servers": 12, "n_flows": 48, "reps": 5}
#: NullContext may cost at most this fraction over the stripped path.
OVERHEAD_GATE = 0.05
#: Re-measure up to this many times before declaring the gate failed —
#: scheduler noise on shared CI runners dwarfs the effect under test.
GATE_ATTEMPTS = 3

_KERNEL_MODULES = (piecewise, numeric, operations)


@contextmanager
def _kernel_counting_disabled():
    """Replace the curve kernels' count hook with a bare no-op.

    This approximates the pre-context cold path: the kernels keep one
    function call per operation but lose the thread-local lookup.
    """
    noop = lambda name, n=1.0: None  # noqa: E731
    saved = [(m, m.kernel_count) for m in _KERNEL_MODULES]
    for m in _KERNEL_MODULES:
        m.kernel_count = noop
    try:
        yield
    finally:
        for m, fn in saved:
            m.kernel_count = fn


def _timed_run(analyzer, net, ctx=None) -> float:
    t0 = time.perf_counter()
    if ctx is None:
        analyzer.analyze(net)
    else:
        analyzer.analyze(net, ctx=ctx)
    return time.perf_counter() - t0


def measure(quick: bool = False) -> dict:
    """One measurement pass; returns the result record.

    The three variants are timed *interleaved* (one rep of each per
    round, best-of overall) so clock-speed drift hits them equally
    instead of biasing whichever ran last.
    """
    cfg = QUICK if quick else FULL
    net = random_feedforward(seed=SEED, n_servers=cfg["n_servers"],
                             n_flows=cfg["n_flows"], max_utilization=0.8)
    analyzer = DecomposedAnalysis()
    _timed_run(analyzer, net)  # warm caches before timing anything

    stripped_s = null_s = traced_s = float("inf")
    for _ in range(cfg["reps"]):
        with _kernel_counting_disabled():
            stripped_s = min(stripped_s, _timed_run(analyzer, net))
        null_s = min(null_s, _timed_run(analyzer, net))
        traced_s = min(traced_s, _timed_run(
            analyzer, net, ctx=AnalysisContext.tracing()))

    null_overhead = null_s / stripped_s - 1.0
    return {
        "benchmark": "context_overhead",
        "quick": quick,
        "config": {**cfg, "seed": SEED, "analyzer": "decomposed"},
        "stripped_s": stripped_s,
        "nullcontext_s": null_s,
        "traced_s": traced_s,
        "nullcontext_overhead": null_overhead,
        "instrumented_overhead": traced_s / stripped_s - 1.0,
        "gate": OVERHEAD_GATE,
        "gate_ok": null_overhead <= OVERHEAD_GATE,
    }


def measure_gated(quick: bool = False) -> dict:
    """Measure, retrying on gate failure to shrug off scheduler noise."""
    result = measure(quick)
    for _ in range(GATE_ATTEMPTS - 1):
        if result["gate_ok"]:
            break
        result = measure(quick)
    return result


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------

def test_nullcontext_overhead_within_gate():
    result = measure_gated(quick=True)
    assert result["gate_ok"], (
        f"NullContext path costs {result['nullcontext_overhead']:.1%} "
        f"over the stripped analysis (gate {OVERHEAD_GATE:.0%}); "
        "the default path must stay allocation-light")


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------

def main() -> int:
    try:  # package import (pytest / repo root) or script-dir import
        from benchmarks._artifacts import bench_quick, write_artifact
    except ImportError:
        from _artifacts import bench_quick, write_artifact

    quick = bench_quick()
    result = measure_gated(quick=quick)
    out = write_artifact("context", result)
    size = "quick" if quick else "full"
    print(f"BENCH-CTX ({size}): stripped {result['stripped_s']:.4f}s, "
          f"null {result['nullcontext_s']:.4f}s "
          f"({result['nullcontext_overhead']:+.1%}), "
          f"traced {result['traced_s']:.4f}s "
          f"({result['instrumented_overhead']:+.1%}) -> {out}")
    if not result["gate_ok"]:
        print(f"FAIL: NullContext overhead "
              f"{result['nullcontext_overhead']:.1%} > "
              f"{OVERHEAD_GATE:.0%} gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
