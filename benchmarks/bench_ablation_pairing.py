"""ABL2 — partition-strategy ablation for Algorithm Integrated.

Compares the through-connection bound under three partitionings of the
same tandem: singletons (== capped decomposition), pairing along
Connection 0's path (the paper's setup), and greedy heaviest-edge
pairing.  Shows where the two-server integration itself (vs. mere
line-rate capping) contributes.
"""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.core.partition import (
    GreedyPairing,
    PairAlongPath,
    SingletonPartition,
)
from repro.network.tandem import CONNECTION0, build_tandem

from benchmarks.conftest import emit


STRATEGIES = {
    "singletons": SingletonPartition,
    "pair-along-path": PairAlongPath,
    "greedy": GreedyPairing,
}


def _table():
    lines = ["   n     U    decomposed    singletons    pair-path"
             "       greedy"]
    for n in (2, 4, 8):
        for u in (0.3, 0.6, 0.9):
            net = build_tandem(n, u)
            dec = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)
            row = [f"{n:4d}  {u:.2f}  {dec:12.4f}"]
            for factory in STRATEGIES.values():
                d = IntegratedAnalysis(strategy=factory()) \
                    .analyze(net).delay_of(CONNECTION0)
                row.append(f"{d:12.4f}")
            lines.append("  ".join(row))
    return "\n".join(lines)


def test_ablation_pairing_table(benchmark):
    table = benchmark.pedantic(_table, rounds=1, iterations=1)
    emit("ABL2: partition-strategy ablation (Connection 0 bound)", table)


@pytest.mark.parametrize("name", list(STRATEGIES))
def test_ablation_pairing_timing(benchmark, name):
    """Time Algorithm Integrated under each partitioning (n=6)."""
    net = build_tandem(6, 0.7)
    analyzer = IntegratedAnalysis(strategy=STRATEGIES[name]())
    result = benchmark.pedantic(
        lambda: analyzer.analyze(net).delay_of(CONNECTION0),
        rounds=3, iterations=1)
    assert result > 0


def test_pairing_beats_singletons(benchmark):
    """The two-server integration must add value over capping alone."""
    net = benchmark.pedantic(lambda: build_tandem(6, 0.7), rounds=1,
                             iterations=1)
    single = IntegratedAnalysis(strategy=SingletonPartition()) \
        .analyze(net).delay_of(CONNECTION0)
    paired = IntegratedAnalysis(strategy=PairAlongPath()) \
        .analyze(net).delay_of(CONNECTION0)
    assert paired <= single + 1e-9
