"""TGT — tightness study: adversarial observation vs analytic bounds.

Complements VAL: instead of synchronized bursts, the cross traffic is
staggered to hit the target flow's front at each hop (the analysis-
guided adversary), giving the strongest empirical lower bound on the
true worst case that the simulator produces.
"""

from repro.eval.tightness import render_tightness, tightness_study

from benchmarks.conftest import emit


def test_tightness_table(benchmark):
    rows = benchmark.pedantic(
        lambda: tightness_study(horizon=100.0), rounds=1, iterations=1)
    emit("TGT: observed (adversarial) vs bounds, longest flow",
         render_tightness(rows))
    # integrated must always sit between the observation and decomposed
    for r in rows:
        assert r.observed <= r.integrated + 0.05 * 8 + 1e-9
        assert r.integrated <= r.decomposed + 1e-9
