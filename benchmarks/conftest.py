"""Benchmark harness configuration.

Each ``bench_*.py`` file regenerates one paper artifact (figure) or one
ablation (DESIGN.md experiment index).  Every module both *times* the
computation via pytest-benchmark and *prints* the regenerated data table
so that ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's evaluation output in one run.
"""

from __future__ import annotations

import pytest

from repro.eval.workloads import Sweep


@pytest.fixture(scope="session")
def bench_sweep() -> Sweep:
    """Load grid used by the figure benchmarks.

    The full paper grid (9 loads) is used for data generation; timing
    rounds run on the smallest case to keep wall-clock sane.
    """
    return Sweep(loads=(0.1, 0.3, 0.5, 0.7, 0.9), hops=(2, 4, 6, 8))


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact (visible with ``-s``)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}")
