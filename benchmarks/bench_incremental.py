"""BENCH-INC — incremental engine vs cold admission throughput.

Measures what the engine buys on the admission-control workload the
paper motivates (§1): repeated delay analyses of networks differing by
one flow.  Workload: a 32-server / 256-flow random feed-forward
network; each cycle releases one established flow and re-admits it,
timing the two analyses engine-backed vs cold.

Every engine report is compared against the cold report of the same
network — a single non-bit-identical bound fails the run.

Runs two ways:

* ``python benchmarks/bench_incremental.py`` — standalone, writes
  ``BENCH_incremental.json`` to the working directory and exits
  non-zero on mismatch (or, full size only, on speedup < 5x).  Set
  ``REPRO_BENCH_QUICK=1`` for the reduced CI configuration (smaller
  network, identity checked, no speedup gate).
* ``pytest benchmarks/bench_incremental.py`` — the same run as a test.
"""

from __future__ import annotations

import random
import sys
import time

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.engine import (
    IncrementalEngine,
    describe_report_difference,
    reports_identical,
)
from repro.network.generators import random_feedforward

SEED = 2026
FULL = {"n_servers": 32, "n_flows": 256, "n_cycles": 8}
QUICK = {"n_servers": 12, "n_flows": 48, "n_cycles": 3}
SPEEDUP_FLOOR = 5.0  # acceptance: engine >= 5x cold on the full config


def _workload(n_servers: int, n_flows: int):
    return random_feedforward(seed=SEED, n_servers=n_servers,
                              n_flows=n_flows, max_utilization=0.8)


def run_bench(quick: bool = False) -> dict:
    """Run the cold-vs-engine comparison; returns the result record."""
    cfg = QUICK if quick else FULL
    net = _workload(cfg["n_servers"], cfg["n_flows"])
    cold = DecomposedAnalysis()
    engine = IncrementalEngine(DecomposedAnalysis(), net)

    t0 = time.perf_counter()
    warm_report = engine.query()
    warm_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold_report = cold.analyze(net)
    cold_full_s = time.perf_counter() - t0
    mismatches: list[str] = []
    if not reports_identical(warm_report, cold_report):
        mismatches.append("warmup: "
                          + str(describe_report_difference(warm_report,
                                                           cold_report)))

    picks = random.Random(7).sample(sorted(net.flows), cfg["n_cycles"])
    t_rel = {"engine": 0.0, "cold": 0.0}
    t_adm = {"engine": 0.0, "cold": 0.0}
    for name in picks:
        flow = net.flows[name]
        t0 = time.perf_counter()
        r_rel = engine.release(name)
        t_rel["engine"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        r_adm = engine.admit(flow)
        t_adm["engine"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        c_rel = cold.analyze(net.without_flow(name))
        t_rel["cold"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        c_adm = cold.analyze(net)
        t_adm["cold"] += time.perf_counter() - t0
        for tag, r, c in (("release", r_rel, c_rel),
                          ("admit", r_adm, c_adm)):
            if not reports_identical(r, c):
                mismatches.append(
                    f"{tag} {name}: "
                    + str(describe_report_difference(r, c)))

    n = cfg["n_cycles"]
    per_cold = (t_rel["cold"] + t_adm["cold"]) / (2 * n)
    per_engine = (t_rel["engine"] + t_adm["engine"]) / (2 * n)
    readmit_speedup = (t_adm["cold"] / t_adm["engine"]
                       if t_adm["engine"] else None)
    return {
        "benchmark": "incremental_admission",
        "quick": quick,
        "config": {**cfg, "seed": SEED, "analyzer": "decomposed"},
        "cold_full_analysis_s": cold_full_s,
        "engine_warmup_s": warm_s,
        "cold_per_admission_test_s": per_cold,
        "engine_per_admission_test_s": per_engine,
        "cold_tests_per_s": 1.0 / per_cold if per_cold else None,
        "engine_tests_per_s": 1.0 / per_engine if per_engine else None,
        "speedup": per_cold / per_engine if per_engine else None,
        "release_speedup": (t_rel["cold"] / t_rel["engine"]
                            if t_rel["engine"] else None),
        "readmit_speedup": readmit_speedup,
        "cache_hit_rate": engine.stats.hit_rate,
        "engine_stats": engine.stats.as_dict(),
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }


def integrated_identity_check(ops: int = 6) -> list[str]:
    """Differential admit/release identity for Algorithm Integrated.

    Run at reduced size (Theorem 1 blocks are much heavier than
    decomposition steps); any difference string returned is a failure.
    """
    net = _workload(QUICK["n_servers"], QUICK["n_flows"])
    cold = IntegratedAnalysis()
    engine = IncrementalEngine(IntegratedAnalysis(), net)
    mismatches: list[str] = []
    picks = random.Random(11).sample(sorted(net.flows), ops // 2)
    for name in picks:
        flow = net.flows[name]
        pairs = [
            (engine.release(name), cold.analyze(net.without_flow(name))),
            (engine.admit(flow), cold.analyze(net)),
        ]
        for r, c in pairs:
            if not reports_identical(r, c):
                mismatches.append(
                    f"integrated {name}: "
                    + str(describe_report_difference(r, c)))
    return mismatches


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_incremental_bit_identical_and_faster():
    result = run_bench(quick=True)
    assert result["bit_identical"], result["mismatches"]
    assert result["speedup"] is not None and result["speedup"] > 1.0


def test_incremental_integrated_identity():
    assert integrated_identity_check() == []


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------

def main() -> int:
    try:  # package import (pytest / repo root) or script-dir import
        from benchmarks._artifacts import bench_quick, write_artifact
    except ImportError:
        from _artifacts import bench_quick, write_artifact

    quick = bench_quick()
    result = run_bench(quick=quick)
    result["integrated_mismatches"] = integrated_identity_check()

    out = write_artifact("incremental", result)
    size = "quick" if quick else "full"
    print(f"BENCH-INC ({size}): cold {result['cold_per_admission_test_s']:.4f}s"
          f" vs engine {result['engine_per_admission_test_s']:.4f}s per"
          f" admission test — overall {result['speedup']:.2f}x,"
          f" re-admission {result['readmit_speedup']:.2f}x, cache"
          f" hit rate {result['cache_hit_rate']:.1%} -> {out}")

    failures = list(result["mismatches"]) + result["integrated_mismatches"]
    for m in failures:
        print(f"MISMATCH: {m}", file=sys.stderr)
    if not quick and result["readmit_speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: re-admission speedup "
              f"{result['readmit_speedup']:.2f}x < "
              f"{SPEEDUP_FLOOR:g}x floor", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
