"""KERN — micro-benchmarks of the min-plus curve kernels.

The curve algebra is the hot path of every analysis (profiling shows
>80% of analysis time inside curve operations), so its primitives are
tracked here: exact convolution, horizontal deviation, aggregate
summation, and the sampled-grid convolution fallback.
"""

import numpy as np
import pytest

from repro.context import MetricsRegistry, activate_registry
from repro.curves import numeric
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket, aggregate_curve
from repro.utils.grid import make_grid


def many_bucket_curves(k=32):
    return [TokenBucket(1.0 + 0.1 * i, 0.01 + 0.002 * i, peak=1.0)
            for i in range(k)]


def test_kern_aggregate_32_flows(benchmark):
    buckets = many_bucket_curves(32)
    agg = benchmark(lambda: aggregate_curve(buckets))
    assert agg.long_term_rate() > 0


def test_kern_hdev_large_aggregate(benchmark):
    agg = aggregate_curve(many_bucket_curves(32))
    line = P.line(1.5)
    d = benchmark(lambda: agg.horizontal_deviation(line))
    assert d > 0


def test_kern_exact_convex_convolution(benchmark):
    curves = [P.rate_latency(1.0 - 0.01 * i, 0.5 + 0.1 * i)
              for i in range(16)]

    def chain():
        acc = curves[0]
        for c in curves[1:]:
            acc = acc.convolve(c)
        return acc

    out = benchmark(chain)
    assert out.final_slope == pytest.approx(1.0 - 0.15)


def test_kern_grid_convolution_4096(benchmark):
    grid = make_grid(50.0, 4096)
    f = numeric.sample(P.affine(1.0, 0.2), grid)
    g = numeric.sample(P.rate_latency(1.0, 2.0), grid)
    out = benchmark(lambda: numeric.grid_convolve(f, g))
    assert np.isfinite(out).all()


def test_kern_pseudo_inverse_vectorized(benchmark):
    agg = aggregate_curve(many_bucket_curves(16))
    targets = np.linspace(0.0, float(agg(100.0)), 512)
    out = benchmark(lambda: agg.pseudo_inverse(targets))
    assert np.all(np.diff(out) >= -1e-9)


def test_kern_hdev_counting_active(benchmark):
    """Same hdev workload with a metrics registry activated.

    Compared against ``test_kern_hdev_large_aggregate`` this isolates
    the per-operation cost of the thread-local kernel-count hook when
    it actually counts (the inactive path is covered by the NullContext
    gate in ``bench_context_overhead.py``).
    """
    agg = aggregate_curve(many_bucket_curves(32))
    line = P.line(1.5)
    reg = MetricsRegistry()

    def counted():
        with activate_registry(reg):
            return agg.horizontal_deviation(line)

    d = benchmark(counted)
    assert d > 0
    assert reg.get("curve.hdev") > 0
