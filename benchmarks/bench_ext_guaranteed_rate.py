"""EXT3 — guaranteed-rate tandem: where the service-curve method shines.

The paper's §1.2 claims the service-curve method "performs very well"
for guaranteed-rate disciplines and fails only for FIFO-like ones.
This bench runs the same tandem workload over WFQ-style servers and
shows the induced rate-latency curves beating decomposition — the
mirror image of Figure 4 — validating that the library's service-curve
machinery is sound and the FIFO failure is about FIFO, not about the
implementation.
"""

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Discipline, Network, ServerSpec

from benchmarks.conftest import emit


def gr_tandem(n, u):
    base = build_tandem(n, u)
    servers = [ServerSpec(k, 1.0, Discipline.GUARANTEED_RATE)
               for k in range(1, n + 1)]
    flows = [Flow(f.name, f.bucket, f.path)
             for f in base.flows.values()]
    return Network(servers, flows)


def test_ext_gr_table(benchmark):
    benchmark.pedantic(lambda: gr_tandem(2, 0.4), rounds=1, iterations=1)
    rows = ["   n     U    sc-on-fifo    sc-on-gr    dec-on-gr"]
    for n in (2, 4, 8):
        for u in (0.4, 0.8):
            fifo_sc = ServiceCurveAnalysis().analyze(build_tandem(n, u)) \
                .delay_of(CONNECTION0)
            gr = gr_tandem(n, u)
            gr_sc = ServiceCurveAnalysis().analyze(gr) \
                .delay_of(CONNECTION0)
            gr_dec = DecomposedAnalysis().analyze(gr) \
                .delay_of(CONNECTION0)
            rows.append(f"{n:4d}  {u:.2f}  {fifo_sc:12.4f}"
                        f"  {gr_sc:10.4f}  {gr_dec:11.4f}")
            # the paper's §1.2 claim: service curves are effective for
            # guaranteed-rate servers — on GR the method is *exact*
            # (sigma/rho for fluid WFQ with minimal reservation, hop
            # count irrelevant) and never looser than decomposition
            assert gr_sc <= gr_dec + 1e-9
            assert abs(gr_sc - 4.0 / u) < 1e-6
            # ...and at high load it beats the FIFO induced curves,
            # whose latency terms blow up (the Figure-4 failure mode)
            if u >= 0.8:
                assert gr_sc < fifo_sc
    emit("EXT3: service-curve method on guaranteed-rate vs FIFO tandems",
         "\n".join(rows))


def test_gr_sc_load_insensitive(benchmark):
    """With per-flow reservations the bound depends on the flow's own
    parameters only — load does not move it (fluid WFQ isolation)."""
    benchmark.pedantic(lambda: gr_tandem(2, 0.4), rounds=1, iterations=1)
    lo = ServiceCurveAnalysis().analyze(gr_tandem(4, 0.4)) \
        .delay_of(CONNECTION0)
    hi = ServiceCurveAnalysis().analyze(gr_tandem(4, 0.8)) \
        .delay_of(CONNECTION0)
    # higher load means higher reserved rate here (rho = U/4), which
    # actually *helps* the flow: the bound must not increase
    assert hi <= lo + 1e-9
