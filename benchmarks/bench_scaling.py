"""SCAL — runtime scaling of the analyses with network size.

The paper requires delay analysis to be "simple and fast in order to be
used as part of online connection admission control" (§1).  This bench
measures how each algorithm's wall-clock scales with the tandem size
and asserts the analyses stay comfortably in the online regime
(well under a second even at n=16).
"""

import time

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.network.tandem import CONNECTION0, build_tandem

from benchmarks.conftest import emit

SIZES = (2, 4, 8, 16)
ANALYZERS = {
    "decomposed": DecomposedAnalysis,
    "service_curve": ServiceCurveAnalysis,
    "integrated": IntegratedAnalysis,
}


def test_scaling_table(benchmark):
    benchmark.pedantic(
        lambda: DecomposedAnalysis().analyze(build_tandem(4, 0.7)),
        rounds=1, iterations=1)
    rows = [f"{'n':>4}" + "".join(f"{name:>16}" for name in ANALYZERS)]
    for n in SIZES:
        net = build_tandem(n, 0.7)
        row = f"{n:4d}"
        for factory in ANALYZERS.values():
            analyzer = factory()
            t0 = time.perf_counter()
            analyzer.analyze(net).delay_of(CONNECTION0)
            elapsed = time.perf_counter() - t0
            row += f"{elapsed * 1000:13.1f} ms"
        rows.append(row)
    emit("SCAL: analysis wall-clock vs tandem size (U=0.7)",
         "\n".join(rows))


@pytest.mark.parametrize("name", list(ANALYZERS))
def test_online_capable_at_n16(benchmark, name):
    """Each analysis must complete a 16-hop network within 2 seconds
    (generous CI budget; typical times are far lower)."""
    net = build_tandem(16, 0.7)
    analyzer = ANALYZERS[name]()
    result = benchmark.pedantic(
        lambda: analyzer.analyze(net).delay_of(CONNECTION0),
        rounds=2, iterations=1)
    assert result > 0
    assert benchmark.stats["mean"] < 2.0
