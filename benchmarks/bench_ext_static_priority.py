"""EXT1 — static-priority extension (paper §5 future work).

The paper announces extending the integrated approach to static-priority
servers.  This bench runs the tandem with SP scheduling (Connection 0 at
high priority, cross connections low) and compares the decomposition
bound per priority class, plus the FIFO integrated bound as a reference
point.
"""

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import (
    CONNECTION0,
    build_tandem,
    long_name,
    short_name,
)
from repro.network.topology import Discipline, Network, ServerSpec

from benchmarks.conftest import emit


def sp_tandem(n, u, conn0_priority=0):
    """The Figure-3 tandem with static-priority servers."""
    base = build_tandem(n, u)
    servers = [ServerSpec(k, 1.0, Discipline.STATIC_PRIORITY)
               for k in range(1, n + 1)]
    flows = []
    for f in base.flows.values():
        prio = conn0_priority if f.name == CONNECTION0 else 1
        flows.append(Flow(f.name, f.bucket, f.path, priority=prio))
    return Network(servers, flows)


def test_ext_sp_table(benchmark):
    benchmark.pedantic(lambda: sp_tandem(2, 0.4), rounds=1, iterations=1)
    rows = ["   n     U    fifo-integ    sp-dec-lo    sp-int-lo"
            "    sp-dec-hi"]
    for n in (2, 4):
        for u in (0.4, 0.8):
            fifo = IntegratedAnalysis().analyze(build_tandem(n, u)) \
                .delay_of(CONNECTION0)
            lo_net = sp_tandem(n, u, 2)
            dec_lo = DecomposedAnalysis().analyze(lo_net) \
                .delay_of(CONNECTION0)
            int_lo = IntegratedAnalysis().analyze(lo_net) \
                .delay_of(CONNECTION0)
            dec_hi = DecomposedAnalysis().analyze(sp_tandem(n, u, 0)) \
                .delay_of(CONNECTION0)
            rows.append(f"{n:4d}  {u:.2f}  {fifo:12.4f}  {dec_lo:11.4f}"
                        f"  {int_lo:11.4f}  {dec_hi:11.4f}")
            # the SP integrated pair bound must tighten SP decomposition
            assert int_lo <= dec_lo + 1e-9
    emit("EXT1: static-priority tandem (Connection 0 bound; "
         "sp-int uses the integrated SP pair kernel)",
         "\n".join(rows))


def test_sp_priority_helps_connection0(benchmark):
    """High priority must beat both low priority and FIFO for conn0."""
    benchmark.pedantic(lambda: sp_tandem(2, 0.4), rounds=1,
                       iterations=1)
    n, u = 4, 0.8
    hi = DecomposedAnalysis().analyze(sp_tandem(n, u, 0)) \
        .delay_of(CONNECTION0)
    lo = DecomposedAnalysis().analyze(sp_tandem(n, u, 2)) \
        .delay_of(CONNECTION0)
    fifo_dec = DecomposedAnalysis().analyze(build_tandem(n, u)) \
        .delay_of(CONNECTION0)
    assert hi < lo
    assert hi < fifo_dec


def test_ext_sp_timing(benchmark):
    # Connection 0 at the *lowest* priority so the bound is non-trivial
    # (at top priority a peak-limited flow never queues in the fluid
    # model and its bound is exactly 0).
    net = sp_tandem(4, 0.8, conn0_priority=2)
    analyzer = DecomposedAnalysis()
    result = benchmark(lambda: analyzer.analyze(net)
                       .delay_of(CONNECTION0))
    assert result > 0
