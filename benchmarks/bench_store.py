"""BENCH-STORE — warm-process re-admission via the persistent store.

Measures what :class:`repro.store.AnalysisStore` buys **across
processes**: the incremental engine's in-memory cache dies with its
process, so a service restart (or a re-run of the same sweep) pays the
full cold analysis again — unless a store carries the per-server
results over.  Workload: the same 32-server / 256-flow random
feed-forward network as BENCH-INC; one process populates the store,
then a simulated fresh process (new engine, reopened store) replays
the full analysis plus release/re-admit cycles against the cold
analyzer.

Every warm bound is compared against the cold bound of the same
network via ``float.hex`` — a single differing bit fails the run.

Runs two ways:

* ``python benchmarks/bench_store.py`` — standalone, writes
  ``BENCH_store.json`` to the working directory and exits non-zero on
  any identity mismatch, a warm-process cold-compute, or (full size
  only) re-admission speedup < 5x.  Set ``REPRO_BENCH_QUICK=1`` for
  the reduced CI configuration (smaller network, identity checked, no
  speedup gate).
* ``pytest benchmarks/bench_store.py`` — the same run as a test.
"""

from __future__ import annotations

import random
import sys
import tempfile
import time

from repro.analysis.decomposed import DecomposedAnalysis
from repro.engine import IncrementalEngine
from repro.network.generators import random_feedforward
from repro.store import AnalysisStore

SEED = 2026
FULL = {"n_servers": 32, "n_flows": 256, "n_cycles": 8}
QUICK = {"n_servers": 12, "n_flows": 48, "n_cycles": 3}
SPEEDUP_FLOOR = 5.0  # acceptance: warm re-admission >= 5x cold (full)


def _workload(n_servers: int, n_flows: int):
    return random_feedforward(seed=SEED, n_servers=n_servers,
                              n_flows=n_flows, max_utilization=0.8)


def _hex_bounds(report, net) -> dict:
    return {f.name: report.delay_of(f.name).hex()
            for f in net.iter_flows()}


def _diff(tag: str, warm, cold, net) -> list[str]:
    w, c = _hex_bounds(warm, net), _hex_bounds(cold, net)
    return [f"{tag} {name}: warm {w[name]} != cold {c[name]}"
            for name in c if w.get(name) != c[name]]


def run_bench(store_dir: str, quick: bool = False) -> dict:
    """Cold vs populate vs warm-process comparison; returns the record."""
    cfg = QUICK if quick else FULL
    net = _workload(cfg["n_servers"], cfg["n_flows"])
    cold = DecomposedAnalysis()
    picks = random.Random(7).sample(sorted(net.flows), cfg["n_cycles"])

    # ---- cold baseline: no engine, no store --------------------------
    t0 = time.perf_counter()
    cold_report = cold.analyze(net)
    cold_full_s = time.perf_counter() - t0
    cold_cycles = []
    t_cold_admit = 0.0
    for name in picks:
        c_rel = cold.analyze(net.without_flow(name))
        t0b = time.perf_counter()
        c_adm = cold.analyze(net)
        t_cold_admit += time.perf_counter() - t0b
        cold_cycles.append((name, c_rel, c_adm))

    # ---- process 1: engine populates the store -----------------------
    t0 = time.perf_counter()
    with AnalysisStore(store_dir) as store:
        eng = IncrementalEngine(DecomposedAnalysis(), net, store=store)
        eng.query()
        for name in picks:
            eng.release(name)
            eng.admit(net.flows[name])
        entries = len(store)
    populate_s = time.perf_counter() - t0

    # ---- process 2 (simulated restart): fresh engine, warm store -----
    mismatches: list[str] = []
    t_warm_admit = 0.0
    with AnalysisStore(store_dir) as store:
        eng = IncrementalEngine(DecomposedAnalysis(), net, store=store)
        t0 = time.perf_counter()
        warm_report = eng.query()
        warm_full_s = time.perf_counter() - t0
        mismatches += _diff("full", warm_report, cold_report, net)
        for name, c_rel, c_adm in cold_cycles:
            t0 = time.perf_counter()
            w_rel = eng.release(name)
            t0b = time.perf_counter()
            w_adm = eng.admit(net.flows[name])
            t_warm_admit += time.perf_counter() - t0b
            mismatches += _diff(f"release {name}", w_rel, c_rel,
                                net.without_flow(name))
            mismatches += _diff(f"admit {name}", w_adm, c_adm, net)
        stats = eng.stats.as_dict()
        store_stats = store.stats.as_dict()

    n = cfg["n_cycles"]
    per_cold = t_cold_admit / n
    per_warm = t_warm_admit / n
    return {
        "benchmark": "store_warm_start",
        "quick": quick,
        "config": {**cfg, "seed": SEED, "analyzer": "decomposed"},
        "store_entries": entries,
        "cold_full_analysis_s": cold_full_s,
        "populate_s": populate_s,
        "warm_full_analysis_s": warm_full_s,
        "full_analysis_speedup": (cold_full_s / warm_full_s
                                  if warm_full_s else None),
        "cold_per_readmission_s": per_cold,
        "warm_per_readmission_s": per_warm,
        "readmit_speedup": per_cold / per_warm if per_warm else None,
        "warm_cold_computes": stats["misses"],
        "engine_stats": stats,
        "store_stats": store_stats,
        "bit_identical": not mismatches,
        "mismatches": mismatches[:20],
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_store_warm_start_bit_identical(tmp_path):
    result = run_bench(str(tmp_path / "store"), quick=True)
    assert result["bit_identical"], result["mismatches"]
    assert result["warm_cold_computes"] == 0  # everything store-served
    assert result["readmit_speedup"] is not None
    assert result["readmit_speedup"] > 1.0


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------

def main() -> int:
    try:  # package import (pytest / repo root) or script-dir import
        from benchmarks._artifacts import bench_quick, write_artifact
    except ImportError:
        from _artifacts import bench_quick, write_artifact

    quick = bench_quick()
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as d:
        result = run_bench(d, quick=quick)

    out = write_artifact("store", result)
    size = "quick" if quick else "full"
    print(f"BENCH-STORE ({size}): cold {result['cold_per_readmission_s']:.4f}s"
          f" vs warm-process {result['warm_per_readmission_s']:.4f}s per"
          f" re-admission — {result['readmit_speedup']:.2f}x, full analysis"
          f" {result['full_analysis_speedup']:.2f}x,"
          f" {result['store_entries']} store entr(ies),"
          f" {result['warm_cold_computes']} warm cold-compute(s) -> {out}")

    rc = 0
    for m in result["mismatches"]:
        print(f"MISMATCH: {m}", file=sys.stderr)
        rc = 1
    if result["warm_cold_computes"]:
        print(f"FAIL: warm process recomputed "
              f"{result['warm_cold_computes']} step(s) cold",
              file=sys.stderr)
        rc = 1
    if not quick and result["readmit_speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: warm re-admission speedup "
              f"{result['readmit_speedup']:.2f}x < "
              f"{SPEEDUP_FLOOR:g}x floor", file=sys.stderr)
        rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
