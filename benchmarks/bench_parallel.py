"""BENCH-PAR — parallel cone-partitioned batch admission vs serial.

Measures what the process-pool executor buys on the batch admission
workload: a 32-server / 256-flow network of 8 disjoint feed-forward
components (the dependency cones), and a batch of connection requests
spread across the cones.  The batch is admitted twice — serial
(``workers=1``) and parallel (``workers=4``) — and the runs must agree
*bit-identically*: same admitted set, same reasons, same bounds down to
``float.hex``.  A single differing decision fails the run.

The same gate covers whole-network analysis:
:class:`repro.engine.ParallelAnalysis` must reproduce the serial
:class:`~repro.analysis.decomposed.DecomposedAnalysis` report exactly
(``reports_identical``).

Runs two ways:

* ``python benchmarks/bench_parallel.py`` — standalone, writes
  ``BENCH_parallel.json`` to the working directory and exits non-zero
  on any mismatch (or, full size only, on batch speedup < 1.5x when
  the host has >= 4 CPUs).  Set ``REPRO_BENCH_QUICK=1`` for the
  reduced CI configuration (smaller network, identity checked, no
  speedup gate).
* ``pytest benchmarks/bench_parallel.py`` — the identity gate as a
  test.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.admission.controller import AdmissionController
from repro.admission.requests import ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.context import AnalysisContext, MetricsRegistry
from repro.curves.token_bucket import TokenBucket
from repro.engine import ParallelAnalysis, reports_identical
from repro.engine.incremental import describe_report_difference
from repro.network.generators import random_multicomponent

SEED = 2026
FULL = {"n_components": 8, "servers_per_component": 4,
        "flows_per_component": 32, "n_requests": 16, "workers": 4}
QUICK = {"n_components": 4, "servers_per_component": 3,
         "flows_per_component": 8, "n_requests": 8, "workers": 2}
SPEEDUP_FLOOR = 1.5  # acceptance: 4-worker batch >= 1.5x serial (full)


def _workload(cfg: dict):
    return random_multicomponent(
        SEED, n_components=cfg["n_components"],
        servers_per_component=cfg["servers_per_component"],
        flows_per_component=cfg["flows_per_component"],
        max_utilization=0.7)


def _requests(cfg: dict) -> list[ConnectionRequest]:
    """Round-robin the batch across components, random sub-paths."""
    rng = np.random.default_rng(SEED + 1)
    spc = cfg["servers_per_component"]
    reqs = []
    for i in range(cfg["n_requests"]):
        c = i % cfg["n_components"]
        a = int(rng.integers(0, spc))
        b = int(rng.integers(a, spc))
        path = tuple(range(c * spc + a, c * spc + b + 1))
        reqs.append(ConnectionRequest(
            f"req{i}", TokenBucket(0.5, 0.02, peak=1.0), path, 200.0))
    return reqs


def _decision_diffs(serial, parallel) -> list[str]:
    diffs = []
    for i, (s, p) in enumerate(zip(serial, parallel)):
        if s.admitted != p.admitted or s.reason != p.reason:
            diffs.append(f"request {i}: serial ({s.admitted}, {s.reason!r})"
                         f" vs parallel ({p.admitted}, {p.reason!r})")
        sb, pb = s.new_flow_bound, p.new_flow_bound
        if (sb is None) != (pb is None) or (
                sb is not None and float(sb).hex() != float(pb).hex()):
            diffs.append(f"request {i}: bound {sb!r} vs {pb!r}")
    return diffs


def run_bench(quick: bool = False) -> dict:
    """Serial-vs-parallel batch admission; returns the result record."""
    cfg = QUICK if quick else FULL
    net = _workload(cfg)
    reqs = _requests(cfg)
    mismatches: list[str] = []

    # -- whole-network analysis: ParallelAnalysis vs serial ------------
    serial_analyzer = DecomposedAnalysis()
    t0 = time.perf_counter()
    serial_report = serial_analyzer.analyze(net)
    analysis_serial_s = time.perf_counter() - t0
    par_analyzer = ParallelAnalysis(DecomposedAnalysis(),
                                    workers=cfg["workers"])
    t0 = time.perf_counter()
    par_report = par_analyzer.analyze(net)
    analysis_parallel_s = time.perf_counter() - t0
    if not reports_identical(serial_report, par_report):
        mismatches.append("analysis: " + str(
            describe_report_difference(serial_report, par_report)))
    if par_analyzer.parallel_runs != 1:
        mismatches.append("analysis: parallel fast path did not engage "
                          f"(fallbacks={par_analyzer.serial_fallbacks})")

    # -- batch admission: workers=1 vs workers=N -----------------------
    def admit_all(workers: int):
        ctrl = AdmissionController(net, DecomposedAnalysis())
        ctx = AnalysisContext(metrics=MetricsRegistry())
        t0 = time.perf_counter()
        decisions = ctrl.admit_batch(reqs, workers=workers, ctx=ctx)
        return decisions, time.perf_counter() - t0, ctrl, ctx

    d_serial, batch_serial_s, ctrl_s, _ = admit_all(1)
    d_par, batch_parallel_s, ctrl_p, ctx_p = admit_all(cfg["workers"])
    mismatches += _decision_diffs(d_serial, d_par)
    if ctrl_s.admitted != ctrl_p.admitted:
        mismatches.append(f"admitted sets differ: {ctrl_s.admitted} vs "
                          f"{ctrl_p.admitted}")
    groups = ctx_p.metrics.get("parallel.batch_groups")
    if not groups:
        mismatches.append("batch: parallel plan did not engage "
                          "(parallel.batch_groups == 0)")

    # committed state must analyze identically too
    final_s = DecomposedAnalysis().analyze(ctrl_s.network)
    final_p = DecomposedAnalysis().analyze(ctrl_p.network)
    if not reports_identical(final_s, final_p):
        mismatches.append("post-batch networks: " + str(
            describe_report_difference(final_s, final_p)))

    return {
        "benchmark": "parallel_batch_admission",
        "quick": quick,
        "config": {**cfg, "seed": SEED, "analyzer": "decomposed"},
        "cpu_count": os.cpu_count(),
        "analysis_serial_s": analysis_serial_s,
        "analysis_parallel_s": analysis_parallel_s,
        "analysis_speedup": (analysis_serial_s / analysis_parallel_s
                             if analysis_parallel_s else None),
        "batch_serial_s": batch_serial_s,
        "batch_parallel_s": batch_parallel_s,
        "batch_speedup": (batch_serial_s / batch_parallel_s
                          if batch_parallel_s else None),
        "batch_groups": groups,
        "admitted": list(ctrl_p.admitted),
        "n_admitted": sum(1 for d in d_par if d.admitted),
        "n_rejected": sum(1 for d in d_par if not d.admitted),
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_parallel_batch_bit_identical():
    result = run_bench(quick=True)
    assert result["bit_identical"], result["mismatches"]
    assert result["batch_groups"] >= 2


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------

def main() -> int:
    try:  # package import (pytest / repo root) or script-dir import
        from benchmarks._artifacts import bench_quick, write_artifact
    except ImportError:
        from _artifacts import bench_quick, write_artifact

    quick = bench_quick()
    result = run_bench(quick=quick)

    out = write_artifact("parallel", result)
    size = "quick" if quick else "full"
    print(f"BENCH-PAR ({size}): batch serial {result['batch_serial_s']:.3f}s"
          f" vs {result['config']['workers']} workers"
          f" {result['batch_parallel_s']:.3f}s —"
          f" {result['batch_speedup']:.2f}x over {result['batch_groups']:g}"
          f" cones; analysis {result['analysis_speedup']:.2f}x -> {out}")

    for m in result["mismatches"]:
        print(f"MISMATCH: {m}", file=sys.stderr)
    if result["mismatches"]:
        return 1
    cpus = os.cpu_count() or 1
    if not quick and cpus >= 4 and result["batch_speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: batch speedup {result['batch_speedup']:.2f}x < "
              f"{SPEEDUP_FLOOR:g}x floor on {cpus} CPUs", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
