"""BENCH-LOAD — admission-service throughput under generated load.

Drives the durable admission service with the :mod:`repro.loadgen`
subsystem and records what the front door actually sustains:

* an **open-loop flash-crowd** run (the hard shape: easy average rate,
  10x spike mid-run) with churn, reporting throughput and exact
  p50/p95/p99/max decision latency;
* a **determinism check** — the same seed recorded twice must produce
  byte-identical canonical traces (a regression is a byte-diff);
* a **chaos leg** — SIGKILL-equivalent mid-run, recovery from the
  write-ahead journal, and the invariant that zero acknowledged
  admissions are lost.

Runs two ways:

* ``python benchmarks/bench_loadtest.py`` — standalone, writes the
  root-level ``BENCH_loadtest.json`` (via ``_artifacts``) and exits
  non-zero on a determinism break, a chaos loss or an SLO violation.
  ``REPRO_BENCH_QUICK=1`` selects the reduced CI configuration.
* ``pytest benchmarks/bench_loadtest.py`` — the quick run as a test.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.context import AnalysisContext, MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.loadgen import (
    ChaosPlan,
    RequestTemplate,
    SLO,
    TraceWriter,
    make_workload,
    run_open_loop,
    summarize,
)
from repro.network.topology import Network, ServerSpec
from repro.service import AdmissionService, recover_service

SEED = 7
#: Base rates sit near service capacity on one core so the flash-crowd
#: spike (10x for a tenth of the run) is the only backlog source; an
#: over-capacity *base* rate would just measure unbounded queue growth.
FULL = {"rate": 4.0, "duration": 15.0, "hops": 4, "hold_s": 2.0}
QUICK = {"rate": 10.0, "duration": 4.0, "hops": 2, "hold_s": 1.0}
#: Generous guardrails — the gate exists to catch collapse, not noise.
#: Latency here is coordinated-omission corrected (service time + lag
#: behind the virtual schedule), so a spike above service capacity is
#: *supposed* to show seconds, not milliseconds.
GATE = SLO(max_p99_s=30.0, max_reject_fraction=0.95, max_lost=1)


def _service(journal_dir: Path, hops: int,
             ctx: AnalysisContext) -> AdmissionService:
    empty = Network([ServerSpec(k) for k in range(1, hops + 1)], [])
    return AdmissionService(empty, IntegratedAnalysis(),
                            journal_dir=journal_dir, ctx=ctx)


def _workload(cfg: dict):
    template = RequestTemplate(n_servers=cfg["hops"], deadline=30.0,
                               rho=0.02)
    return make_workload("flash-crowd", SEED, cfg["rate"],
                         template=template, hold_s=cfg["hold_s"])


def run_once(cfg: dict, root: Path, tag: str, *,
             chaos_at: int | None = None,
             record: Path | None = None):
    """One open-loop run; returns ``(report, result)``."""
    ctx = AnalysisContext(metrics=MetricsRegistry())
    workload = _workload(cfg)
    events = workload.schedule(cfg["duration"])
    journal_dir = root / f"journal-{tag}"
    service = _service(journal_dir, cfg["hops"], ctx)

    chaos = None
    if chaos_at is not None:
        chaos = ChaosPlan(
            kill_at=[chaos_at],
            recover=lambda: recover_service(journal_dir, verify=False,
                                            ctx=ctx))
    writer = TraceWriter(record) if record is not None else None
    if writer is not None:
        writer.write_header(workload=workload.describe(),
                            driver={"mode": "open", "hops": cfg["hops"],
                                    "analyzer": "integrated",
                                    "incremental": True})
    try:
        result = run_open_loop(service, events,
                               duration_s=cfg["duration"],
                               offered_rate=cfg["rate"],
                               writer=writer, chaos=chaos)
    finally:
        if writer is not None:
            writer.close()
    result.service.close()
    report = summarize(result, metrics=ctx.metrics,
                       workload=workload.describe())
    return report, result


def run_bench(quick: bool = False) -> dict:
    """The full benchmark; returns the artifact payload."""
    cfg = QUICK if quick else FULL
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-loadtest-") as tmp:
        root = Path(tmp)

        # main measured run, recorded
        report, result = run_once(cfg, root, "main",
                                  record=root / "trace-a.jsonl")

        # determinism: identical seed -> byte-identical canonical trace
        run_once(cfg, root, "again", record=root / "trace-b.jsonl")
        trace_a = (root / "trace-a.jsonl").read_bytes()
        trace_b = (root / "trace-b.jsonl").read_bytes()
        deterministic = trace_a == trace_b
        if not deterministic:
            failures.append("same seed produced differing traces")

        # chaos: kill mid-run, recover, zero lost acknowledged admits
        chaos_report, chaos_result = run_once(
            cfg, root, "chaos", chaos_at=max(1, len(result.records) // 2))
        if chaos_result.chaos_lost:
            failures.append(
                f"chaos lost committed admissions: "
                f"{list(chaos_result.chaos_lost)}")

        slo_result = GATE.evaluate(report)
        failures += [v.render() for v in slo_result.violations]

    return {
        "benchmark": "loadtest",
        "quick": quick,
        "config": {**cfg, "seed": SEED, "workload": "flash-crowd",
                   "analyzer": "integrated"},
        "report": report.as_dict(),
        "deterministic_trace": deterministic,
        "chaos": {
            "kills": chaos_result.chaos_kills,
            "lost": list(chaos_result.chaos_lost),
            "report": chaos_report.as_dict(),
        },
        "slo": {"gate": GATE.as_dict(), **slo_result.as_dict()},
        "failures": failures,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_loadtest_bench_quick():
    result = run_bench(quick=True)
    assert result["failures"] == []
    assert result["deterministic_trace"]
    assert result["chaos"]["kills"] == 1
    assert result["report"]["latency"]["p99"] > 0.0


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------

def main() -> int:
    try:  # package import (pytest / repo root) or script-dir import
        from benchmarks._artifacts import bench_quick, write_artifact
    except ImportError:
        from _artifacts import bench_quick, write_artifact

    quick = bench_quick()
    result = run_bench(quick=quick)
    out = write_artifact("loadtest", result)
    rep = result["report"]
    lat = rep["latency"]
    size = "quick" if quick else "full"
    print(f"BENCH-LOAD ({size}): {rep['events']} event(s), "
          f"{rep['throughput']:.1f} decisions/s — p50 "
          f"{lat['p50'] * 1e3:.2f}ms p95 {lat['p95'] * 1e3:.2f}ms "
          f"p99 {lat['p99'] * 1e3:.2f}ms max {lat['max'] * 1e3:.2f}ms; "
          f"deterministic={result['deterministic_trace']} "
          f"chaos_lost={len(result['chaos']['lost'])} -> {out}")
    for failure in result["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if result["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
