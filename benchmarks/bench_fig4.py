"""FIG4 — Decomposed vs Service Curve (paper Figure 4).

Regenerates both panels of Figure 4 and times the two baseline
analyzers on the paper's largest configuration (n=8).
"""

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.eval.figures import figure4
from repro.eval.tables import render_figure
from repro.eval.workloads import Sweep
from repro.network.tandem import CONNECTION0, build_tandem

from benchmarks.conftest import emit


def test_fig4_regenerate(benchmark, bench_sweep):
    """Regenerate Figure 4 (timed on a single-load sub-sweep)."""
    small = Sweep(loads=(0.5,), hops=(2, 4, 6, 8))
    benchmark.pedantic(figure4, args=(small,), rounds=3, iterations=1)
    fig = figure4(bench_sweep)
    emit("FIG4: Decomposed vs Service Curve", render_figure(fig))


def test_fig4_decomposed_n8(benchmark):
    """Time Algorithm Decomposed on the n=8, U=0.9 tandem."""
    net = build_tandem(8, 0.9)
    analyzer = DecomposedAnalysis()
    result = benchmark(lambda: analyzer.analyze(net)
                       .delay_of(CONNECTION0))
    assert result > 0


def test_fig4_service_curve_n8(benchmark):
    """Time Algorithm Service Curve on the n=8, U=0.9 tandem."""
    net = build_tandem(8, 0.9)
    analyzer = ServiceCurveAnalysis()
    result = benchmark(lambda: analyzer.analyze(net)
                       .delay_of(CONNECTION0))
    assert result > 0
