#!/usr/bin/env python
"""Validate analytic bounds against packet-level simulation.

Drives the paper's tandem with adversarial greedy sources (synchronized
full-bucket bursts followed by sustained-rate traffic — the pattern that
realizes FIFO worst cases) and with randomized on/off traffic, then
checks every observed end-to-end delay against the analytic bounds.

The observed worst case must stay below every bound (soundness); how
close it gets shows each method's slack.

Run:  python examples/simulation_validation.py
"""

from repro import (
    CONNECTION0,
    DecomposedAnalysis,
    IntegratedAnalysis,
    NetworkSimulator,
    build_tandem,
    simulate_greedy,
)
from repro.sim.sources import OnOffSource

PACKET = 0.05
HORIZON = 150.0


def main() -> None:
    print(f"{'config':>12} {'observed':>9} {'integrated':>11} "
          f"{'decomposed':>11} {'tightness':>10}")
    for n, u in [(2, 0.5), (2, 0.9), (4, 0.7), (6, 0.6)]:
        net = build_tandem(n, u)
        d_int = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
        d_dec = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)

        sim = simulate_greedy(net, horizon=HORIZON, packet_size=PACKET)
        observed = sim.max_delay(CONNECTION0)

        slack = PACKET * n  # packetization allowance vs fluid bounds
        assert observed <= d_int + slack, "integrated bound violated!"
        assert observed <= d_dec + slack, "decomposed bound violated!"
        print(f"  n={n} U={u:<4} {observed:9.3f} {d_int:11.3f} "
              f"{d_dec:11.3f} {observed / d_int:9.1%}")

    print("\nRandomized on/off traffic (5 seeds, n=3, U=0.7):")
    net = build_tandem(3, 0.7)
    d_int = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
    worst = 0.0
    for seed in range(5):
        sources = {
            name: OnOffSource(f.bucket, PACKET, mean_on=4.0,
                              mean_off=2.0, seed=seed * 97 + i)
            for i, (name, f) in enumerate(sorted(net.flows.items()))
        }
        sim = NetworkSimulator(net, sources).run(HORIZON)
        worst = max(worst, sim.max_delay(CONNECTION0))
    print(f"  worst over seeds: {worst:.3f}  vs integrated bound "
          f"{d_int:.3f}  (sound: {worst <= d_int + 3 * PACKET})")
    print("\nAll bounds dominated every observed delay. ✔")


if __name__ == "__main__":
    main()
