#!/usr/bin/env python
"""Networks with feedback: fixed-point analysis of a server ring.

The paper restricts the integrated method to feed-forward (cycle-free)
networks and names general topologies as future work, citing the
authors' stability results.  This example exercises the library's
implementation of the classical fix: iterate the burstiness
characterization around the cycle to a fixed point
(:class:`repro.analysis.FeedbackAnalysis`).

A ring of unit-rate FIFO servers carries one two-hop flow per server
(each flow's exit feeds the next flow's entry server), creating a
circular dependency among local delays.  The example shows:

* convergence and certified bounds at moderate load,
* the line-rate cap enlarging the certifiable region,
* loss of certification (infinite bounds) when the iteration diverges,
* simulation staying below every certified bound.

Run:  python examples/feedback_ring.py
"""

from repro import FeedbackAnalysis, Flow, Network, ServerSpec, TokenBucket
from repro.sim import simulate_greedy


def build_ring(n: int, rho: float, sigma: float = 1.0) -> Network:
    servers = [ServerSpec(k) for k in range(n)]
    bucket = TokenBucket(sigma, rho, peak=1.0)
    flows = [Flow(f"f{k}", bucket, [k, (k + 1) % n])
             for k in range(n)]
    return Network(servers, flows, allow_cycles=True)


def main() -> None:
    n = 4
    print(f"{n}-server ring, one 2-hop flow per server "
          "(cyclic server graph)\n")
    print(f"{'rho':>6} {'util':>6} {'capped bound':>13} "
          f"{'uncapped bound':>15} {'iters':>6}")
    for rho in (0.1, 0.2, 0.3, 0.4, 0.45):
        net = build_ring(n, rho)
        capped = FeedbackAnalysis(capped_propagation=True).analyze(net)
        uncapped = FeedbackAnalysis(capped_propagation=False,
                                    max_iterations=300).analyze(net)
        cb = capped.delay_of("f0") if capped.meta["converged"] \
            else float("inf")
        ub = uncapped.delay_of("f0") if uncapped.meta["converged"] \
            else float("inf")
        print(f"{rho:6.2f} {2 * rho:6.0%} {cb:13.4f} {ub:15.4f} "
              f"{capped.meta['iterations']:6d}")

    # validate one converged configuration against simulation
    net = build_ring(n, 0.3)
    report = FeedbackAnalysis().analyze(net)
    sim = simulate_greedy(net, horizon=120.0, packet_size=0.05)
    worst = max(sim.max_delay(name) for name in net.flows)
    bound = max(report.delay_of(name) for name in net.flows)
    print(f"\nsimulated worst delay at rho=0.3: {worst:.4f} "
          f"(certified bound {bound:.4f}, sound: "
          f"{worst <= bound + 2 * 0.05})")
    print("\nNote: 'inf' rows mean the iteration could not certify a "
          "fixed point — the classical limitation the paper's feedback "
          "discussion refers to; the cap pushes that frontier out.")


if __name__ == "__main__":
    main()
