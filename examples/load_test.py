#!/usr/bin/env python
"""Load-testing the admission service with repro.loadgen.

Walks the whole harness end to end in one short run:

1. generate a seeded **flash-crowd** workload (steady Poisson arrivals
   with a 10x spike mid-run, plus admit/release churn);
2. drive it open-loop against a durable :class:`AdmissionService`,
   recording a canonical trace;
3. summarize the run — exact decision-latency percentiles, throughput,
   degradation mix — and gate it against an SLO;
4. kill the service mid-run (SIGKILL-equivalent: the object is simply
   abandoned), recover from the write-ahead journal, and verify that no
   acknowledged admission was lost;
5. replay the recorded trace against a fresh service and confirm every
   decision reproduces bit-exactly.

Run:  python examples/load_test.py
"""

import tempfile
from pathlib import Path

from repro import IntegratedAnalysis, Network, ServerSpec
from repro.context import AnalysisContext, MetricsRegistry
from repro.loadgen import (
    ChaosPlan,
    RequestTemplate,
    TraceWriter,
    make_workload,
    parse_slo,
    replay,
    run_open_loop,
    summarize,
)
from repro.service import AdmissionService, recover_service

SEED = 7
RATE = 8.0        # offered arrivals/s (virtual time — runs unpaced)
DURATION = 5.0    # virtual seconds of load
HOPS = 3


def build_service(journal_dir: Path, ctx: AnalysisContext) -> AdmissionService:
    empty = Network([ServerSpec(k) for k in range(1, HOPS + 1)], [])
    return AdmissionService(empty, IntegratedAnalysis(),
                            journal_dir=journal_dir, ctx=ctx)


def main() -> None:
    template = RequestTemplate(n_servers=HOPS, deadline=30.0, rho=0.02)
    workload = make_workload("flash-crowd", SEED, RATE,
                             template=template, hold_s=2.0)
    events = workload.schedule(DURATION)
    print(f"flash-crowd workload: seed {SEED}, {RATE:g}/s for "
          f"{DURATION:g}s -> {len(events)} scheduled events\n")

    with tempfile.TemporaryDirectory(prefix="loadtest-example-") as tmp:
        root = Path(tmp)

        # -- drive + record ------------------------------------------------
        ctx = AnalysisContext(metrics=MetricsRegistry())
        service = build_service(root / "journal", ctx)
        trace_path = root / "trace.jsonl"
        with TraceWriter(trace_path) as writer:
            writer.write_header(workload=workload.describe(),
                                driver={"mode": "open", "hops": HOPS,
                                        "analyzer": "integrated",
                                        "incremental": True})
            result = run_open_loop(service, events, duration_s=DURATION,
                                   offered_rate=RATE, writer=writer)
        result.service.close()
        report = summarize(result, metrics=ctx.metrics,
                           workload=workload.describe())
        print(report.render())

        # -- SLO gate ------------------------------------------------------
        # Latency is coordinated-omission corrected (service time plus
        # lag behind the virtual arrival schedule), so the flash-crowd
        # spike legitimately shows seconds — gate generously.
        slo = parse_slo("p99<60,reject<0.9,lost<1")
        verdict = slo.evaluate(report)
        print("\nSLO " + verdict.render())
        assert verdict.ok, "example run violated its own SLO"

        # -- chaos: kill mid-run, recover, audit durability ---------------
        chaos_ctx = AnalysisContext(metrics=MetricsRegistry())
        chaos_dir = root / "journal-chaos"
        chaos_service = build_service(chaos_dir, chaos_ctx)
        chaos = ChaosPlan(
            kill_at=[len(events) // 2],
            recover=lambda: recover_service(chaos_dir, verify=False,
                                            ctx=chaos_ctx))
        chaos_result = run_open_loop(chaos_service, events,
                                     duration_s=DURATION,
                                     offered_rate=RATE, chaos=chaos)
        chaos_result.service.close()
        print(f"\nchaos: killed the service {chaos_result.chaos_kills} "
              f"time(s) mid-run; lost acknowledged admissions: "
              f"{len(chaos_result.chaos_lost)}")
        assert not chaos_result.chaos_lost, chaos_result.chaos_lost

        # -- replay: recorded decisions must reproduce bit-exactly --------
        fresh = build_service(root / "journal-replay",
                              AnalysisContext(metrics=MetricsRegistry()))
        replay_report = replay(trace_path, fresh)
        fresh.close()
        print("\nreplay: " + replay_report.render())
        assert replay_report.ok, "trace replay diverged"

    print("\nEvery acknowledged admission survived the kill, and the "
          "recorded trace replayed bit-exactly against a fresh service.")


if __name__ == "__main__":
    main()
