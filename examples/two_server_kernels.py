#!/usr/bin/env python
"""Inside the integrated method: the two-server kernels side by side.

For a single subsystem of two FIFO servers (paper Figure 1), compares

* the naive uncapped chain (what plain decomposition would do),
* the Theorem-1 joint busy-period kernel,
* the FIFO leftover-service-curve (theta-family) kernel, and
* the production bound (the minimum of the two kernels),

and shows which kernel wins as through-burstiness varies — the family
kernel takes over when the through traffic is the bursty part ("pay
bursts only once"), the Theorem-1 kernel when cross traffic dominates.

Run:  python examples/two_server_kernels.py
"""

from repro import PiecewiseLinearCurve as P
from repro import TwoServerSubsystem
from repro.core.fifo_family import family_pair_bound
from repro.core.theorem1 import theorem1_bound


def uncapped_chain(f12, f1, f2):
    d1 = (f12 + f1).horizontal_deviation(P.line(1.0))
    d2 = (f12.shift_left_x(d1) + f2).horizontal_deviation(P.line(1.0))
    return d1 + d2


def main() -> None:
    print(f"{'sigma12':>8} {'uncapped':>9} {'theorem1':>9} "
          f"{'family':>9} {'combined':>9}  winner")
    for sigma12 in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        f12 = P.affine(sigma12, 0.2)      # through aggregate
        f1 = P.affine(1.0, 0.3)           # cross at server 1
        f2 = P.affine(1.0, 0.3)           # cross at server 2

        naive = uncapped_chain(f12, f1, f2)
        th = theorem1_bound(f12, f1, f2, 1.0, 1.0).delay_through
        fam = family_pair_bound(f12, f1, f2, 1.0, 1.0).delay_through

        sub = TwoServerSubsystem({"t": f12}, {"x1": f1}, {"x2": f2},
                                 1.0, 1.0)
        res = sub.analyze()
        assert res.delay_through <= naive + 1e-9
        print(f"{sigma12:8.2f} {naive:9.4f} {th:9.4f} {fam:9.4f} "
              f"{res.delay_through:9.4f}  {res.winning_kernel}")

    print("\nBoth kernels are sound upper bounds; the subsystem takes "
          "their minimum. The family kernel pays the through burst "
          "once, so it wins as sigma12 grows.")


if __name__ == "__main__":
    main()
