#!/usr/bin/env python
"""Admission control: the operational payoff of a tighter delay analysis.

The paper's introduction motivates delay analysis through connection
admission: a method that overestimates delays rejects connections the
network could serve.  This example loads a tandem with identical
deadline-constrained video-like connections until the admission test
fails, once per analysis algorithm — the integrated analysis admits
measurably more connections onto the same network.

Run:  python examples/admission_control.py
"""

from repro import (
    AdmissionController,
    ConnectionRequest,
    DecomposedAnalysis,
    IntegratedAnalysis,
    ServiceCurveAnalysis,
    Network,
    ServerSpec,
    TokenBucket,
)


N_SERVERS = 4
DEADLINE = 30.0


def empty_network() -> Network:
    return Network([ServerSpec(k) for k in range(1, N_SERVERS + 1)], [])


def make_request(index: int) -> ConnectionRequest:
    """A CBR-video-like connection crossing the whole tandem."""
    return ConnectionRequest(
        name=f"video_{index}",
        bucket=TokenBucket(sigma=1.0, rho=0.02, peak=1.0),
        path=tuple(range(1, N_SERVERS + 1)),
        deadline=DEADLINE,
    )


def main() -> None:
    print(f"Admitting identical connections (deadline {DEADLINE}) onto "
          f"a {N_SERVERS}-server tandem until the test rejects:\n")
    results = {}
    for analyzer in (ServiceCurveAnalysis(), DecomposedAnalysis(),
                     IntegratedAnalysis()):
        controller = AdmissionController(empty_network(), analyzer)
        count = controller.admissible_count(make_request, max_tries=200)
        # the bound the last admitted connection received
        last = (controller.network.flows[f"video_{count - 1}"]
                if count else None)
        bound = (analyzer.analyze(controller.network)
                 .delay_of(last.name) if last else float("nan"))
        results[analyzer.name] = count
        print(f"{analyzer.name:>14}: admitted {count:3d} connections "
              f"(bound of last admitted: {bound:.3f})")

    gain = results["integrated"] - results["decomposed"]
    print(f"\nAlgorithm Integrated admits {gain} more connections than "
          "Algorithm Decomposed on identical hardware — the utilization "
          "gain the paper's tighter analysis buys.")
    assert results["integrated"] >= results["decomposed"] \
        >= results["service_curve"] - 1, "unexpected ordering"


if __name__ == "__main__":
    main()
