#!/usr/bin/env python
"""A guided tour through the paper, section by section, in code.

Narrates the argument of "New Delay Analysis in High Speed Networks"
(Li, Bettati, Zhao — ICPP 1999) with live computations at each step:
the traffic model, the single-node FIFO bound, the failure of induced
service curves for FIFO, the two-server integration, and the full
evaluation metric.

Run:  python examples/paper_walkthrough.py
"""

from repro import (
    CONNECTION0,
    DecomposedAnalysis,
    IntegratedAnalysis,
    PiecewiseLinearCurve,
    ServiceCurveAnalysis,
    TokenBucket,
    build_tandem,
    relative_improvement,
    theorem1_bound,
)
from repro.analysis.closed_forms import decomposed_local_delays
from repro.analysis.service_curve import induced_fifo_service_curve
from repro.core import family_pair_bound
from repro.curves import busy_period, hdev


def section(title):
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main() -> None:
    U, n = 0.8, 4
    rho = U / 4
    line = PiecewiseLinearCurve.line(1.0)

    section("§2 — Traffic model: b(I) = min(I, sigma + rho I)  [eq. 4]")
    tb = TokenBucket(1.0, rho, peak=1.0)
    b = tb.constraint_curve()
    print(f"source (sigma=1, rho={rho}): b(0)={b(0):g}, "
          f"b(1)={b(1):g}, b(5)={b(5):g}")

    section("§2.1 — One FIFO node: delay = hdev(G, C t), busy period B")
    G = b + b + b  # the tandem's first server: three fresh sources
    d1 = hdev(G, line)
    print(f"aggregate of 3 sources: delay bound {d1:.4f} "
          f"(= 2 sigma/(1-rho) = {2 / (1 - rho):.4f}, the paper's E1)")
    print(f"maximum busy period B = {busy_period(G, 1.0):.4f}")

    section("§1.1 — Decomposition: sum the local worst cases")
    e = decomposed_local_delays(n, U)
    print("per-server E_k:", ", ".join(f"{x:.3f}" for x in e))
    print(f"D_D = {sum(e):.4f}   (bursts re-paid at every hop)")

    section("§1.2 — Induced FIFO service curves are weak")
    cross = b + b + b  # 3 cross connections at an interior server
    beta = induced_fifo_service_curve(1.0, cross)
    print(f"leftover curve rate = {beta.final_slope:.3f} "
          f"(= 1 - 3 rho), latency ~ "
          f"{beta.pseudo_inverse(1e-9):.3f}")
    d_sc = ServiceCurveAnalysis().analyze(build_tandem(n, U)) \
        .delay_of(CONNECTION0)
    print(f"D_SC = {d_sc:.4f}  — worse than decomposition at this load")

    section("§2 Theorem 1 — integrate a pair of servers")
    f12 = b + b
    th = theorem1_bound(f12, b, b + b, 1.0, 1.0)
    fam = family_pair_bound(f12, b, b + b, 1.0, 1.0)
    print(f"through-pair bound: theorem1 {th.delay_through:.4f}, "
          f"theta-family {fam.delay_through:.4f} "
          f"(thetas {fam.theta1:.2f}/{fam.theta2:.2f})")
    print("the burst flattened by server 1's line rate cannot hit "
          "server 2 at full strength")

    section("§3/§4 — Algorithm Integrated on the tandem; metric eq. 10")
    net = build_tandem(n, U)
    d_d = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)
    d_i = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
    print(f"n={n}, U={U}:  D_D={d_d:.4f}  D_SC={d_sc:.4f}  "
          f"D_I={d_i:.4f}")
    print(f"R[dec,int] = {relative_improvement(d_d, d_i):.3f},  "
          f"R[sc,int] = {relative_improvement(d_sc, d_i):.3f}")
    print("\n(regenerate all three figures with "
          "`python -m repro figures`)")


if __name__ == "__main__":
    main()
