#!/usr/bin/env python
"""Fault injection: which deadline guarantees survive a degraded server?

The paper proves delay bounds for a frozen, healthy network — but the
admission promises made with those bounds must hold (or be knowingly
shed) when hardware misbehaves.  This walkthrough takes the paper's
Figure-5 tandem, turns the analyzed bounds into deadlines with modest
slack, then injects faults of increasing severity into one switch and
asks the survivability analysis which connections keep their deadlines.

Run:  python examples/fault_injection.py
"""

from repro import (
    BurstInflation,
    CompositeScenario,
    IntegratedAnalysis,
    Network,
    ServerDegradation,
    ServerFailure,
    build_tandem,
    render_survivability,
    survivability,
)

N_HOPS = 4          # the paper's Figure-5 evaluation tandem
LOAD = 0.6
SLACK = 1.25        # deadline = 1.25x each flow's healthy bound


def main() -> None:
    analyzer = IntegratedAnalysis()
    healthy = build_tandem(N_HOPS, LOAD)
    baseline = analyzer.analyze(healthy)

    # Provision deadlines the way an operator would: the analyzed bound
    # plus engineering slack.  Survivability is then a crisp question —
    # does the re-analyzed bound still fit under the deadline?
    net = Network(
        healthy.servers.values(),
        [f.with_deadline(SLACK * baseline.delay_of(f.name))
         for f in healthy.iter_flows()])
    print(f"Figure-5 tandem: n={N_HOPS}, U={LOAD}, deadlines at "
          f"{SLACK}x the integrated bounds\n")

    scenarios = [
        ServerDegradation(2, 0.95),               # mild: a link flap
        ServerDegradation(2, 0.80),               # serious: 20% rate loss
        ServerFailure(2),                         # switch 2 dies outright
        BurstInflation(1.5),                      # every source misbehaves
        CompositeScenario([                       # compound event
            ServerDegradation(3, 0.9),
            BurstInflation(1.3, ["conn0"]),
        ]),
    ]
    report = survivability(net, scenarios, analyzer)
    print(render_survivability(report))

    print()
    if report.survives:
        print("Every guarantee survives every scenario.")
    else:
        lost = ", ".join(report.worst_flows())
        print(f"Guarantees at risk under at least one fault: {lost}")
        degraded = report.outcomes[1]  # server 2 at 80%
        casualties = [v.flow for v in degraded.verdicts
                      if v.status != "met"]
        print(f"Under '{degraded.scenario}' only "
              f"{', '.join(casualties)} lose their deadline — "
              "connections crossing the faulted switch lose their "
              "guarantee first, while flows elsewhere keep theirs; "
              "slack is consumed hop by hop, exactly as the per-hop "
              "structure of the bounds predicts.")

    # the same question, per scenario, in machine-readable form
    mild = report.outcomes[0]
    assert mild.survives, "5% degradation should fit in 25% slack"
    failed = report.outcomes[2]
    assert failed.n_severed > 0, "a dead tandem switch severs conn0"


if __name__ == "__main__":
    main()
