#!/usr/bin/env python
"""Regenerate the paper's evaluation figures as tables.

Sweeps the network load for several tandem sizes and prints the three
two-panel figures of the paper's Section 4 (end-to-end delay of
Connection 0 and relative improvement R_{X,Y}), followed by the
qualitative shape checks recorded in EXPERIMENTS.md.

Run:  python examples/tandem_evaluation.py [--quick]
"""

import argparse

from repro.eval.runner import run_all, shape_checks
from repro.eval.tables import render_figure
from repro.eval.workloads import default_sweep, quick_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sweep (seconds instead of ~20s)")
    args = parser.parse_args()

    sweep = quick_sweep((2, 4)) if args.quick else None
    figures = run_all(sweep)
    for fig in figures.values():
        print(render_figure(fig))

    print("== shape checks (paper claims) ==")
    for check in shape_checks(figures):
        status = "PASS" if check.holds else "FAIL"
        print(f"[{status}] {check.claim}: {check.detail}")


if __name__ == "__main__":
    main()
