#!/usr/bin/env python
"""Diagnosing and provisioning a loaded network.

Beyond yes/no admission, operators ask: *where* does a connection's
delay budget go, *which* flows are at risk, and *how much* more traffic
a path can take.  This example answers all three on the paper's tandem
with the diagnosis toolkit:

* :func:`repro.analysis.bottlenecks` — per-element delay shares,
* :func:`repro.analysis.deadline_slack` — certified margins,
* :func:`repro.analysis.max_admissible_rate` — bisection for the
  largest deadline-respecting rate on a path (available "guaranteed
  bandwidth").

Run:  python examples/network_diagnosis.py
"""

from repro import (
    CONNECTION0,
    Flow,
    IntegratedAnalysis,
    TokenBucket,
    build_tandem,
)
from repro.analysis import (
    bottlenecks,
    deadline_slack,
    max_admissible_rate,
)


def main() -> None:
    analyzer = IntegratedAnalysis()
    net = build_tandem(4, 0.7)
    # give the long connection a deadline to diagnose against
    flows = [f.with_deadline(18.0) if f.name == CONNECTION0 else f
             for f in net.flows.values()]
    from repro import Network
    net = Network(net.servers.values(), flows)

    print("Where does Connection 0's bound go? (integrated analysis)")
    for b in bottlenecks(analyzer, net, CONNECTION0):
        bar = "#" * int(round(b.share * 40))
        print(f"  servers {str(b.element):>8}: {b.delay:7.3f} "
              f"({b.share:5.1%}) {bar}")

    slack = deadline_slack(analyzer, net)
    print(f"\nDeadline slack of Connection 0 (deadline 18.0): "
          f"{slack[CONNECTION0]:+.3f}")

    print("\nLargest additional sustained rate certifiable on the full "
          "path (small-burst probe, sigma=0.2):")
    for deadline in (12.0, 25.0, 100.0):
        rate = max_admissible_rate(analyzer, net, (1, 2, 3, 4),
                                   deadline=deadline, sigma=0.2)
        print(f"  deadline {deadline:6.1f}: rho_max = {rate:.4f}")

    # sanity: admit a connection at 90% of the found rate and re-check
    rate = max_admissible_rate(analyzer, net, (1, 2, 3, 4),
                               deadline=25.0, sigma=0.2)
    if rate > 0:
        probe = Flow("probe", TokenBucket(0.2, 0.9 * rate, peak=1.0),
                     (1, 2, 3, 4), deadline=25.0)
        report = analyzer.analyze(net.with_flow(probe))
        print(f"\nadmitting at 0.9*rho_max: probe bound "
              f"{report.delay_of('probe'):.3f} <= 25.0 and Connection 0 "
              f"still at {report.delay_of(CONNECTION0):.3f} "
              f"(deadline 18.0)")


if __name__ == "__main__":
    main()
