#!/usr/bin/env python
"""Quickstart: bound end-to-end delays in a FIFO tandem three ways.

Builds the paper's evaluation network (Figure 3) — a chain of FIFO
multiplexors loaded by token-bucket connections — and compares the
end-to-end worst-case delay bound of the longest connection under the
three analyses the paper studies:

* Algorithm Decomposed   (Cruz: sum of isolated per-server bounds)
* Algorithm Service Curve (induced FIFO service curves, convolved)
* Algorithm Integrated   (the paper's contribution: two-server joint
  analysis)

Run:  python examples/quickstart.py
"""

from repro import (
    CONNECTION0,
    DecomposedAnalysis,
    IntegratedAnalysis,
    ServiceCurveAnalysis,
    build_tandem,
    relative_improvement,
)


def main() -> None:
    n_hops = 4
    utilization = 0.8

    network = build_tandem(n_hops=n_hops, utilization=utilization)
    print(f"Tandem network: {n_hops} FIFO servers at load "
          f"U={utilization}, {len(network.flows)} connections")
    print(f"Longest connection {CONNECTION0!r} traverses "
          f"{network.flow(CONNECTION0).n_hops} servers\n")

    analyzers = [
        DecomposedAnalysis(),
        ServiceCurveAnalysis(),
        IntegratedAnalysis(),
    ]
    bounds = {}
    for analyzer in analyzers:
        report = analyzer.analyze(network)
        bounds[analyzer.name] = report.delay_of(CONNECTION0)
        print(f"{analyzer.name:>14}: end-to-end delay bound = "
              f"{bounds[analyzer.name]:8.4f}")

    r_dec = relative_improvement(bounds["decomposed"],
                                 bounds["integrated"])
    r_sc = relative_improvement(bounds["service_curve"],
                                bounds["integrated"])
    print(f"\nIntegrated tightens Decomposed by {100 * r_dec:.1f}% "
          f"and Service Curve by {100 * r_sc:.1f}% "
          f"(paper eq. (10) metric).")

    # per-element breakdown of the integrated bound
    fd = IntegratedAnalysis().analyze(network).delays[CONNECTION0]
    print("\nIntegrated per-subsystem contributions:")
    for element, delay in fd.contributions:
        print(f"  servers {element}: {delay:.4f}")


if __name__ == "__main__":
    main()
