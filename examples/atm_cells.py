#!/usr/bin/env python
"""ATM cell-level delay guarantees (the paper's deployment context).

The paper targets ATM networks: 53-byte cells on OC-3 (155.52 Mb/s)
links.  This example works in physical units — cells, megabits,
microseconds — and shows how to turn the fluid analyses into certified
*cell* delay bounds with the packetization layer:

1. express each VC's traffic contract (PCR-limited, token-bucket SCR)
   in Mb and Mb/s,
2. run the fluid integrated analysis,
3. add the per-hop cell quantization ``L/C`` with
   ``packetize_report`` — the number an ATM CAC would compare against
   the requested CTD (cell transfer delay).

Run:  python examples/atm_cells.py
"""

from repro import (
    CONNECTION0,
    DecomposedAnalysis,
    IntegratedAnalysis,
    build_tandem,
)
from repro.servers.packetized import packetize_report

# physical constants
CELL_BYTES = 53
LINK_MBPS = 155.52                      # OC-3
CELL_MB = CELL_BYTES * 8 / 1e6          # megabits per cell
N_SWITCHES = 4
LOAD = 0.8

# per-VC contract: 100-cell burst tolerance, SCR = LOAD/4 of the link
BURST_CELLS = 100


def main() -> None:
    sigma_mb = BURST_CELLS * CELL_MB
    net = build_tandem(N_SWITCHES, LOAD, sigma=sigma_mb,
                       capacity=LINK_MBPS)
    vc = net.flow(CONNECTION0)
    print(f"ATM tandem: {N_SWITCHES} OC-3 switches at {LOAD:.0%} load")
    print(f"per-VC contract: burst {BURST_CELLS} cells "
          f"({sigma_mb * 1000:.1f} kb), SCR {vc.bucket.rho:.2f} Mb/s, "
          f"PCR = line rate\n")

    for analyzer in (DecomposedAnalysis(), IntegratedAnalysis()):
        fluid = analyzer.analyze(net)
        cells = packetize_report(fluid, net, max_packet=CELL_MB)
        f_us = fluid.delay_of(CONNECTION0) * 1e6 / 1.0  # s -> us (Mb/Mbps)
        c_us = cells.delay_of(CONNECTION0) * 1e6
        print(f"{analyzer.name:>12}: fluid CTD bound {f_us:9.1f} us, "
              f"cell-level {c_us:9.1f} us "
              f"(+{c_us - f_us:.2f} us quantization)")

    fluid = IntegratedAnalysis().analyze(net)
    cells = packetize_report(fluid, net, max_packet=CELL_MB)
    print("\nper-subsystem breakdown (cell-level, us):")
    for element, delay in cells.delays[CONNECTION0].contributions:
        print(f"  switches {element}: {delay * 1e6:9.1f}")

    print("\nAn ATM CAC using the integrated bound certifies a CTD "
          "roughly 30-45% lower than one using Cruz decomposition — "
          "the same hardware admits correspondingly more VCs.")


if __name__ == "__main__":
    main()
