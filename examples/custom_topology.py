#!/usr/bin/env python
"""Analyze a custom feed-forward network (beyond the paper's tandem).

Models a small datacenter-style aggregation fabric: two top-of-rack
multiplexors feeding an aggregation port, with a latency-sensitive
control flow sharing the fabric with bulk transfers.  Shows:

* building arbitrary feed-forward topologies with the public API,
* mixed scheduling disciplines (FIFO fabric, one static-priority port),
* choosing the integrated partitioning explicitly,
* reading per-element delay contributions from the report.

Run:  python examples/custom_topology.py
"""

from repro import (
    DecomposedAnalysis,
    Discipline,
    Flow,
    IntegratedAnalysis,
    Network,
    PairAlongPath,
    ServerSpec,
    TokenBucket,
)


def build_fabric() -> Network:
    servers = [
        ServerSpec("tor1", capacity=1.0),
        ServerSpec("tor2", capacity=1.0),
        # the aggregation uplink gives priority to control traffic
        ServerSpec("agg", capacity=1.0,
                   discipline=Discipline.STATIC_PRIORITY),
        ServerSpec("core", capacity=1.0),
    ]
    control = TokenBucket(sigma=0.2, rho=0.05, peak=1.0)
    bulk = TokenBucket(sigma=4.0, rho=0.25, peak=1.0)
    flows = [
        Flow("ctl", control, ["tor1", "agg", "core"], priority=0),
        Flow("bulk_a", bulk, ["tor1", "agg", "core"], priority=1),
        Flow("bulk_b", bulk, ["tor2", "agg", "core"], priority=1),
        Flow("scavenger", TokenBucket(2.0, 0.2, peak=1.0),
             ["tor2", "agg"], priority=2),
        Flow("local", TokenBucket(1.0, 0.3, peak=1.0), ["core"],
             priority=1),
    ]
    return Network(servers, flows)


def main() -> None:
    net = build_fabric()
    print("Aggregation fabric:",
          f"{len(net.servers)} servers, {len(net.flows)} flows")
    for sid in net.topological_servers():
        print(f"  {sid}: utilization {net.utilization(sid):.0%} "
              f"({net.server(sid).discipline})")

    dec = DecomposedAnalysis().analyze(net)
    integ = IntegratedAnalysis(strategy=PairAlongPath("bulk_a")) \
        .analyze(net)

    print(f"\n{'flow':>10} {'decomposed':>11} {'integrated':>11}")
    for flow in net.iter_flows():
        print(f"{flow.name:>10} {dec.delay_of(flow.name):11.4f} "
              f"{integ.delay_of(flow.name):11.4f}")

    print("\nIntegrated contributions for 'bulk_a':")
    for element, delay in integ.delays["bulk_a"].contributions:
        print(f"  {element}: {delay:.4f}")
    print("\nNote: the SP aggregation port is analyzed as a singleton "
          "(pair integration is derived for FIFO; mixed networks stay "
          "sound via the fallback).")


if __name__ == "__main__":
    main()
