"""Terminal (ASCII) line charts for figure series.

The paper's figures are log-scale line plots; for a dependency-free
visual check this module renders series on a character grid.  Not a
plotting library — just enough to see crossovers and monotonicity at a
glance in CI logs.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.eval.figures import Series

__all__ = ["render_chart"]

_MARKERS = "ox+*#@%&"


def render_chart(series: Sequence[Series], width: int = 64,
                 height: int = 16, log_y: bool = False,
                 title: str = "") -> str:
    """Render series sharing one load axis as an ASCII chart.

    Parameters
    ----------
    series:
        Series to plot (max 8; same load axis).
    width, height:
        Plot area size in characters.
    log_y:
        Use a logarithmic value axis (like the paper's figures).
    title:
        Optional heading line.
    """
    if not series:
        return "(no series)\n"
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")
    loads = series[0].loads
    for s in series:
        if s.loads != loads:
            raise ValueError("series must share the load axis")

    vals = [v for s in series for v in s.values
            if math.isfinite(v) and (not log_y or v > 0)]
    if not vals:
        return "(no finite data)\n"
    lo, hi = min(vals), max(vals)
    if log_y:
        lo, hi = math.log10(lo), math.log10(hi)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    def y_to_row(v: float) -> int | None:
        if not math.isfinite(v) or (log_y and v <= 0):
            return None
        y = math.log10(v) if log_y else v
        frac = (y - lo) / (hi - lo)
        return height - 1 - int(round(frac * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    umin, umax = loads[0], loads[-1]
    span = max(umax - umin, 1e-12)
    for si, s in enumerate(series):
        mark = _MARKERS[si]
        for u, v in zip(s.loads, s.values):
            row = y_to_row(v)
            if row is None:
                continue
            col = int(round((u - umin) / span * (width - 1)))
            grid[row][col] = mark

    def y_label(row: int) -> str:
        frac = (height - 1 - row) / (height - 1)
        y = lo + frac * (hi - lo)
        return f"{10 ** y:8.2f}" if log_y else f"{y:8.2f}"

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = y_label(r) if r % 4 == 0 or r == height - 1 else " " * 8
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 9 + f" U={umin:.2f}" +
                 " " * max(0, width - 16) + f"U={umax:.2f}")
    legend = "  ".join(f"{_MARKERS[i]}={s.label}"
                       for i, s in enumerate(series))
    lines.append(legend)
    return "\n".join(lines) + "\n"
