"""Plain-text rendering of figure data.

The paper's figures are log-scale line plots; the harness reports the
same information as aligned tables (one row per load, one column per
series) so runs are diffable and the shape claims in EXPERIMENTS.md can
be checked by eye.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.eval.figures import FigureData, Series

__all__ = ["render_series_table", "render_figure"]


def _fmt(v: float) -> str:
    if math.isnan(v):
        return "nan"
    if math.isinf(v):
        return "inf"
    return f"{v:.4f}"


def render_series_table(series: Sequence[Series],
                        value_header: str = "value") -> str:
    """Render series sharing one load axis as an aligned table."""
    if not series:
        return "(no series)\n"
    loads = series[0].loads
    for s in series:
        if s.loads != loads:
            raise ValueError(
                f"series {s.label!r} has a different load axis")
    headers = ["U"] + [s.label for s in series]
    rows = []
    for i, u in enumerate(loads):
        rows.append([f"{u:.2f}"] + [_fmt(s.values[i]) for s in series])
    widths = [max(len(headers[c]), *(len(r[c]) for r in rows))
              for c in range(len(headers))]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    _ = value_header  # reserved for future multi-table rendering
    return "\n".join(lines) + "\n"


def render_figure(fig: FigureData) -> str:
    """Render both panels of a figure as text."""
    parts = [
        f"== {fig.figure_id}: {fig.title} ==",
        "",
        "-- end-to-end delay bound of Connection 0 --",
        render_series_table(fig.delay_series),
        "-- relative improvement R_{X,Y} = (D_X - D_Y)/D_X --",
        render_series_table(fig.improvement_series),
    ]
    return "\n".join(parts)


def iter_figure_rows(fig: FigureData) -> Iterable[tuple]:
    """Yield ``(series_label, load, value)`` triples (for CSV export)."""
    for s in fig.delay_series + fig.improvement_series:
        for u, v in zip(s.loads, s.values):
            yield (s.label, u, v)
