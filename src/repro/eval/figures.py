"""Regeneration of the paper's evaluation figures (§4.3).

Each figure has two panels: the end-to-end delay bound ``D_X(U)`` of
Connection 0 (the longest connection) for several tandem sizes, and the
relative improvement ``R_{X,Y}(U)`` between the two algorithms compared.
We regenerate both panels as numeric series; the benchmark harness
prints them as tables (the paper's log-scale plots are monotone reading
of the same numbers).

Conventions for the relative-improvement panels (paper eq. (10), with X
the looser algorithm so the metric is positive when the paper says
"improvement"):

* Figure 4: ``R_{ServiceCurve, Decomposed}``;
* Figure 5: ``R_{Decomposed, Integrated}``;
* Figure 6: ``R_{ServiceCurve, Integrated}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.base import Analyzer
from repro.analysis.comparison import relative_improvement
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.eval.workloads import Sweep, default_sweep
from repro.network.tandem import CONNECTION0, build_tandem

__all__ = [
    "Series",
    "FigureData",
    "delay_series",
    "figure4",
    "figure5",
    "figure6",
    "FIGURES",
]


@dataclass(frozen=True)
class Series:
    """One plotted line: a label plus (load, value) pairs."""

    label: str
    loads: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.loads) != len(self.values):
            raise ValueError("loads and values length mismatch")


@dataclass(frozen=True)
class FigureData:
    """All series of one two-panel figure."""

    figure_id: str
    title: str
    delay_series: tuple[Series, ...]
    improvement_series: tuple[Series, ...]


def _analyzer_factory(name: str) -> Callable[[], Analyzer]:
    factories: Mapping[str, Callable[[], Analyzer]] = {
        "decomposed": DecomposedAnalysis,
        "service_curve": ServiceCurveAnalysis,
        "integrated": IntegratedAnalysis,
    }
    try:
        return factories[name]
    except KeyError:
        raise ValueError(f"unknown analyzer {name!r}") from None


def delay_series(analyzer_name: str, n_hops: int,
                 loads: Sequence[float], sigma: float = 1.0,
                 ) -> Series:
    """D_X(U) of Connection 0 for one algorithm and tandem size."""
    analyzer = _analyzer_factory(analyzer_name)()
    values = []
    for u in loads:
        net = build_tandem(n_hops, float(u), sigma)
        values.append(analyzer.analyze(net).delay_of(CONNECTION0))
    return Series(label=f"{analyzer_name} (n={n_hops})",
                  loads=tuple(float(u) for u in loads),
                  values=tuple(values))


def _figure(figure_id: str, title: str, algo_x: str, algo_y: str,
            sweep: Sweep) -> FigureData:
    """Generic two-algorithm figure: X is the looser baseline."""
    delay: list[Series] = []
    improv: list[Series] = []
    for n in sweep.hops:
        sx = delay_series(algo_x, n, sweep.loads, sweep.sigma)
        sy = delay_series(algo_y, n, sweep.loads, sweep.sigma)
        delay.extend([sx, sy])
        improv.append(Series(
            label=f"R[{algo_x},{algo_y}] (n={n})",
            loads=sweep.loads,
            values=tuple(
                relative_improvement(vx, vy)
                for vx, vy in zip(sx.values, sy.values)),
        ))
    return FigureData(figure_id=figure_id, title=title,
                      delay_series=tuple(delay),
                      improvement_series=tuple(improv))


def figure4(sweep: Sweep | None = None) -> FigureData:
    """Figure 4: Decomposed vs Service Curve (hops 2, 4, 6, 8)."""
    sweep = sweep if sweep is not None else default_sweep((2, 4, 6, 8))
    return _figure("FIG4",
                   "Decomposed method vs Service Curve method",
                   "service_curve", "decomposed", sweep)


def figure5(sweep: Sweep | None = None) -> FigureData:
    """Figure 5: Integrated vs Decomposed (hops 2, 4, 8)."""
    sweep = sweep if sweep is not None else default_sweep((2, 4, 8))
    return _figure("FIG5",
                   "Integrated method vs Decomposed method",
                   "decomposed", "integrated", sweep)


def figure6(sweep: Sweep | None = None) -> FigureData:
    """Figure 6: Integrated vs Service Curve (hops 2, 4, 6, 8)."""
    sweep = sweep if sweep is not None else default_sweep((2, 4, 6, 8))
    return _figure("FIG6",
                   "Integrated method vs Service Curve method",
                   "service_curve", "integrated", sweep)


#: Registry used by the benchmark harness and the experiment runner.
FIGURES: Mapping[str, Callable[..., FigureData]] = {
    "FIG4": figure4,
    "FIG5": figure5,
    "FIG6": figure6,
}
