"""TGT — systematic tightness study: observed worst case vs bounds.

For a set of topologies (tandem, parking lot, random feed-forward) the
study runs the adversarial packet-level simulation against the longest
flow and reports the ratio ``observed / bound`` for each analysis — a
direct empirical read on how much each method over-provisions.  The
observed value is a *lower* bound on the true worst case, so the ratios
are conservative (the bounds can only be tighter than they look).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.network.generators import parking_lot, random_feedforward
from repro.network.tandem import build_tandem
from repro.network.topology import Network
from repro.sim.adversary import simulate_adversarial

__all__ = ["TightnessRow", "tightness_study", "render_tightness"]


@dataclass(frozen=True)
class TightnessRow:
    """One topology's observed-vs-bound comparison for its longest flow."""

    topology: str
    flow: str
    observed: float
    integrated: float
    decomposed: float

    @property
    def integrated_ratio(self) -> float:
        """``observed / integrated``; NaN when the bound is zero/missing.

        A zero or missing bound used to yield ``0.0``, which silently
        read as "infinitely tight" in the table — NaN keeps the broken
        bound visible (rendered as ``n/a``).
        """
        return _ratio(self.observed, self.integrated)

    @property
    def decomposed_ratio(self) -> float:
        """``observed / decomposed``; NaN when the bound is zero/missing."""
        return _ratio(self.observed, self.decomposed)


def _ratio(observed: float, bound: float) -> float:
    """Observed-over-bound ratio; NaN for zero/missing bounds."""
    if not bound or math.isnan(bound):
        return float("nan")
    return observed / bound


def _longest_flow(net: Network) -> str:
    return max(net.flows.values(), key=lambda f: f.n_hops).name


def default_topologies() -> Mapping[str, Callable[[], Network]]:
    """The study's default topology suite."""
    return {
        "tandem(2,0.8)": lambda: build_tandem(2, 0.8),
        "tandem(4,0.6)": lambda: build_tandem(4, 0.6),
        "parking_lot(3,0.8)": lambda: parking_lot(3, 0.8),
        "random(seed=3)": lambda: random_feedforward(3),
        "random(seed=5)": lambda: random_feedforward(5),
    }


def tightness_study(topologies: Mapping[str, Callable[[], Network]]
                    | None = None,
                    horizon: float = 120.0,
                    packet_size: float = 0.05) -> list[TightnessRow]:
    """Run the tightness study; observed delays must stay below bounds.

    Raises AssertionError on a soundness violation — this function
    doubles as a self-check.
    """
    topologies = topologies or default_topologies()
    rows = []
    for name, factory in topologies.items():
        net = factory()
        target = _longest_flow(net)
        d_int = IntegratedAnalysis().analyze(net).delay_of(target)
        d_dec = DecomposedAnalysis().analyze(net).delay_of(target)
        sim = simulate_adversarial(net, target, horizon=horizon,
                                   packet_size=packet_size)
        obs = sim.max_delay(target)
        slack = packet_size * net.flow(target).n_hops
        assert obs <= d_int + slack + 1e-9, \
            f"soundness violation on {name}: {obs} > {d_int}"
        rows.append(TightnessRow(topology=name, flow=target,
                                 observed=obs, integrated=d_int,
                                 decomposed=d_dec))
    return rows


def _fmt_ratio(ratio: float) -> str:
    """``n/a`` for NaN ratios (zero/missing bound), ``xx.x%`` otherwise."""
    return f"{'n/a':>8}" if math.isnan(ratio) else f"{ratio:8.1%}"


def render_tightness(rows: Sequence[TightnessRow]) -> str:
    """Aligned text table of a tightness study."""
    header = (f"{'topology':>20} {'observed':>9} {'integ.':>8} "
              f"{'obs/int':>8} {'decomp.':>8} {'obs/dec':>8}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.topology:>20} {r.observed:9.3f} {r.integrated:8.3f} "
            f"{_fmt_ratio(r.integrated_ratio)} {r.decomposed:8.3f} "
            f"{_fmt_ratio(r.decomposed_ratio)}")
    return "\n".join(lines)
