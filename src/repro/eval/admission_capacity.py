"""ADM1 — admission-capacity experiment (the paper's §1 motivation,
made quantitative).

For a tandem of a given size, counts how many identical
deadline-constrained connections each analysis algorithm admits before
its test first rejects.  A tighter analysis certifies more connections
on the same hardware — the operational meaning of the delay-bound
improvements in Figures 4–6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.admission.controller import AdmissionController
from repro.admission.requests import ConnectionRequest
from repro.curves.token_bucket import TokenBucket
from repro.eval.figures import _analyzer_factory
from repro.network.topology import Network, ServerSpec

__all__ = ["CapacityPoint", "admission_capacity", "capacity_table"]


@dataclass(frozen=True)
class CapacityPoint:
    """Connections admitted by one analyzer at one deadline."""

    analyzer: str
    n_hops: int
    deadline: float
    rho: float
    admitted: int


def admission_capacity(analyzer_name: str, n_hops: int, deadline: float,
                       rho: float = 0.02, sigma: float = 1.0,
                       max_tries: int = 500, *,
                       incremental: bool = False) -> CapacityPoint:
    """Count admissible identical connections under one analyzer.

    Connections are peak-limited token buckets ``(sigma, rho)``
    traversing the whole tandem with the given end-to-end *deadline*.
    With ``incremental=True`` the controller runs engine-backed
    admission (same counts, bit-identical decisions, less recomputation
    across the k admission tests of the sweep).
    """
    network = Network([ServerSpec(k) for k in range(1, n_hops + 1)], [])
    controller = AdmissionController(network,
                                     _analyzer_factory(analyzer_name)(),
                                     incremental=incremental)

    def make(k: int) -> ConnectionRequest:
        return ConnectionRequest(
            f"conn_{k}", TokenBucket(sigma, rho, peak=1.0),
            tuple(range(1, n_hops + 1)), deadline)

    admitted = controller.admissible_count(make, max_tries=max_tries)
    return CapacityPoint(analyzer_name, n_hops, deadline, rho, admitted)


def capacity_table(analyzers: Sequence[str], n_hops: int,
                   deadlines: Sequence[float], rho: float = 0.02,
                   max_tries: int = 500, *,
                   incremental: bool = False) -> str:
    """Aligned text table: admitted connections per (deadline, analyzer)."""
    header = f"{'deadline':>9}" + "".join(f"{a:>15}" for a in analyzers)
    lines = [header, "-" * len(header)]
    for deadline in deadlines:
        row = f"{deadline:9.1f}"
        for a in analyzers:
            point = admission_capacity(a, n_hops, deadline, rho,
                                       max_tries=max_tries,
                                       incremental=incremental)
            row += f"{point.admitted:15d}"
        lines.append(row)
    return "\n".join(lines)
