"""Export regenerated figure data to CSV / JSON.

Runs are diffable artifacts: the benchmark harness prints tables, and
this module writes the same series to machine-readable files so the
reproduction can be compared across library versions or against
externally digitized paper plots.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Iterable

from repro.eval.figures import FigureData, Series

__all__ = ["figure_to_csv", "figure_to_json", "write_figure_files"]


def _clean(v: float):
    """JSON-safe value (inf/nan become strings)."""
    if math.isnan(v):
        return "nan"
    if math.isinf(v):
        return "inf" if v > 0 else "-inf"
    return v


def figure_to_csv(fig: FigureData, path: str | Path) -> Path:
    """Write one figure's series as long-form CSV.

    Columns: ``panel, series, load, value``.
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["panel", "series", "load", "value"])
        for panel, series in (("delay", fig.delay_series),
                              ("improvement", fig.improvement_series)):
            for s in series:
                for u, v in zip(s.loads, s.values):
                    writer.writerow([panel, s.label, u, _clean(v)])
    return path


def figure_to_json(fig: FigureData, path: str | Path) -> Path:
    """Write one figure as structured JSON."""
    def series_obj(s: Series) -> dict:
        return {"label": s.label, "loads": list(s.loads),
                "values": [_clean(v) for v in s.values]}

    doc = {
        "figure_id": fig.figure_id,
        "title": fig.title,
        "delay": [series_obj(s) for s in fig.delay_series],
        "improvement": [series_obj(s) for s in fig.improvement_series],
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2))
    return path


def write_figure_files(figures: Iterable[FigureData],
                       out_dir: str | Path) -> list[Path]:
    """Write CSV + JSON for every figure into *out_dir*."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for fig in figures:
        written.append(figure_to_csv(fig, out / f"{fig.figure_id}.csv"))
        written.append(figure_to_json(fig, out / f"{fig.figure_id}.json"))
    return written
