"""Evaluation harness (system S13): figure regeneration and tables."""

from repro.eval.figures import (
    FIGURES,
    FigureData,
    Series,
    delay_series,
    figure4,
    figure5,
    figure6,
)
from repro.eval.tables import render_figure, render_series_table
from repro.eval.runner import run_all, shape_checks, ShapeCheck
from repro.eval.workloads import Sweep, default_sweep, quick_sweep
from repro.eval.export import figure_to_csv, figure_to_json, write_figure_files
from repro.eval.ascii_chart import render_chart
from repro.eval.parallel import SweepPoint, evaluate_grid
from repro.eval.sensitivity import Elasticities, elasticities
from repro.eval.tightness import TightnessRow, render_tightness, tightness_study
from repro.eval.crossover import CrossoverPoint, crossover_table, find_crossover
from repro.eval.report import generate_report, write_report
from repro.eval.admission_capacity import (
    CapacityPoint,
    admission_capacity,
    capacity_table,
)

__all__ = [
    "FIGURES",
    "FigureData",
    "Series",
    "delay_series",
    "figure4",
    "figure5",
    "figure6",
    "render_figure",
    "render_series_table",
    "run_all",
    "shape_checks",
    "ShapeCheck",
    "Sweep",
    "default_sweep",
    "quick_sweep",
    "figure_to_csv",
    "figure_to_json",
    "write_figure_files",
    "render_chart",
    "SweepPoint",
    "evaluate_grid",
    "Elasticities",
    "elasticities",
    "TightnessRow",
    "render_tightness",
    "tightness_study",
    "CapacityPoint",
    "admission_capacity",
    "capacity_table",
    "generate_report",
    "write_report",
    "CrossoverPoint",
    "crossover_table",
    "find_crossover",
]
