"""Experiment runner: regenerate every figure and summarize shape checks.

``python -m repro.eval.runner`` prints all three figures as tables and
verifies the qualitative claims recorded in EXPERIMENTS.md:

* C1 — Algorithm Integrated is never looser than Algorithm Decomposed;
* C2 — the improvement of Integrated over Decomposed grows with network
  size at moderate loads;
* C3 — Service Curve is looser than Decomposed at high loads, while at
  low loads on large networks the compounding of decomposed local
  bounds can make Decomposed looser (the paper's Figure 4 nuance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.figures import FigureData, figure4, figure5, figure6
from repro.eval.tables import render_figure
from repro.eval.workloads import Sweep

__all__ = ["ShapeCheck", "run_all", "shape_checks", "main"]


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim and whether the regenerated data shows it."""

    claim: str
    holds: bool
    detail: str


def run_all(sweep: Sweep | None = None) -> dict[str, FigureData]:
    """Regenerate all figures; pass a sweep to shrink the grid."""
    return {
        "FIG4": figure4(sweep),
        "FIG5": figure5(sweep),
        "FIG6": figure6(sweep),
    }


def _series_by_prefix(fig: FigureData, prefix: str, n: int):
    label = f"{prefix} (n={n})"
    for s in fig.delay_series:
        if s.label == label:
            return s
    raise KeyError(label)


def shape_checks(figures: dict[str, FigureData]) -> list[ShapeCheck]:
    """Evaluate the paper's qualitative claims on regenerated data."""
    checks: list[ShapeCheck] = []

    # C1: integrated <= decomposed everywhere (FIG5)
    fig5 = figures["FIG5"]
    violations = []
    sizes5 = sorted({int(s.label.split("n=")[1].rstrip(")"))
                     for s in fig5.delay_series})
    for n in sizes5:
        dec = _series_by_prefix(fig5, "decomposed", n)
        integ = _series_by_prefix(fig5, "integrated", n)
        for u, dv, iv in zip(dec.loads, dec.values, integ.values):
            if iv > dv * (1 + 1e-9):
                violations.append((n, u, dv, iv))
    checks.append(ShapeCheck(
        claim="Integrated never looser than Decomposed",
        holds=not violations,
        detail=("no violations" if not violations
                else f"violations: {violations[:3]}"),
    ))

    # C2: improvement grows with size at a moderate load (paper: <= 80%)
    r_at_mid = {}
    for s in fig5.improvement_series:
        n = int(s.label.split("n=")[1].rstrip(")"))
        mid = min(range(len(s.loads)),
                  key=lambda i: abs(s.loads[i] - 0.5))
        r_at_mid[n] = s.values[mid]
    ordered = [r_at_mid[n] for n in sorted(r_at_mid)]
    grows = all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))
    checks.append(ShapeCheck(
        claim="R[Decomposed,Integrated] grows with network size (U=0.5)",
        holds=grows,
        detail=f"R at U=0.5 by size: "
               f"{ {n: round(v, 3) for n, v in sorted(r_at_mid.items())} }",
    ))

    # C3: service curve looser than decomposed at the highest load
    fig4 = figures["FIG4"]
    sizes4 = sorted({int(s.label.split("n=")[1].rstrip(")"))
                     for s in fig4.delay_series})
    sc_worse = []
    for n in sizes4:
        sc = _series_by_prefix(fig4, "service_curve", n)
        dec = _series_by_prefix(fig4, "decomposed", n)
        sc_worse.append(sc.values[-1] >= dec.values[-1])
    checks.append(ShapeCheck(
        claim="Service Curve looser than Decomposed at high load",
        holds=all(sc_worse),
        detail=f"at U={fig4.delay_series[0].loads[-1]:.2f}: "
               f"{dict(zip(sizes4, sc_worse))}",
    ))
    return checks


def main() -> None:  # pragma: no cover - CLI entry
    figures = run_all()
    for fig in figures.values():
        print(render_figure(fig))
    print("== shape checks ==")
    for c in shape_checks(figures):
        print(f"[{'PASS' if c.holds else 'FAIL'}] {c.claim}: {c.detail}")


if __name__ == "__main__":  # pragma: no cover
    main()
