"""Sensitivity analysis of delay bounds to traffic parameters.

Quantifies how each algorithm's Connection-0 bound responds to the
workload knobs — load ``U``, burst ``sigma``, network size ``n`` — via
normalized finite-difference elasticities

``E_x = (dD / D) / (dx / x)``

(the percentage change in the bound per percent change in the
parameter).  Two structural facts make good test anchors: all bounds
are exactly homogeneous of degree 1 in sigma (elasticity 1), and bounds
are increasing in U and n (positive elasticities).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.figures import _analyzer_factory
from repro.network.tandem import CONNECTION0, build_tandem

__all__ = ["Elasticities", "elasticities"]


@dataclass(frozen=True)
class Elasticities:
    """Normalized sensitivities of one algorithm's bound at one point."""

    analyzer: str
    n_hops: int
    load: float
    sigma: float
    delay: float
    wrt_load: float
    wrt_sigma: float
    wrt_hops: float


def _delay(analyzer_name: str, n: int, u: float, sigma: float) -> float:
    analyzer = _analyzer_factory(analyzer_name)()
    return analyzer.analyze(build_tandem(n, u, sigma)) \
        .delay_of(CONNECTION0)


def elasticities(analyzer_name: str, n_hops: int, load: float,
                 sigma: float = 1.0, rel_step: float = 0.02,
                 ) -> Elasticities:
    """Finite-difference elasticities at one operating point.

    ``rel_step`` is the relative perturbation for U and sigma; the size
    elasticity uses the discrete step ``n -> n + 1``.
    """
    if not (0.0 < load < 1.0):
        raise ValueError(f"load must be in (0,1), got {load}")
    if not (0.0 < rel_step < 0.5):
        raise ValueError(f"rel_step must be in (0, 0.5), got {rel_step}")
    d0 = _delay(analyzer_name, n_hops, load, sigma)

    du = min(load * rel_step, (1.0 - load) / 2)
    d_u = _delay(analyzer_name, n_hops, load + du, sigma)
    e_load = ((d_u - d0) / d0) / (du / load)

    ds = sigma * rel_step
    d_s = _delay(analyzer_name, n_hops, load, sigma + ds)
    e_sigma = ((d_s - d0) / d0) / (ds / sigma)

    d_n = _delay(analyzer_name, n_hops + 1, load, sigma)
    e_hops = ((d_n - d0) / d0) / (1.0 / n_hops)

    return Elasticities(
        analyzer=analyzer_name, n_hops=n_hops, load=load, sigma=sigma,
        delay=d0, wrt_load=e_load, wrt_sigma=e_sigma, wrt_hops=e_hops)
