"""Workload definitions for the evaluation (paper §4.1).

The paper sweeps the tandem's network load ``U`` for several network
sizes; every source is a unit-burst token bucket with rate ``U/4``.
This module centralizes the sweep parameters so figures, benchmarks and
tests agree on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Sweep", "default_sweep", "quick_sweep"]


@dataclass(frozen=True)
class Sweep:
    """One evaluation sweep configuration.

    Attributes
    ----------
    loads:
        Network loads ``U`` (interior-port utilizations) to evaluate.
    hops:
        Tandem sizes ``n`` to evaluate.
    sigma:
        Source burst size (paper: 1).
    """

    loads: tuple[float, ...]
    hops: tuple[int, ...]
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if not self.loads or not self.hops:
            raise ValueError("sweep needs at least one load and one size")
        for u in self.loads:
            if not (0.0 < u < 1.0):
                raise ValueError(f"loads must be in (0, 1), got {u}")
        for n in self.hops:
            if n < 1:
                raise ValueError(f"hops must be >= 1, got {n}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")


def default_sweep(hops: tuple[int, ...] = (2, 4, 6, 8)) -> Sweep:
    """The paper's sweep: U from 0.1 to 0.9 in steps of 0.1."""
    loads = tuple(np.round(np.arange(0.1, 0.95, 0.1), 10))
    return Sweep(loads=loads, hops=hops)


def quick_sweep(hops: tuple[int, ...] = (2, 4)) -> Sweep:
    """A small sweep for fast tests and benchmark warmups."""
    return Sweep(loads=(0.2, 0.5, 0.8), hops=hops)
