"""XOVER — locating the Decomposed/Service-Curve crossover (Figure 4).

The paper observes that the service-curve method loses to decomposition
as load grows, but that on *larger* networks the compounding of
decomposition's local bounds hands the advantage back to the
service-curve method at low loads.  This module quantifies the claim:
for each tandem size it bisects for the load ``U*`` at which
``D_SC(U*) = D_D(U*)`` — below ``U*`` the service-curve method wins,
above it decomposition does.  A monotonically increasing ``U*(n)``
curve *is* the paper's compounding effect, measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.closed_forms import (
    decomposed_delay,
    service_curve_delay,
)

__all__ = ["CrossoverPoint", "find_crossover", "crossover_table"]


@dataclass(frozen=True)
class CrossoverPoint:
    """The load at which D_SC and D_D meet for one tandem size.

    ``load`` is NaN when one method dominates over the whole (0, 1)
    range; ``dominant`` then names it ("decomposed"/"service_curve"),
    and is None when a genuine crossover exists.
    """

    n_hops: int
    load: float
    dominant: str | None = None

    @property
    def exists(self) -> bool:
        return not math.isnan(self.load)


def _gap(n: int, u: float, sigma: float) -> float:
    """D_SC - D_D at one operating point (closed forms: exact, fast)."""
    return service_curve_delay(n, u, sigma) - decomposed_delay(n, u, sigma)


def find_crossover(n_hops: int, sigma: float = 1.0,
                   lo: float = 1e-3, hi: float = 0.999,
                   tolerance: float = 1e-9) -> CrossoverPoint:
    """Bisect for the load where the two baselines swap order.

    Uses the exact tandem closed forms, so the bisection is cheap and
    the answer is machine-precise.
    """
    if n_hops < 1:
        raise ValueError(f"n_hops must be >= 1, got {n_hops}")
    g_lo, g_hi = _gap(n_hops, lo, sigma), _gap(n_hops, hi, sigma)
    if g_lo > 0 and g_hi > 0:
        # service curve looser over the whole range
        return CrossoverPoint(n_hops, math.nan, dominant="decomposed")
    if g_lo < 0 and g_hi < 0:
        # service curve tighter over the whole range (extreme
        # compounding of decomposition on very long tandems)
        return CrossoverPoint(n_hops, math.nan, dominant="service_curve")
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if (_gap(n_hops, mid, sigma) > 0) == (g_lo > 0):
            lo = mid
        else:
            hi = mid
    return CrossoverPoint(n_hops, 0.5 * (lo + hi))


def crossover_table(sizes: Sequence[int], sigma: float = 1.0) -> str:
    """Text table of U*(n): the measured compounding effect."""
    lines = [f"{'n':>4} {'U* (SC == Dec)':>16}   regime"]
    for n in sizes:
        p = find_crossover(n, sigma)
        if p.exists:
            lines.append(f"{n:4d} {p.load:16.4f}   "
                         "service_curve tighter below U*")
        else:
            lines.append(f"{n:4d} {'(none)':>16}   "
                         f"{p.dominant} tighter everywhere")
    return "\n".join(lines)
