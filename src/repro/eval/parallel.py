"""Process-parallel sweep evaluation.

Figure regeneration is embarrassingly parallel across (algorithm, size,
load) points; this module fans the grid out over a process pool.  Each
worker rebuilds its tandem and analyzer from plain picklable parameters
— analyses are pure functions of the network, so there is no shared
state to synchronize (the standard single-program multiple-data pattern;
per the project's HPC guidance we parallelize only the outer,
coarse-grained loop and keep the numeric kernels vectorized).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.eval.figures import _analyzer_factory  # shared registry
from repro.network.tandem import CONNECTION0, build_tandem

__all__ = ["SweepPoint", "evaluate_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """One (algorithm, size, load) evaluation point and its result."""

    analyzer: str
    n_hops: int
    load: float
    sigma: float
    delay: float


def _evaluate_one(args: tuple[str, int, float, float]) -> SweepPoint:
    analyzer_name, n_hops, load, sigma = args
    analyzer = _analyzer_factory(analyzer_name)()
    net = build_tandem(n_hops, load, sigma)
    delay = analyzer.analyze(net).delay_of(CONNECTION0)
    return SweepPoint(analyzer_name, n_hops, load, sigma, delay)


def evaluate_grid(analyzers: Sequence[str], hops: Sequence[int],
                  loads: Sequence[float], sigma: float = 1.0,
                  max_workers: int | None = None,
                  parallel: bool = True) -> list[SweepPoint]:
    """Evaluate Connection 0's bound over the full parameter grid.

    Parameters
    ----------
    analyzers:
        Analyzer names (see :data:`repro.cli.ANALYZERS` keys minus
        "feedback").
    hops, loads:
        Grid axes.
    sigma:
        Source burst size.
    max_workers:
        Pool size (default: ``os.cpu_count()``).
    parallel:
        Set False to run in-process (useful under profilers and on
        platforms where fork is unavailable).

    Returns
    -------
    list[SweepPoint]
        One point per grid element, in deterministic
        (analyzer, hops, load) order.
    """
    tasks = [(a, int(n), float(u), float(sigma))
             for a in analyzers for n in hops for u in loads]
    if not parallel or len(tasks) <= 1:
        return [_evaluate_one(t) for t in tasks]
    workers = max_workers or min(len(tasks), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_evaluate_one, tasks))
