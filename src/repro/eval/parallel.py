"""Fault-tolerant process-parallel sweep evaluation.

Figure regeneration is embarrassingly parallel across (algorithm, size,
load) points; this module fans the grid out over a process pool.  Each
worker rebuilds its tandem and analyzer from plain picklable parameters
— analyses are pure functions of the network, so there is no shared
state to synchronize (the standard single-program multiple-data pattern;
per the project's HPC guidance we parallelize only the outer,
coarse-grained loop and keep the numeric kernels vectorized).

A long sweep must survive its workers: one crashed or hung process must
never cost the whole grid.  The evaluator therefore provides

* **per-task wall-clock timeouts** (a hung analysis is terminated with
  its pool and the sweep continues),
* **bounded retries with exponential backoff** (transient failures heal
  themselves),
* **crash isolation** (a point that keeps failing is *recorded* as an
  error entry in the result list, not raised), and
* **checkpoint/resume** (completed points stream to a JSONL file;
  ``resume=True`` re-runs only missing or failed points).

Worker processes are daemonic (``multiprocessing.Pool``), so even a
task that ignores termination cannot outlive the evaluator.

For fault-path testing and chaos drills, the environment variable
``REPRO_SWEEP_FAULT`` injects a fault into matching worker tasks:
``"crash@0.5"`` hard-exits the worker evaluating load 0.5, ``"hang@..."``
sleeps forever, ``"raise@..."`` raises; an empty selector matches every
task.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.context import NULL_CONTEXT, AnalysisContext, MetricsRegistry
from repro.curves.kernels import current_kernel
from repro.eval.figures import _analyzer_factory  # shared registry
from repro.network.tandem import CONNECTION0, build_tandem
from repro.utils.durable import atomic_write_text

__all__ = ["SweepPoint", "evaluate_grid"]

#: Ceiling applied per task even when no explicit timeout is requested,
#: so a wedged worker can never stall a sweep indefinitely.
DEFAULT_TASK_TIMEOUT = 600.0

_Task = tuple[str, int, float, float]


@dataclass(frozen=True)
class SweepPoint:
    """One (algorithm, size, load) evaluation point and its result.

    ``error`` is ``None`` for successful points; failed points carry
    the failure description and ``delay = nan``.  ``attempts`` counts
    evaluation attempts (1 = first try succeeded).  ``elapsed_s`` is
    the wall-clock evaluation time of the successful attempt, and
    ``phases`` — populated only under ``profile=True`` — carries the
    point's :class:`~repro.context.MetricsRegistry` counters (curve
    kernel invocations, server steps, per-phase timers).  ``kernel``
    records the curve kernel the point was evaluated under (empty on
    rows checkpointed before kernels were recorded); resume treats a
    row produced under a different kernel as stale and re-runs it —
    grid-sampled and exact bounds must never mix in one sweep.
    """

    analyzer: str
    n_hops: int
    load: float
    sigma: float
    delay: float
    error: str | None = None
    attempts: int = 1
    elapsed_s: float = 0.0
    phases: Mapping[str, float] | None = None
    kernel: str = ""

    @property
    def ok(self) -> bool:
        """True when the point evaluated successfully."""
        return self.error is None


def _maybe_inject_fault(task: _Task) -> None:
    """Chaos hook: honor ``REPRO_SWEEP_FAULT`` (see module docstring)."""
    spec = os.environ.get("REPRO_SWEEP_FAULT")
    if not spec:
        return
    kind, _, selector = spec.partition("@")
    if selector and f"{task[2]:g}" != selector:
        return
    if kind == "crash":
        os._exit(13)
    elif kind == "hang":
        time.sleep(3600)
    elif kind == "raise":
        raise RuntimeError(f"injected fault on task {task}")


#: Per-process cache of opened (read-only) store handles, keyed by
#: path.  In serial mode :func:`evaluate_grid` registers its own
#: writable handle here so in-process evaluation probes live state.
_WORKER_STORES: dict = {}


def _worker_store(path: str):
    store = _WORKER_STORES.get(path)
    if path not in _WORKER_STORES or (store is not None and store.closed):
        from repro.engine.parallel import open_worker_store
        store = open_worker_store(path)
        _WORKER_STORES[path] = store
    return store


def _store_hooks(store, records: list):
    """Sweep-unit interceptors backed by the persistent store.

    Serves per-server steps and per-block evaluations from *store*
    (same content keys as the incremental engine, so hits are
    bit-identical by construction) and collects every fresh
    computation into *records* for the driver's serialized write.
    """
    from repro.analysis.propagation import server_step
    from repro.core.integrated import evaluate_block
    from repro.engine.incremental import _block_key, _server_key

    def lookup(key_fn, compute, payload):
        key = key_fn(payload)
        if store is not None:
            entry = store.get(key)
            if entry is not None:
                return entry.value
        t0 = time.perf_counter()
        value = compute(payload)
        records.append((key, value, time.perf_counter() - t0))
        return value

    def step(sid, si):
        return lookup(_server_key, server_step, si)

    def block(blk, bi):
        return lookup(_block_key, evaluate_block, bi)

    return step, block


def _evaluate_one(args: _Task, profile: bool = False,
                  store_path: str | None = None):
    """Evaluate one grid point; the worker entry point.

    Returns the bare :class:`SweepPoint` without a store, or
    ``(point, seed_records)`` when *store_path* is set — fresh
    per-unit results travel back to the driver, which owns the single
    writable handle.
    """
    analyzer_name, n_hops, load, sigma = args
    _maybe_inject_fault(args)
    start = time.perf_counter()
    kernel = current_kernel()
    analyzer = _analyzer_factory(analyzer_name)()
    net = build_tandem(n_hops, load, sigma)
    if not profile and store_path is None:
        delay = analyzer.analyze(net).delay_of(CONNECTION0)
        return SweepPoint(analyzer_name, n_hops, load, sigma, delay,
                          elapsed_s=time.perf_counter() - start,
                          kernel=kernel)
    records: list = []
    ctx = (AnalysisContext(metrics=MetricsRegistry()) if profile
           else NULL_CONTEXT)
    if store_path is not None:
        step, block = _store_hooks(_worker_store(store_path), records)
        ctx = ctx.with_interceptors(step=step, block=block)
    if profile:
        with ctx.metrics.timed("point"):
            delay = analyzer.run(net, ctx).delay_of(CONNECTION0)
        phases = {k: round(float(v), 9)
                  for k, v in sorted(ctx.metrics.as_dict().items())}
        point = SweepPoint(analyzer_name, n_hops, load, sigma, delay,
                           elapsed_s=time.perf_counter() - start,
                           phases=phases, kernel=kernel)
    else:
        delay = analyzer.run(net, ctx).delay_of(CONNECTION0)
        point = SweepPoint(analyzer_name, n_hops, load, sigma, delay,
                           elapsed_s=time.perf_counter() - start,
                           kernel=kernel)
    if store_path is not None:
        return point, records
    return point


def _split_result(res) -> tuple[SweepPoint, list]:
    """Normalize a worker result to ``(point, seed_records)``."""
    if isinstance(res, tuple):
        return res
    return res, []


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------


def _point_to_record(point: SweepPoint) -> dict:
    rec = {
        "analyzer": point.analyzer,
        "n_hops": point.n_hops,
        "load": point.load,
        "sigma": point.sigma,
        "delay": None if math.isnan(point.delay) else point.delay,
        "error": point.error,
        "attempts": point.attempts,
        "elapsed_s": point.elapsed_s,
        "kernel": point.kernel,
    }
    if point.phases is not None:
        rec["phases"] = dict(point.phases)
    return rec


def _record_to_point(rec: dict) -> SweepPoint:
    delay = rec.get("delay")
    phases = rec.get("phases")
    return SweepPoint(
        rec["analyzer"], int(rec["n_hops"]), float(rec["load"]),
        float(rec["sigma"]),
        math.nan if delay is None else float(delay),
        error=rec.get("error"), attempts=int(rec.get("attempts", 1)),
        elapsed_s=float(rec.get("elapsed_s", 0.0)),
        phases=None if phases is None else dict(phases),
        kernel=str(rec.get("kernel", "")))


def _point_key(point: SweepPoint) -> _Task:
    return (point.analyzer, point.n_hops, point.load, point.sigma)


def _load_checkpoint(path: Path, kernel: str) -> dict[_Task, SweepPoint]:
    """Successfully completed points from a checkpoint file.

    Records are replayed in file order with last-write-wins per task: a
    killed run can leave the same point recorded more than once (e.g.
    success from one attempt, then an error from a re-queued attempt
    after a resume), and only the *latest* record counts.  Failed
    (error) entries are not returned: resume re-runs them — including
    when the error superseded an earlier success.  Corrupt lines (a
    crash mid-write) are skipped.

    *kernel* is the curve kernel the resuming sweep will run under.  A
    successful row recorded under a *different* kernel is treated like
    a failure and re-run: its bound came from different arithmetic and
    must not be mixed into this sweep's results.  Rows from checkpoints
    that predate kernel recording carry ``kernel == ""`` and are also
    re-run — there is no way to know what produced them.
    """
    done: dict[_Task, SweepPoint] = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            point = _record_to_point(json.loads(line))
        except (ValueError, KeyError, TypeError):
            continue
        if point.ok and point.kernel == kernel:
            done[_point_key(point)] = point
        else:
            done.pop(_point_key(point), None)
    return done


class _Checkpointer:
    """Atomic JSONL sink for completed points (no-op when off).

    Every write rewrites the whole file through
    :func:`repro.utils.durable.atomic_write_text` (tmp + fsync +
    ``os.replace`` + parent-directory fsync), so the checkpoint on disk
    is always a complete, parseable JSONL snapshot that survives power
    loss — a crash mid-write can no longer leave a truncated last line
    (the old content survives instead).  Point volume is modest (one
    line per grid point), so rewriting is cheap relative to the
    analyses being checkpointed.

    On resume the carried-over lines are deduplicated per task with
    last-write-wins: a killed run can leave the same point both
    completed-in-file and re-queued, and without the dedupe every
    crash/resume cycle appended another record for it — growing the
    file and leaving its history ambiguous.  One record per task
    survives the rewrite; corrupt lines are dropped (the rewrite
    re-snapshots only parseable state).
    """

    def __init__(self, path: Path | None, resume: bool) -> None:
        self._path: Path | None = path
        self._latest: dict[_Task, str] = {}
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        if resume and path.exists():
            for line in path.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    point = _record_to_point(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    continue
                self._latest[_point_key(point)] = line
        self._replace()

    def _replace(self) -> None:
        assert self._path is not None
        content = "".join(line + "\n" for line in self._latest.values())
        atomic_write_text(self._path, content)

    def write(self, point: SweepPoint) -> None:
        if self._path is None:
            return
        self._latest[_point_key(point)] = json.dumps(
            _point_to_record(point))
        self._replace()

    def close(self) -> None:
        self._path = None
        self._latest = {}


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


def _failure_point(task: _Task, error: str, attempts: int) -> SweepPoint:
    a, n, u, s = task
    return SweepPoint(a, n, u, s, math.nan, error=error,
                      attempts=attempts, kernel=current_kernel())


def _run_serial(pending: list[tuple[_Task, int]], retries: int,
                backoff: float,
                record: Callable[[_Task, SweepPoint], None],
                profile: bool = False,
                store_path: str | None = None,
                collect: Callable[[list], None] | None = None) -> None:
    for task, attempt in pending:
        while True:
            # the isolation boundary wraps only the evaluation: an
            # exception out of record() itself (an expired ctx deadline,
            # a checkpoint-sink failure) must propagate, not be
            # re-recorded as a second, contradictory row for a point
            # that already succeeded
            try:
                point, seeds = _split_result(
                    _evaluate_one(task, profile, store_path))
                point = replace(point, attempts=attempt)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                if attempt > retries:
                    record(task, _failure_point(
                        task, f"{type(exc).__name__}: {exc}", attempt))
                    break
                time.sleep(backoff * 2 ** (attempt - 1))
                attempt += 1
                continue
            if collect is not None and seeds:
                collect(seeds)
            record(task, point)
            break


def _run_parallel(pending: list[tuple[_Task, int]], workers: int,
                  timeout: float, retries: int, backoff: float,
                  record: Callable[[_Task, SweepPoint], None],
                  profile: bool = False,
                  store_path: str | None = None,
                  collect: Callable[[list], None] | None = None) -> None:
    """Pool rounds: each round submits everything pending, a timeout
    kills the round's pool (the only way to stop a hung worker) and the
    unfinished remainder rolls into the next round."""
    while pending:
        next_round: list[tuple[_Task, int]] = []

        def fail(task: _Task, attempt: int, error: str) -> None:
            if attempt > retries:
                record(task, _failure_point(task, error, attempt))
            else:
                next_round.append((task, attempt + 1))

        pool = multiprocessing.Pool(processes=workers)
        try:
            handles = [(task, attempt,
                        pool.apply_async(_evaluate_one,
                                         (task, profile, store_path)))
                       for task, attempt in pending]
            poisoned = False
            for task, attempt, handle in handles:
                # after a kill, salvage whatever already finished and
                # roll the rest into the next round at no attempt cost
                wait = 0.05 if poisoned else timeout
                # only handle.get sits inside the isolation boundary:
                # if record() itself raises (expired ctx deadline,
                # checkpoint-sink failure) the task must not be
                # re-queued or re-recorded as an error — that race
                # wrote a second, contradictory checkpoint row for an
                # already-completed point
                try:
                    point, seeds = _split_result(handle.get(wait))
                    point = replace(point, attempts=attempt)
                except multiprocessing.TimeoutError:
                    if poisoned:
                        next_round.append((task, attempt))
                    else:
                        fail(task, attempt,
                             f"no result within {timeout:g}s "
                             "(worker hung or crashed)")
                        pool.terminate()
                        poisoned = True
                    continue
                except Exception as exc:  # noqa: BLE001 - worker raised
                    fail(task, attempt,
                         f"{type(exc).__name__}: {exc}")
                    continue
                if collect is not None and seeds:
                    collect(seeds)
                record(task, point)
        finally:
            pool.terminate()
            pool.join()
        pending = next_round
        if pending:
            max_attempt = max(a for _, a in pending)
            time.sleep(backoff * 2 ** (max_attempt - 2))


def evaluate_grid(analyzers: Sequence[str], hops: Sequence[int],
                  loads: Sequence[float], sigma: float = 1.0,
                  max_workers: int | None = None,
                  parallel: bool = True,
                  timeout: float | None = None,
                  retries: int = 1,
                  backoff: float = 0.25,
                  checkpoint: str | Path | None = None,
                  resume: bool = False,
                  store=None,
                  ctx: AnalysisContext = NULL_CONTEXT,
                  profile: bool = False,
                  progress: Callable[[int, int, int], None] | None = None,
                  ) -> list[SweepPoint]:
    """Evaluate Connection 0's bound over the full parameter grid.

    Parameters
    ----------
    analyzers:
        Analyzer names (see :data:`repro.cli.ANALYZERS` keys minus
        "feedback").  Unknown names raise :class:`ValueError` before
        any work starts.
    hops, loads:
        Grid axes.
    sigma:
        Source burst size.
    max_workers:
        Pool size (default: ``os.cpu_count()``).
    parallel:
        Set False to run in-process (useful under profilers and on
        platforms where fork is unavailable).
    timeout:
        Per-task wall-clock limit in seconds (parallel mode); a task
        that produces no result in time is retried and eventually
        recorded as an error.  Defaults to a generous
        :data:`DEFAULT_TASK_TIMEOUT` ceiling so a wedged worker can
        never stall the sweep.
    retries:
        Extra attempts per failing task before its error is recorded.
    backoff:
        Base of the exponential retry backoff in seconds (the k-th
        retry waits ``backoff * 2**(k-1)``).
    checkpoint:
        Optional JSONL file; every completed point (success or final
        error) is appended as it lands, so a killed sweep loses at most
        in-flight work.
    resume:
        With *checkpoint*: load previously completed points and only
        evaluate missing or failed ones.
    store:
        Optional :class:`~repro.store.AnalysisStore` memoizing
        per-server / per-block results *across* runs: workers probe it
        read-only and the driver lands their fresh entries in one
        serialized write, so a resumed or repeated sweep recomputes
        only what no previous run derived.  Results are bit-identical
        with or without the store (same content keys as the
        incremental engine; checkpoint rows additionally pin the curve
        kernel).
    ctx:
        Execution context for the sweep driver.  The grid size and live
        completion state land in its registry (``sweep.total``,
        ``sweep.done``, ``sweep.errors``, ``sweep.retries``,
        ``sweep.point_s``) and a deadline on *ctx* is checked between
        points.  Workers run in separate processes and do not see *ctx*.
    profile:
        Evaluate each point under a fresh profiling context and attach
        its counters to :attr:`SweepPoint.phases` (and to checkpoint
        records).  Adds per-point instrumentation overhead.
    progress:
        Optional ``progress(done, total, errors)`` callback invoked
        after every recorded point (from the driver process) — the hook
        behind the CLI's live progress line.

    Returns
    -------
    list[SweepPoint]
        One point per grid element, in deterministic
        (analyzer, hops, load) order.  Failed points carry ``error``
        (and ``delay = nan``) instead of aborting the sweep; filter
        with ``point.ok``.
    """
    for name in analyzers:
        _analyzer_factory(name)  # fail fast on unknown analyzers
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    if timeout is not None and not timeout > 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")

    tasks: list[_Task] = [(a, int(n), float(u), float(sigma))
                          for a in analyzers for n in hops for u in loads]
    results: dict[_Task, SweepPoint] = {}
    ckpt_path = Path(checkpoint) if checkpoint is not None else None
    sweep_kernel = current_kernel()
    if ckpt_path is not None and resume and ckpt_path.exists():
        cached = _load_checkpoint(ckpt_path, sweep_kernel)
        results.update((t, cached[t]) for t in tasks if t in cached)

    sink = _Checkpointer(ckpt_path, resume)

    total = len(tasks)
    done = len(results)
    errors = 0
    if ctx.metrics is not None:
        ctx.metrics.set("sweep.total", float(total))
        ctx.metrics.set("sweep.done", float(done))
        ctx.metrics.set("sweep.errors", 0.0)

    recorded: set[_Task] = set()

    def record(task: _Task, point: SweepPoint) -> None:
        nonlocal done, errors
        # exactly-one-row invariant: the first record for a point wins.
        # A late echo (e.g. a result surfacing after its timeout was
        # already recorded) must not rewrite the checkpoint row or
        # double-count sweep.done.
        if task in recorded:
            ctx.count("sweep.duplicate_results")
            return
        recorded.add(task)
        results[task] = point
        sink.write(point)
        ctx.checkpoint("sweep point recorded")
        done += 1
        ctx.count("sweep.done")
        ctx.count("sweep.point_s", point.elapsed_s)
        if point.attempts > 1:
            ctx.count("sweep.retries", point.attempts - 1)
        if not point.ok:
            errors += 1
            ctx.count("sweep.errors")
        if progress is not None:
            progress(done, total, errors)

    store_path: str | None = None
    collect: Callable[[list], None] | None = None
    if store is not None:
        store_path = str(store.path)

        def collect(seeds: list) -> None:
            if store.read_only:
                return
            from repro.errors import StoreError
            try:
                ctx.count("store.writes", store.seed(seeds))
            except (StoreError, OSError):
                ctx.count("store.write_errors")

    pending = [(t, 1) for t in tasks if t not in results]
    serial = not parallel or len(pending) <= 1
    if store_path is not None and serial:
        # in-process evaluation probes the live (writable) handle, so
        # entries landed by earlier points serve later ones immediately
        _WORKER_STORES[store_path] = store
    with ctx.span("sweep", points=len(tasks), pending=len(pending),
                  profile=profile):
        try:
            if serial:
                _run_serial(pending, retries, backoff, record, profile,
                            store_path, collect)
            else:
                workers = max_workers or min(len(pending),
                                             os.cpu_count() or 1)
                _run_parallel(pending, workers,
                              timeout if timeout is not None
                              else DEFAULT_TASK_TIMEOUT,
                              retries, backoff, record, profile,
                              store_path, collect)
        finally:
            sink.close()
            if store_path is not None:
                _WORKER_STORES.pop(store_path, None)
    return [results[t] for t in tasks]
