"""Load generation, trace record/replay and SLO-gated load testing.

The subsystem that drives the durable admission service
(:mod:`repro.service`) the way a production front door would:

* :mod:`repro.loadgen.models` — seeded arrival processes (Poisson,
  bursty on-off MMPP, diurnal ramp, flash crowd, admit/release churn)
  over configurable request templates; deterministic schedules.
* :mod:`repro.loadgen.driver` — open-loop (offered load, virtual
  clock, coordinated-omission-corrected queue lag) and closed-loop
  (K logical clients) drivers, with chaos kill/recover hooks over
  :mod:`repro.service.recovery`.
* :mod:`repro.loadgen.trace` — canonical byte-stable JSONL traces and
  deterministic :func:`~repro.loadgen.trace.replay`.
* :mod:`repro.loadgen.measure` / :mod:`repro.loadgen.slo` — one
  machine-readable report per run and the pass/fail SLO gate.

CLI surface: ``repro loadtest`` (see ``docs/LOADTEST.md``).
"""

from repro.loadgen.driver import (
    ChaosPlan,
    DriveResult,
    RequestRecord,
    run_closed_loop,
    run_open_loop,
)
from repro.loadgen.measure import LoadReport, summarize
from repro.loadgen.models import (
    WORKLOADS,
    BurstyWorkload,
    DiurnalWorkload,
    Event,
    FlashCrowdWorkload,
    PoissonWorkload,
    RequestTemplate,
    Workload,
    make_workload,
)
from repro.loadgen.slo import SLO, SLOResult, SLOViolation, parse_slo
from repro.loadgen.trace import (
    ReplayMismatch,
    ReplayReport,
    TraceWriter,
    load_trace,
    replay,
)

__all__ = [
    "Event",
    "RequestTemplate",
    "Workload",
    "PoissonWorkload",
    "BurstyWorkload",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "WORKLOADS",
    "make_workload",
    "ChaosPlan",
    "DriveResult",
    "RequestRecord",
    "run_open_loop",
    "run_closed_loop",
    "TraceWriter",
    "load_trace",
    "replay",
    "ReplayMismatch",
    "ReplayReport",
    "LoadReport",
    "summarize",
    "SLO",
    "SLOViolation",
    "SLOResult",
    "parse_slo",
]
