"""Seeded workload models: arrival processes over admission requests.

A :class:`Workload` turns ``(seed, offered rate, request template)``
into a deterministic **schedule** — a time-ordered list of
:class:`Event`\\ s (``admit`` carrying a full
:class:`~repro.admission.requests.ConnectionRequest`, ``release``
naming an earlier connection).  The schedule is a pure function of the
model parameters: building it twice yields the identical object list,
which is what makes recorded traces byte-stable and regressions
diffable (see :mod:`repro.loadgen.trace`).

Five models cover the shapes the delay-analysis literature shows
end-to-end bounds are sensitive to (burstiness, ramps, flash crowds,
churn):

* :class:`PoissonWorkload` — memoryless arrivals at a fixed rate; the
  baseline every other model is compared against.
* :class:`BurstyWorkload` — a two-state on-off modulated Poisson
  process (MMPP): exponentially-dwelling ON periods firing at
  ``rate / duty`` and silent OFF periods, same long-run average rate
  but maximally clumped.
* :class:`DiurnalWorkload` — a sinusoidal trough-to-peak-to-trough
  ramp over the run (one "day"), via Lewis-Shedler thinning.
* :class:`FlashCrowdWorkload` — baseline Poisson plus a
  ``spike_factor``× rectangular spike window mid-run.
* Churn is orthogonal: any model given ``hold_s`` draws an
  exponential lifetime per admission and schedules the matching
  ``release``, so the network reaches a steady admitted population of
  roughly ``rate x hold_s`` instead of growing without bound.

All randomness flows through one :class:`random.Random` seeded per
:meth:`Workload.schedule` call — no global state, no numpy, no time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterator

from repro.admission.requests import ConnectionRequest
from repro.curves.token_bucket import TokenBucket
from repro.errors import LoadGenError
from repro.utils.validation import check_positive

__all__ = [
    "Event",
    "RequestTemplate",
    "Workload",
    "PoissonWorkload",
    "BurstyWorkload",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "WORKLOADS",
    "make_workload",
]


@dataclass(frozen=True)
class Event:
    """One scheduled operation against the admission service.

    Attributes
    ----------
    t:
        Virtual arrival time in seconds from run start.  The open-loop
        driver paces or lag-accounts against it; it is recorded in the
        canonical trace.
    op:
        ``"admit"`` or ``"release"``.
    name:
        The connection name (always set; admits carry it redundantly
        with ``request.name`` so release events need no lookup).
    request:
        The full admission request (``admit`` events only).
    """

    t: float
    op: str
    name: str
    request: ConnectionRequest | None = field(default=None, repr=False)


@dataclass(frozen=True)
class RequestTemplate:
    """How one admission request is minted from the seeded RNG.

    Defaults mirror ``repro serve``'s stream (unit-capacity tandem,
    token-bucket sources); ``paths="random"`` switches from the full
    path to a random contiguous sub-path per request, and
    ``rho_jitter``/``sigma_jitter`` spread the per-connection rate and
    burst uniformly by ±jitter fraction around the nominal value.
    With ``tandems > 1`` requests round-robin across that many
    disjoint tandems of ``n_servers`` servers (server ids
    ``t*n_servers + 1 .. t*n_servers + n_servers``) — independent
    components, which is what gives a parallel batch (``--workers``)
    concurrency to exploit.
    """

    n_servers: int = 4
    deadline: float = 30.0
    sigma: float = 1.0
    rho: float = 0.02
    peak: float = 1.0
    paths: str = "full"          # "full" | "random"
    rho_jitter: float = 0.0
    sigma_jitter: float = 0.0
    tandems: int = 1

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise LoadGenError(
                f"n_servers must be >= 1, got {self.n_servers}")
        if self.tandems < 1:
            raise LoadGenError(
                f"tandems must be >= 1, got {self.tandems}")
        if self.paths not in ("full", "random"):
            raise LoadGenError(
                f"paths must be 'full' or 'random', got {self.paths!r}")
        for name, jitter in (("rho_jitter", self.rho_jitter),
                             ("sigma_jitter", self.sigma_jitter)):
            if not 0.0 <= jitter < 1.0:
                raise LoadGenError(
                    f"{name} must be in [0, 1), got {jitter}")

    def mint(self, rng: Random, index: int) -> ConnectionRequest:
        """Build request number *index* using *rng* for any jitter."""
        base = (index % self.tandems) * self.n_servers
        if self.paths == "random":
            a = rng.randint(1, self.n_servers)
            b = rng.randint(a, self.n_servers)
            path = tuple(range(base + a, base + b + 1))
        else:
            path = tuple(range(base + 1, base + self.n_servers + 1))
        rho = self.rho
        if self.rho_jitter:
            rho *= 1.0 + self.rho_jitter * rng.uniform(-1.0, 1.0)
        sigma = self.sigma
        if self.sigma_jitter:
            sigma *= 1.0 + self.sigma_jitter * rng.uniform(-1.0, 1.0)
        return ConnectionRequest(
            f"c{index:06d}", TokenBucket(sigma, rho, peak=self.peak),
            path, self.deadline)

    def as_dict(self) -> dict:
        return {
            "n_servers": self.n_servers, "deadline": self.deadline,
            "sigma": self.sigma, "rho": self.rho, "peak": self.peak,
            "paths": self.paths, "rho_jitter": self.rho_jitter,
            "sigma_jitter": self.sigma_jitter, "tandems": self.tandems,
        }


class Workload:
    """Base class: a seeded arrival process over admission requests.

    Subclasses implement :meth:`_arrival_times`; churn (``hold_s``) and
    request minting are shared.  ``rate`` is the long-run average
    offered load in requests/second for every model.
    """

    kind = "abstract"

    def __init__(self, seed: int, rate: float, *,
                 template: RequestTemplate | None = None,
                 hold_s: float | None = None) -> None:
        check_positive("rate", rate)
        if hold_s is not None:
            check_positive("hold_s", hold_s)
        self.seed = int(seed)
        self.rate = float(rate)
        self.template = template if template is not None else RequestTemplate()
        self.hold_s = hold_s

    # -- model-specific ------------------------------------------------

    def _arrival_times(self, rng: Random,
                       duration: float) -> Iterator[float]:
        raise NotImplementedError

    def _params(self) -> dict:
        """Model-specific parameters for the trace header."""
        return {}

    # -- shared machinery ----------------------------------------------

    def schedule(self, duration: float) -> list[Event]:
        """The deterministic event schedule for a *duration*-second run.

        Admits in arrival order; each admit optionally spawns an
        exponential-lifetime release (dropped when it would land past
        the horizon).  Events are sorted by time with arrival order as
        the tiebreak, so equal timestamps cannot reorder between runs.
        """
        check_positive("duration", duration)
        rng = Random(self.seed)
        events: list[tuple[float, int, Event]] = []
        order = 0
        for i, t in enumerate(self._arrival_times(rng, duration)):
            request = self.template.mint(rng, i)
            events.append((t, order, Event(t, "admit", request.name,
                                           request)))
            order += 1
            if self.hold_s is not None:
                rel_t = t + rng.expovariate(1.0 / self.hold_s)
                if rel_t < duration:
                    events.append((rel_t, order,
                                   Event(rel_t, "release", request.name)))
                    order += 1
        events.sort(key=lambda e: (e[0], e[1]))
        return [e for _, _, e in events]

    def requests(self, n: int) -> list[ConnectionRequest]:
        """*n* minted requests, ignoring arrival times (closed loop)."""
        if n < 0:
            raise LoadGenError(f"n must be >= 0, got {n}")
        rng = Random(self.seed)
        return [self.template.mint(rng, i) for i in range(n)]

    def describe(self) -> dict:
        """JSON-ready description (lands in the trace header)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "rate": self.rate,
            "hold_s": self.hold_s,
            "template": self.template.as_dict(),
            **self._params(),
        }


def _homogeneous(rng: Random, duration: float,
                 rate: float) -> Iterator[float]:
    """Poisson arrivals at a fixed rate on ``[0, duration)``."""
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return
        yield t


def _thinned(rng: Random, duration: float, peak_rate: float,
             rate_at: Callable[[float], float]) -> Iterator[float]:
    """Lewis-Shedler thinning: non-homogeneous Poisson arrivals.

    Candidate arrivals at *peak_rate* are accepted with probability
    ``rate_at(t) / peak_rate`` — exact for any ``rate_at <= peak_rate``
    and deterministic under the seeded *rng*.
    """
    t = 0.0
    while True:
        t += rng.expovariate(peak_rate)
        if t >= duration:
            return
        if rng.random() * peak_rate <= rate_at(t):
            yield t


class PoissonWorkload(Workload):
    """Memoryless arrivals at a constant *rate* (the M in M/./.)."""

    kind = "poisson"

    def _arrival_times(self, rng: Random,
                       duration: float) -> Iterator[float]:
        return _homogeneous(rng, duration, self.rate)


class BurstyWorkload(Workload):
    """Two-state on-off MMPP: all traffic arrives in clumped ON bursts.

    ON and OFF dwell times are exponential with means ``mean_on_s`` /
    ``mean_off_s``; during ON the instantaneous rate is
    ``rate / duty`` (duty = on / (on + off)) so the long-run average
    matches *rate* while the short-run burstiness is ``1/duty``×.
    """

    kind = "bursty"

    def __init__(self, seed: int, rate: float, *,
                 mean_on_s: float = 1.0, mean_off_s: float = 3.0,
                 **kwargs) -> None:
        super().__init__(seed, rate, **kwargs)
        check_positive("mean_on_s", mean_on_s)
        check_positive("mean_off_s", mean_off_s)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)

    @property
    def duty(self) -> float:
        return self.mean_on_s / (self.mean_on_s + self.mean_off_s)

    def _params(self) -> dict:
        return {"mean_on_s": self.mean_on_s,
                "mean_off_s": self.mean_off_s}

    def _arrival_times(self, rng: Random,
                       duration: float) -> Iterator[float]:
        burst_rate = self.rate / self.duty
        t = 0.0
        on = True  # runs open ON so short durations still offer load
        while t < duration:
            dwell = rng.expovariate(
                1.0 / (self.mean_on_s if on else self.mean_off_s))
            end = min(t + dwell, duration)
            if on:
                a = t
                while True:
                    a += rng.expovariate(burst_rate)
                    if a >= end:
                        break
                    yield a
            t = end
            on = not on


class DiurnalWorkload(Workload):
    """One sinusoidal trough→peak→trough cycle across the run.

    ``rate(t) = rate * (1 + amplitude * sin(2*pi*t/period - pi/2))``;
    *period* defaults to the run duration, so a 60 s run is one "day"
    starting and ending at the trough with the peak mid-run.
    """

    kind = "diurnal"

    def __init__(self, seed: int, rate: float, *,
                 amplitude: float = 0.8, period_s: float | None = None,
                 **kwargs) -> None:
        super().__init__(seed, rate, **kwargs)
        if not 0.0 <= amplitude <= 1.0:
            raise LoadGenError(
                f"amplitude must be in [0, 1], got {amplitude}")
        if period_s is not None:
            check_positive("period_s", period_s)
        self.amplitude = float(amplitude)
        self.period_s = period_s

    def _params(self) -> dict:
        return {"amplitude": self.amplitude, "period_s": self.period_s}

    def _arrival_times(self, rng: Random,
                       duration: float) -> Iterator[float]:
        period = self.period_s if self.period_s is not None else duration
        two_pi = 2.0 * math.pi

        def rate_at(t: float) -> float:
            return self.rate * (1.0 + self.amplitude
                                * math.sin(two_pi * t / period
                                           - math.pi / 2.0))

        peak = self.rate * (1.0 + self.amplitude)
        return _thinned(rng, duration, peak, rate_at)


class FlashCrowdWorkload(Workload):
    """Baseline Poisson plus a rectangular ``spike_factor``× crowd.

    The spike window defaults to the middle tenth of the run
    (``spike_at = 0.45 * duration``, ``spike_s = 0.1 * duration``);
    either can be pinned in seconds.  This is the workload that
    exercises shedding and degradation honestly: the average load may
    be easy while the spike instant is not.
    """

    kind = "flash-crowd"

    def __init__(self, seed: int, rate: float, *,
                 spike_factor: float = 10.0,
                 spike_at: float | None = None,
                 spike_s: float | None = None,
                 **kwargs) -> None:
        super().__init__(seed, rate, **kwargs)
        if spike_factor < 1.0:
            raise LoadGenError(
                f"spike_factor must be >= 1, got {spike_factor}")
        self.spike_factor = float(spike_factor)
        self.spike_at = spike_at
        self.spike_s = spike_s

    def _params(self) -> dict:
        return {"spike_factor": self.spike_factor,
                "spike_at": self.spike_at, "spike_s": self.spike_s}

    def _arrival_times(self, rng: Random,
                       duration: float) -> Iterator[float]:
        start = (self.spike_at if self.spike_at is not None
                 else 0.45 * duration)
        width = (self.spike_s if self.spike_s is not None
                 else 0.1 * duration)
        end = start + width

        def rate_at(t: float) -> float:
            return (self.rate * self.spike_factor
                    if start <= t < end else self.rate)

        return _thinned(rng, duration, self.rate * self.spike_factor,
                        rate_at)


#: CLI-facing registry.  ``churn`` is Poisson with a default holding
#: time — the admit/release steady-state workload.
WORKLOADS: dict[str, type[Workload]] = {
    "poisson": PoissonWorkload,
    "bursty": BurstyWorkload,
    "diurnal": DiurnalWorkload,
    "flash-crowd": FlashCrowdWorkload,
    "churn": PoissonWorkload,
}


def make_workload(name: str, seed: int, rate: float, *,
                  template: RequestTemplate | None = None,
                  hold_s: float | None = None,
                  **params) -> Workload:
    """Build a registered workload by CLI name.

    ``churn`` defaults ``hold_s`` to ``10 / rate`` (a steady admitted
    population of ~10 connections) when not given explicitly.
    """
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise LoadGenError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS)}") from None
    if name == "churn" and hold_s is None:
        hold_s = 10.0 / rate
    workload = cls(seed, rate, template=template, hold_s=hold_s, **params)
    if name == "churn":
        workload.kind = "churn"
    return workload
