"""SLO gating: a load run becomes pass/fail with typed violations.

An :class:`SLO` is a set of bounds over a
:class:`~repro.loadgen.measure.LoadReport`; :meth:`SLO.evaluate`
returns every bound that failed as a structured
:class:`SLOViolation` (metric, limit, measured value) so CI logs and
``BENCH_loadtest.json`` carry machine-readable causes, not prose.

The CLI accepts the compact spec grammar::

    --slo "p99<0.5,p95<0.1,reject<0.2,degraded<0.5,throughput>50,lost<1"

comma-separated ``metric<limit`` (or ``>`` for lower bounds), parsed
by :func:`parse_slo`:

========== ============================================== =========
key        meaning                                        direction
========== ============================================== =========
p50/p95/   latency quantile in seconds                    ``<``
p99/max
lag        worst queue lag in seconds (open loop)         ``<``
reject     rejected / decisions fraction                  ``<``
degraded   decisions not answered at the normal rung      ``<``
shed       final shed level (0, 1, 2)                     ``<``
throughput decisions per wall second                      ``>``
lost       committed admissions lost across chaos kills   ``<``
========== ============================================== =========

Chaos runs should always carry ``lost<1`` — zero lost acknowledged
admissions is the durability invariant the subsystem exists to check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LoadGenError
from repro.loadgen.measure import LoadReport

__all__ = ["SLO", "SLOViolation", "SLOResult", "parse_slo"]


@dataclass(frozen=True)
class SLOViolation:
    """One failed bound: ``metric`` measured ``actual`` vs ``limit``."""

    metric: str
    limit: float
    actual: float
    direction: str  # "<" (upper bound) or ">" (lower bound)

    def render(self) -> str:
        return (f"{self.metric} = {self.actual:.6g} violates "
                f"{self.metric} {self.direction} {self.limit:.6g}")

    def as_dict(self) -> dict:
        return {"metric": self.metric, "limit": self.limit,
                "actual": self.actual, "direction": self.direction}


@dataclass(frozen=True)
class SLOResult:
    """Outcome of gating one report."""

    violations: tuple[SLOViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        if self.ok:
            return "SLO: pass"
        lines = [f"SLO: FAIL ({len(self.violations)} violation(s))"]
        lines += [f"  {v.render()}" for v in self.violations]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {"ok": self.ok,
                "violations": [v.as_dict() for v in self.violations]}


@dataclass(frozen=True)
class SLO:
    """Bounds over a load report; ``None`` disables a bound."""

    max_p50_s: float | None = None
    max_p95_s: float | None = None
    max_p99_s: float | None = None
    max_latency_s: float | None = None
    max_lag_s: float | None = None
    max_reject_fraction: float | None = None
    max_degraded_fraction: float | None = None
    max_shed_level: int | None = None
    min_throughput: float | None = None
    max_lost: int | None = None

    def evaluate(self, report: LoadReport) -> SLOResult:
        """Every violated bound, in declaration order."""
        violations: list[SLOViolation] = []

        def upper(metric: str, limit: float | None,
                  actual: float) -> None:
            if limit is not None and not actual < limit:
                violations.append(
                    SLOViolation(metric, float(limit), actual, "<"))

        def lower(metric: str, limit: float | None,
                  actual: float) -> None:
            if limit is not None and not actual > limit:
                violations.append(
                    SLOViolation(metric, float(limit), actual, ">"))

        upper("p50", self.max_p50_s, report.latency["p50"])
        upper("p95", self.max_p95_s, report.latency["p95"])
        upper("p99", self.max_p99_s, report.latency["p99"])
        upper("max", self.max_latency_s, report.latency["max"])
        upper("lag", self.max_lag_s, report.lag["max"])
        upper("reject", self.max_reject_fraction,
              report.reject_fraction)
        upper("degraded", self.max_degraded_fraction,
              report.degraded_fraction)
        if self.max_shed_level is not None:
            upper("shed", float(self.max_shed_level),
                  float(report.shed_level))
        lower("throughput", self.min_throughput, report.throughput)
        upper("lost", self.max_lost, float(len(report.chaos_lost)))
        return SLOResult(tuple(violations))

    def as_dict(self) -> dict:
        return {k: v for k, v in vars(self).items() if v is not None}


#: spec key -> (SLO field, required comparator)
_SPEC_KEYS = {
    "p50": ("max_p50_s", "<"),
    "p95": ("max_p95_s", "<"),
    "p99": ("max_p99_s", "<"),
    "max": ("max_latency_s", "<"),
    "lag": ("max_lag_s", "<"),
    "reject": ("max_reject_fraction", "<"),
    "degraded": ("max_degraded_fraction", "<"),
    "shed": ("max_shed_level", "<"),
    "throughput": ("min_throughput", ">"),
    "lost": ("max_lost", "<"),
}


def parse_slo(spec: str) -> SLO:
    """Parse the compact CLI grammar into an :class:`SLO`.

    Raises :class:`~repro.errors.LoadGenError` on unknown keys, wrong
    comparator direction or unparseable limits.
    """
    fields: dict[str, float] = {}
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        for op in ("<", ">"):
            if op in clause:
                key, _, value = clause.partition(op)
                break
        else:
            raise LoadGenError(
                f"SLO clause {clause!r} needs '<' or '>' "
                "(e.g. 'p99<0.5')")
        key = key.strip()
        if key not in _SPEC_KEYS:
            raise LoadGenError(
                f"unknown SLO metric {key!r}; choose from "
                f"{sorted(_SPEC_KEYS)}")
        field_name, required_op = _SPEC_KEYS[key]
        if op != required_op:
            raise LoadGenError(
                f"SLO metric {key!r} takes {required_op!r}, not {op!r}")
        try:
            limit = float(value.strip())
        except ValueError:
            raise LoadGenError(
                f"SLO clause {clause!r}: {value.strip()!r} is not a "
                "number") from None
        if field_name in fields:
            raise LoadGenError(f"duplicate SLO metric {key!r}")
        fields[field_name] = limit
    if "max_shed_level" in fields:
        fields["max_shed_level"] = int(fields["max_shed_level"])
    if "max_lost" in fields:
        fields["max_lost"] = int(fields["max_lost"])
    return SLO(**fields)
