"""Measurement: turn a drive into one machine-readable report.

:func:`summarize` folds a :class:`~repro.loadgen.driver.DriveResult`
and the service's :class:`~repro.context.MetricsRegistry` into a
:class:`LoadReport` — outcome counts, exact-or-reservoir latency and
queue-lag quantiles, throughput, per-degradation-rung counts, breaker
trips, shed level and chaos accounting.  ``as_dict()`` is the
``BENCH_loadtest.json`` payload; ``render()`` is the human summary the
CLI prints.  The SLO gate (:mod:`repro.loadgen.slo`) consumes the same
report, so what CI gates on is exactly what operators read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.context import MetricsRegistry
from repro.loadgen.driver import DriveResult

__all__ = ["LoadReport", "summarize"]


@dataclass(frozen=True)
class LoadReport:
    """The complete outcome of one load run."""

    workload: dict
    events: int
    counts: dict[str, int]            # admitted/rejected/released/skipped
    degradation: dict[str, int]       # decisions per degradation tag
    latency: dict[str, float]         # count/mean/p50/p95/p99/max (s)
    lag: dict[str, float]             # queue-lag quantiles (s)
    latency_exact: bool               # quantiles exact (reservoir not full)
    wall_s: float
    duration_s: float                 # virtual horizon (0 = closed loop)
    offered_rate: float               # req/s configured (0 = closed loop)
    clients: int                      # closed-loop clients (0 = open loop)
    throughput: float                 # decisions per wall second
    shed_level: int                   # final shed level gauge
    breaker_opens: dict[str, int]     # per-analyzer breaker.<n>.opens
    chaos_kills: int
    chaos_lost: tuple[str, ...]
    metrics: dict[str, float] = field(repr=False, default_factory=dict)

    @property
    def admitted(self) -> int:
        return self.counts.get("admitted", 0)

    @property
    def rejected(self) -> int:
        return self.counts.get("rejected", 0)

    @property
    def decisions(self) -> int:
        return self.admitted + self.rejected

    @property
    def reject_fraction(self) -> float:
        return self.rejected / self.decisions if self.decisions else 0.0

    @property
    def degraded_fraction(self) -> float:
        """Fraction of decisions not answered at the normal rung."""
        if not self.decisions:
            return 0.0
        normal = self.degradation.get("normal", 0)
        return max(0.0, 1.0 - normal / self.decisions)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "events": self.events,
            "counts": dict(self.counts),
            "degradation": dict(self.degradation),
            "latency": dict(self.latency),
            "lag": dict(self.lag),
            "latency_exact": self.latency_exact,
            "wall_s": self.wall_s,
            "duration_s": self.duration_s,
            "offered_rate": self.offered_rate,
            "clients": self.clients,
            "throughput": self.throughput,
            "reject_fraction": self.reject_fraction,
            "degraded_fraction": self.degraded_fraction,
            "shed_level": self.shed_level,
            "breaker_opens": dict(self.breaker_opens),
            "chaos_kills": self.chaos_kills,
            "chaos_lost": list(self.chaos_lost),
            "metrics": dict(self.metrics),
        }

    def render(self) -> str:
        lat = self.latency
        lines = [
            f"workload {self.workload.get('kind', '?')} "
            f"(seed {self.workload.get('seed', '?')}): "
            f"{self.events} event(s) in {self.wall_s:.3f}s wall "
            f"— {self.throughput:.1f} decisions/s",
            f"  admitted {self.admitted}, rejected {self.rejected} "
            f"({self.reject_fraction:.1%}), released "
            f"{self.counts.get('released', 0)}, skipped "
            f"{self.counts.get('skipped', 0)}",
            f"  latency p50 {lat['p50'] * 1e3:.2f}ms  "
            f"p95 {lat['p95'] * 1e3:.2f}ms  "
            f"p99 {lat['p99'] * 1e3:.2f}ms  "
            f"max {lat['max'] * 1e3:.2f}ms"
            + ("" if self.latency_exact else "  (sampled)"),
        ]
        if self.lag.get("max", 0.0) > 0.0:
            lines.append(f"  queue lag p99 {self.lag['p99'] * 1e3:.2f}ms "
                         f"max {self.lag['max'] * 1e3:.2f}ms")
        tags = ", ".join(f"{k}={v}" for k, v in
                         sorted(self.degradation.items()))
        lines.append(f"  degradation: {tags or 'none'}"
                     f"  shed_level={self.shed_level}")
        if self.breaker_opens:
            opens = ", ".join(f"{k}={v}" for k, v in
                              sorted(self.breaker_opens.items()))
            lines.append(f"  breaker opens: {opens}")
        if self.chaos_kills:
            lines.append(
                f"  chaos: {self.chaos_kills} kill(s), "
                f"{len(self.chaos_lost)} lost committed admission(s)"
                + (f" {list(self.chaos_lost)}" if self.chaos_lost else ""))
        return "\n".join(lines)


def summarize(result: DriveResult, *,
              metrics: MetricsRegistry | None = None,
              workload: dict | None = None) -> LoadReport:
    """Fold a drive plus the service's metrics into a report.

    *metrics* defaults to nothing; pass the registry the service ran
    with to pull ``service.degradation.*``, ``breaker.*.opens`` and
    the shed-level gauge into the report.
    """
    counts: dict[str, int] = {}
    for rec in result.records:
        counts[rec.outcome] = counts.get(rec.outcome, 0) + 1

    degradation: dict[str, int] = {}
    breaker_opens: dict[str, int] = {}
    shed_level = 0
    snapshot: dict[str, float] = {}
    if metrics is not None:
        snapshot = metrics.as_dict()
        prefix = "service.degradation."
        for name, value in snapshot.items():
            if name.startswith(prefix):
                degradation[name[len(prefix):]] = int(value)
            elif name.startswith("breaker.") and name.endswith(".opens"):
                breaker_opens[name[len("breaker."):-len(".opens")]] = \
                    int(value)
        shed_level = int(snapshot.get("service.shed_level", 0))
    else:
        # fall back to the per-record tags (admits only)
        for rec in result.records:
            if rec.op == "admit" and rec.degradation:
                degradation[rec.degradation] = \
                    degradation.get(rec.degradation, 0) + 1

    decisions = counts.get("admitted", 0) + counts.get("rejected", 0)
    throughput = decisions / result.wall_s if result.wall_s > 0 else 0.0
    return LoadReport(
        workload=workload or {},
        events=len(result.records),
        counts=counts,
        degradation=degradation,
        latency=result.latency.summary(),
        lag=result.lag.summary(),
        latency_exact=result.latency.exact,
        wall_s=result.wall_s,
        duration_s=result.duration_s,
        offered_rate=result.offered_rate,
        clients=result.clients,
        throughput=throughput,
        shed_level=shed_level,
        breaker_opens=breaker_opens,
        chaos_kills=result.chaos_kills,
        chaos_lost=result.chaos_lost,
        metrics=snapshot,
    )
