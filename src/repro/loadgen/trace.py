"""Canonical trace record/replay: a regression is a byte-diff.

Every load run can record a **canonical** JSONL trace: one header
record (workload description, seed, driver configuration) followed by
one record per executed event carrying everything deterministic about
it — virtual time, operation, the full minted request, the decision
outcome, the answering analyzer, the degradation tag and the bound as
an exact ``float.hex`` string.  Canonical means *byte-stable*: the same
seed and workload produce the identical file, so CI can assert
regressions with ``cmp`` instead of statistics.

Wall-clock measurements (latency, queue lag) are **not** canonical —
they differ run to run by scheduler noise — so they are excluded by
default and live in the run report / ``BENCH_loadtest.json`` instead.
Passing ``include_latency=True`` (CLI ``--record-latency``) adds them
to each record for offline analysis, at the cost of byte-stability.

:func:`replay` re-executes a recorded trace against a fresh service:
the recorded *requests* (not the workload code) are replayed in order,
and every decision is compared against the recorded outcome,
degradation tag and bit-exact bound.  A trace therefore stays
replayable even after the workload models change.

Writes go through :class:`~repro.utils.durable.DurableAppender`
(fsync'd appends) with small-batch buffering so a crashed run leaves a
readable prefix, not a torn file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import JournalError, LoadGenError
from repro.utils.durable import DurableAppender, iter_jsonl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.loadgen.driver import RequestRecord
    from repro.service.service import AdmissionService

__all__ = [
    "TRACE_VERSION",
    "TraceWriter",
    "load_trace",
    "replay",
    "ReplayMismatch",
    "ReplayReport",
]

TRACE_VERSION = 1

#: Records per durable append; small enough that a crash loses at most
#: one batch, large enough that per-line fsync does not dominate a run.
FLUSH_EVERY = 64


class TraceWriter:
    """Streaming canonical trace writer over a durable appender."""

    def __init__(self, path: str | Path, *,
                 include_latency: bool = False,
                 flush_every: int = FLUSH_EVERY) -> None:
        if flush_every < 1:
            raise LoadGenError(
                f"flush_every must be >= 1, got {flush_every}")
        # A recording always starts fresh: appending a second run to an
        # existing trace would break both the one-header invariant and
        # the byte-identity guarantee that makes regressions byte-diffs.
        path = Path(path)
        if path.exists():
            path.unlink()
        self._appender = DurableAppender(path)
        self._include_latency = include_latency
        self._flush_every = int(flush_every)
        self._pending: list[str] = []
        self._events = 0

    @property
    def path(self) -> Path:
        return self._appender.path

    @property
    def events(self) -> int:
        return self._events

    def _emit(self, record: dict) -> None:
        self._pending.append(
            json.dumps(record, sort_keys=True, separators=(",", ":")))
        if len(self._pending) >= self._flush_every:
            self.flush()

    def write_header(self, *, workload: dict, driver: dict) -> None:
        """The one-per-file header; must precede every event."""
        self._emit({
            "kind": "header",
            "v": TRACE_VERSION,
            "workload": workload,
            "driver": driver,
            "canonical": not self._include_latency,
        })

    def write_event(self, record: "RequestRecord") -> None:
        """Append one executed event (see :class:`RequestRecord`)."""
        rec = record.canonical_dict()
        if self._include_latency:
            rec["latency_s"] = record.latency_s
            rec["lag_s"] = record.lag_s
        self._emit(rec)
        self._events += 1

    def flush(self) -> None:
        if self._pending:
            self._appender.append("\n".join(self._pending))
            self._pending.clear()

    def close(self) -> None:
        self.flush()
        self._appender.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_trace(path: str | Path) -> tuple[dict, list[dict]]:
    """Read ``(header, events)`` from a recorded trace.

    Unparseable lines raise — a trace is an artifact, not a journal;
    the only tolerated truncation is a torn *final* line (the batch in
    flight when a recording run died), which is dropped like the WAL
    contract drops it.
    """
    path = Path(path)
    if not path.exists():
        raise LoadGenError(f"no trace at {path}")
    header: dict | None = None
    events: list[dict] = []
    rows = list(iter_jsonl(path))
    for i, (rec, ok) in enumerate(rows):
        if not ok:
            if i == len(rows) - 1:
                continue  # torn tail from a crashed recording
            raise LoadGenError(f"corrupt trace line {i + 1} in {path}")
        kind = rec.get("kind")
        if kind == "header":
            if header is not None:
                raise LoadGenError(f"duplicate trace header in {path}")
            header = rec
        elif kind == "event":
            events.append(rec)
        else:
            raise LoadGenError(
                f"unknown trace record kind {kind!r} in {path}")
    if header is None:
        raise LoadGenError(f"trace {path} has no header record")
    return header, events


@dataclass(frozen=True)
class ReplayMismatch:
    """One divergence between a recorded event and its re-execution."""

    index: int
    name: str
    field: str      # "outcome" | "degradation" | "bound_hex" | ...
    recorded: str
    replayed: str

    def render(self) -> str:
        return (f"event {self.index} ({self.name}): {self.field} "
                f"recorded {self.recorded!r} != replayed "
                f"{self.replayed!r}")


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of re-executing a recorded trace."""

    events: int
    mismatches: tuple[ReplayMismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = [f"replayed {self.events} event(s): "
                 + ("deterministic" if self.ok
                    else f"{len(self.mismatches)} MISMATCH(ES)")]
        lines += [f"  MISMATCH {m.render()}" for m in self.mismatches]
        return "\n".join(lines)


def replay(trace: str | Path | tuple[dict, list[dict]],
           service: "AdmissionService", *,
           on_event: Callable[[int, dict], None] | None = None,
           ) -> ReplayReport:
    """Re-execute a recorded trace against *service* and diff decisions.

    The recorded requests are replayed in recorded order.  For admits,
    the fresh decision's ``outcome``, ``degradation``, ``analyzer`` and
    bit-exact ``bound_hex`` must match the recording; for releases the
    applied/skipped outcome must match.  *service* must be built to the
    trace header's driver configuration (``repro loadtest --replay``
    does this from the header automatically).
    """
    from repro.service.journal import request_from_record

    if isinstance(trace, (str, Path)):
        header, events = load_trace(trace)
    else:
        header, events = trace
    mismatches: list[ReplayMismatch] = []

    def check(i: int, name: str, field: str, recorded, replayed) -> None:
        if recorded != replayed:
            mismatches.append(ReplayMismatch(
                i, name, field, str(recorded), str(replayed)))

    for i, rec in enumerate(events):
        op = rec.get("op")
        name = str(rec.get("name", ""))
        if op == "admit":
            try:
                request = request_from_record(rec["request"])
            except (KeyError, TypeError, JournalError) as exc:
                raise LoadGenError(
                    f"trace event {i} has no replayable request: "
                    f"{exc}") from exc
            decision = service.admit(request)
            outcome = "admitted" if decision.admitted else "rejected"
            check(i, name, "outcome", rec.get("outcome"), outcome)
            check(i, name, "degradation", rec.get("degradation"),
                  decision.degradation)
            check(i, name, "analyzer", rec.get("analyzer"),
                  decision.analyzer)
            check(i, name, "bound_hex", rec.get("bound_hex"),
                  float(decision.bound).hex())
        elif op == "release":
            seq = service.release(name, missing_ok=True)
            outcome = "released" if seq is not None else "skipped"
            check(i, name, "outcome", rec.get("outcome"), outcome)
        else:
            raise LoadGenError(f"trace event {i} has unknown op {op!r}")
        if on_event is not None:
            on_event(i, rec)
    return ReplayReport(events=len(events), mismatches=tuple(mismatches))
