"""Load drivers: execute a workload schedule against the service.

Two driving disciplines, the standard pair from load-testing practice:

**Open loop** (:func:`run_open_loop`) — the workload's virtual arrival
times define *offered* load that does not care how fast the service
answers.  A virtual clock maps schedule time onto the wall; when the
service falls behind, each request's **queue lag** (time between its
intended arrival and its actual dispatch) is accounted into its
latency, so slow services look slow instead of quietly lowering the
offered rate — the coordinated-omission trap.  With ``pace=True`` the
driver sleeps until each intended instant (a real-time run); without
it the run executes as fast as possible while keeping the same lag
arithmetic relative to a rate-scaled clock.

**Closed loop** (:func:`run_closed_loop`) — ``clients`` logical
clients each keep exactly one request in flight, issuing the next the
moment the previous answers.  Throughput is then *measured*, not
offered: the classic saturation probe.  With ``workers > 1`` each
round of in-flight requests is admitted as one
:meth:`~repro.service.service.AdmissionService.admit_batch` call, so
the admission tests actually run concurrently on the process pool —
decisions stay bit-identical to the serial round-robin (see
``docs/PARALLEL.md``), only the wall clock changes.

**Chaos** (:class:`ChaosPlan`) — at configured operation indices the
driver simulates a SIGKILL: the live service object is *abandoned*
(never closed — exactly what a kill leaves behind, the fsync'd journal
being the only survivor) and a recovery callable rebuilds it via
:mod:`repro.service.recovery`.  Every acknowledged admission from
before the kill must still be admitted afterwards; anything lost is
reported (and fails the run).  Deterministic kill points keep chaos
runs replayable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.context import QuantileReservoir
from repro.errors import LoadGenError
from repro.loadgen.models import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.loadgen.trace import TraceWriter
    from repro.service.service import AdmissionService, ServiceDecision

__all__ = [
    "RequestRecord",
    "ChaosPlan",
    "DriveResult",
    "run_open_loop",
    "run_closed_loop",
]


@dataclass(frozen=True)
class RequestRecord:
    """One executed event: the deterministic core plus measurements.

    The deterministic fields (everything :meth:`canonical_dict`
    returns) are byte-stable across runs of the same seed; the
    measured fields (``latency_s``, ``lag_s``) are wall-clock and land
    in the run report, not the canonical trace.
    """

    index: int
    t: float                 # virtual (scheduled) time
    op: str                  # "admit" | "release"
    name: str
    outcome: str             # "admitted" | "rejected" | "released" | "skipped"
    analyzer: str = ""
    degradation: str = ""
    bound_hex: str = ""
    seq: int | None = None
    request_record: dict | None = field(default=None, repr=False)
    latency_s: float = 0.0   # service time + queue lag (CO-corrected)
    lag_s: float = 0.0       # dispatch behind intended arrival

    def canonical_dict(self) -> dict:
        rec: dict = {
            "kind": "event",
            "i": self.index,
            "t": self.t,
            "op": self.op,
            "name": self.name,
            "outcome": self.outcome,
        }
        if self.op == "admit":
            rec["request"] = self.request_record
            rec["analyzer"] = self.analyzer
            rec["degradation"] = self.degradation
            rec["bound_hex"] = self.bound_hex
        return rec


@dataclass
class ChaosPlan:
    """Kill-and-recover schedule for a drive.

    ``kill_at`` lists operation indices (0-based, counted over
    executed events); just *before* executing each listed index the
    driver abandons the service and recovers a fresh one through
    *recover*.  ``lost`` accumulates acknowledged admissions that did
    not survive — the invariant under test is that it stays empty.
    """

    kill_at: Sequence[int]
    recover: Callable[[], "AdmissionService"]
    kills: int = 0
    lost: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kill_at = sorted(set(int(k) for k in self.kill_at))
        if any(k < 0 for k in self.kill_at):
            raise LoadGenError("chaos kill indices must be >= 0")

    def due(self, op_index: int) -> bool:
        return op_index in self.kill_at

    def execute(self, service: "AdmissionService",
                committed: set[str]) -> "AdmissionService":
        """Abandon *service*, recover, and audit the committed set.

        The dead service is deliberately **not** closed: a SIGKILL
        never runs a final checkpoint, and the recovery path must not
        need one.  (Every acknowledged admission was journaled
        write-ahead, so the fsync'd journal alone carries the state.)
        """
        del service  # abandoned, exactly like a kill -9
        recovered = self.recover()
        self.kills += 1
        alive = set(recovered.admitted)
        self.lost.extend(sorted(committed - alive))
        return recovered


@dataclass
class DriveResult:
    """Everything a drive produced, ready for measurement."""

    records: list[RequestRecord]
    wall_s: float
    duration_s: float         # virtual horizon (open loop) or 0
    offered_rate: float       # configured average rate (open loop) or 0
    clients: int              # closed loop concurrency (open loop: 0)
    latency: QuantileReservoir
    lag: QuantileReservoir
    service: "AdmissionService"
    committed: set[str]       # acknowledged admits minus releases
    chaos: ChaosPlan | None = None

    @property
    def chaos_kills(self) -> int:
        return self.chaos.kills if self.chaos is not None else 0

    @property
    def chaos_lost(self) -> tuple[str, ...]:
        return tuple(self.chaos.lost) if self.chaos is not None else ()


def _admit_record(index: int, t: float, event: Event,
                  decision: "ServiceDecision",
                  latency_s: float, lag_s: float) -> RequestRecord:
    from repro.service.journal import request_to_record

    return RequestRecord(
        index=index, t=t, op="admit", name=event.name,
        outcome="admitted" if decision.admitted else "rejected",
        analyzer=decision.analyzer,
        degradation=decision.degradation,
        bound_hex=float(decision.bound).hex(),
        seq=decision.seq,
        request_record=request_to_record(event.request),
        latency_s=latency_s, lag_s=lag_s)


def _drive(service: "AdmissionService", events: Sequence[Event], *,
           pace: bool,
           use_schedule: bool,
           writer: "TraceWriter | None",
           chaos: ChaosPlan | None,
           clock: Callable[[], float],
           sleep: Callable[[float], None]):
    """The shared execution loop.

    With *use_schedule* (open loop) each event's intended wall instant
    is ``start + event.t``; *pace* additionally sleeps until it.  Queue
    lag is ``max(0, dispatch - intended)`` — zero while the service
    keeps up (paced or warping ahead unpaced), and the honest
    behind-schedule wait when it does not, which is folded into the
    request's latency so coordinated omission cannot hide a stall.
    Closed loops have no offered schedule, hence no lag.
    """
    records: list[RequestRecord] = []
    latency = QuantileReservoir()
    lag_res = QuantileReservoir()
    committed: set[str] = set()
    start = clock()
    for index, event in enumerate(events):
        if chaos is not None and chaos.due(index):
            service = chaos.execute(service, committed)
        now = clock()
        if use_schedule:
            intended = start + event.t
            if pace and now < intended:
                sleep(intended - now)
                now = clock()
            lag_s = max(0.0, now - intended)
        else:
            lag_s = 0.0
        t0 = clock()
        if event.op == "admit":
            decision = service.admit(event.request)
            service_s = clock() - t0
            record = _admit_record(index, event.t, event, decision,
                                   service_s + lag_s, lag_s)
            if decision.admitted:
                committed.add(event.name)
        elif event.op == "release":
            seq = service.release(event.name, missing_ok=True)
            service_s = clock() - t0
            record = RequestRecord(
                index=index, t=event.t, op="release", name=event.name,
                outcome="released" if seq is not None else "skipped",
                seq=seq, latency_s=service_s + lag_s, lag_s=lag_s)
            committed.discard(event.name)
        else:
            raise LoadGenError(f"unknown event op {event.op!r}")
        records.append(record)
        latency.observe(record.latency_s)
        lag_res.observe(record.lag_s)
        if writer is not None:
            writer.write_event(record)
    wall_s = clock() - start
    return records, wall_s, service, committed, latency, lag_res


def run_open_loop(service: "AdmissionService", events: Sequence[Event], *,
                  duration_s: float,
                  offered_rate: float,
                  pace: bool = False,
                  writer: "TraceWriter | None" = None,
                  chaos: ChaosPlan | None = None,
                  clock: Callable[[], float] = time.perf_counter,
                  sleep: Callable[[float], None] = time.sleep,
                  ) -> DriveResult:
    """Drive *events* (a :meth:`Workload.schedule`) open loop.

    With ``pace=True`` the wall clock tracks virtual time 1:1 and the
    run takes ~``duration_s`` real seconds; without it the schedule
    executes as fast as the service allows (lag then measures backlog
    only).  Latencies are coordinated-omission corrected either way:
    a request dispatched late carries its wait in its latency.
    """
    records, wall_s, service, committed, latency, lag = _drive(
        service, events, pace=pace, use_schedule=True,
        writer=writer, chaos=chaos, clock=clock, sleep=sleep)
    return DriveResult(
        records=records, wall_s=wall_s, duration_s=duration_s,
        offered_rate=offered_rate, clients=0, latency=latency, lag=lag,
        service=service, committed=committed, chaos=chaos)


def _drive_batched(service: "AdmissionService", events: Sequence[Event], *,
                   clients: int, workers: int,
                   writer: "TraceWriter | None",
                   chaos: ChaosPlan | None,
                   clock: Callable[[], float]):
    """Closed-loop rounds through ``admit_batch`` (see run_closed_loop).

    Each round takes the next up-to-``clients`` admit events — the
    requests in flight — and admits them as one batch, splitting at
    chaos kill points so a kill lands between the same acknowledged
    operations as in the serial round-robin.  Every request in a round
    was in flight for the whole round, so each carries the round's
    wall time as its latency.
    """
    records: list[RequestRecord] = []
    latency = QuantileReservoir()
    lag_res = QuantileReservoir()
    committed: set[str] = set()
    start = clock()
    index, n = 0, len(events)
    while index < n:
        if chaos is not None and chaos.due(index):
            service = chaos.execute(service, committed)
        end = min(n, index + clients)
        if chaos is not None:
            for k in range(index + 1, end):
                if chaos.due(k):
                    end = k
                    break
        group = events[index:end]
        t0 = clock()
        decisions = service.admit_batch([e.request for e in group],
                                        workers=workers)
        round_s = clock() - t0
        for offset, (event, decision) in enumerate(zip(group, decisions)):
            record = _admit_record(index + offset, event.t, event,
                                   decision, round_s, 0.0)
            if decision.admitted:
                committed.add(event.name)
            records.append(record)
            latency.observe(record.latency_s)
            lag_res.observe(record.lag_s)
            if writer is not None:
                writer.write_event(record)
        index = end
    wall_s = clock() - start
    return records, wall_s, service, committed, latency, lag_res


def run_closed_loop(service: "AdmissionService",
                    requests: Sequence, *,
                    clients: int = 4,
                    workers: int = 1,
                    writer: "TraceWriter | None" = None,
                    chaos: ChaosPlan | None = None,
                    clock: Callable[[], float] = time.perf_counter,
                    ) -> DriveResult:
    """Drive *requests* closed loop with *clients* logical clients.

    The service is synchronous and in-process, so with ``workers=1``
    "K clients with one request in flight each" executes as a
    deterministic round-robin: client ``i % clients`` issues request
    ``i`` the moment its previous answer lands.  With ``workers > 1``
    the K in-flight requests of each round are issued as one
    ``service.admit_batch(..., workers=...)`` call, putting genuine
    pool concurrency behind the probe while the batch planner's
    serial-equivalence contract keeps every decision (and the recorded
    trace) bit-identical to the round-robin.  Queue lag is identically
    zero by construction either way — a closed loop cannot fall behind
    its own issue rate — which is exactly why capacity numbers need
    the open-loop driver too.
    """
    if clients < 1:
        raise LoadGenError(f"clients must be >= 1, got {clients}")
    if workers < 1:
        raise LoadGenError(f"workers must be >= 1, got {workers}")
    events = [Event(float(i), "admit", request.name, request)
              for i, request in enumerate(requests)]
    if workers > 1:
        records, wall_s, service, committed, latency, lag = _drive_batched(
            service, events, clients=clients, workers=workers,
            writer=writer, chaos=chaos, clock=clock)
    else:
        records, wall_s, service, committed, latency, lag = _drive(
            service, events, pace=False, use_schedule=False,
            writer=writer, chaos=chaos, clock=clock, sleep=time.sleep)
    return DriveResult(
        records=records, wall_s=wall_s, duration_s=0.0,
        offered_rate=0.0, clients=clients, latency=latency, lag=lag,
        service=service, committed=committed, chaos=chaos)
