"""The seeded fuzz driver behind ``repro validate``.

:func:`run_validation` draws one random feed-forward topology per seed
(:func:`topology_for_seed`), runs the three oracles from
:mod:`repro.validate.oracles` on it, shrinks every violating network to
a minimal failing example (:mod:`repro.validate.shrink`), and packages
each violation as a replayable :class:`~repro.validate.repro_case.ReproCase`
(optionally written to ``--out DIR`` as JSON).

The whole run is driven through one :class:`~repro.context.AnalysisContext`:
a deadline on it bounds the run cooperatively (a partial
:class:`ValidationReport` with ``timed_out=True`` is returned instead of
raising), and all ``validate.*`` counters land in its metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.analysis.base import Analyzer
from repro.context import AnalysisContext, MetricsRegistry, NULL_CONTEXT
from repro.errors import AnalysisTimeoutError
from repro.network.generators import random_feedforward
from repro.network.serialization import network_to_dict
from repro.network.topology import Network
from repro.validate.oracles import (
    Violation,
    check_exact_grid,
    check_kernels,
    check_monotonicity,
    check_ordering,
    check_soundness,
)
from repro.validate.repro_case import ReproCase, save_case
from repro.validate.shrink import shrink_network

__all__ = ["ValidationReport", "run_validation", "topology_for_seed"]


def topology_for_seed(seed: int, *, quick: bool = False) -> Network:
    """The random feed-forward topology fuzzed for *seed*.

    Topology shape parameters (server count, flow count, utilization
    budget) are themselves drawn from the seed so the fuzz population
    covers sparse 2-server / 2-flow networks up to dense 6-server /
    9-flow ones.  ``quick`` caps the size for smoke runs.
    """
    rng = np.random.default_rng(seed)
    hi_servers, hi_flows = (4, 5) if quick else (7, 10)
    n_servers = int(rng.integers(2, hi_servers))
    n_flows = int(rng.integers(2, hi_flows))
    max_util = float(rng.uniform(0.4, 0.9))
    return random_feedforward(seed, n_servers=n_servers,
                              n_flows=n_flows,
                              max_utilization=max_util)


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one :func:`run_validation` run."""

    seeds: tuple[int, ...]
    cases: tuple[ReproCase, ...]
    counters: dict = field(default_factory=dict)
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        """True when every oracle held on every completed seed."""
        return not self.cases and not self.timed_out

    def render(self) -> str:
        """Human-readable summary (the CLI's output)."""
        lines = [f"validated {len(self.seeds)} seed(s): "
                 f"{len(self.cases)} violation(s)"]
        for name in ("soundness", "ordering", "monotonicity", "kernel",
                     "exact_grid"):
            n = self.counters.get(f"validate.{name}_checks", 0)
            if n:
                lines.append(f"  {name:<14} {int(n):>6} checks")
        for case in self.cases:
            v = case.violation
            lines.append(
                f"  VIOLATION [{case.oracle}] seed={case.seed} "
                f"flow={v.get('flow')}: {v.get('detail')}")
        if self.timed_out:
            lines.append("  TIMED OUT — report covers completed "
                         "seeds only")
        if self.ok:
            lines.append("  all oracles held")
        return "\n".join(lines)


def _shrink_predicate(oracle: str, flow: str | None, target: str | None,
                      params: dict, ctx: AnalysisContext):
    """True iff *flow* still violates *oracle* on a candidate network."""

    def holds(net: Network) -> bool:
        if oracle == "soundness":
            tgt = target if target in net.flows else None
            found = check_soundness(
                net, tgt, horizon=params["horizon"],
                packet_size=params["packet_size"], ctx=ctx)
        elif oracle == "ordering":
            found = check_ordering(net, ctx=ctx)
        else:
            found = check_monotonicity(
                net, burst_factor=params["burst_factor"],
                rate_factor=params["rate_factor"], ctx=ctx)
        return any(v.flow == flow for v in found)

    return holds


def _case_for(seed: int, net: Network, violation: Violation,
              target: str | None, params: dict, *, shrink: bool,
              ctx: AnalysisContext) -> ReproCase:
    """Shrink *net* around *violation* and package the repro case."""
    minimal = net
    if shrink:
        protect = {v for v in (violation.flow, target) if v is not None}
        minimal = shrink_network(
            net,
            _shrink_predicate(violation.oracle, violation.flow,
                              target, params, ctx),
            protect=protect, max_steps=60, ctx=ctx)
    return ReproCase(oracle=violation.oracle, seed=seed,
                     violation=violation.as_dict(), params=dict(params),
                     network=network_to_dict(minimal))


def run_validation(seeds: int | Iterable[int], *,
                   quick: bool = False,
                   horizon: float = 80.0,
                   packet_size: float = 0.05,
                   burst_factor: float = 2.0,
                   rate_factor: float = 1.25,
                   kernel_trials: int | None = None,
                   kernel_resolution: int | None = None,
                   analyzers: Mapping[str, Analyzer] | None = None,
                   out_dir: str | Path | None = None,
                   shrink: bool = True,
                   ctx: AnalysisContext = NULL_CONTEXT,
                   ) -> ValidationReport:
    """Fuzz the bounds over *seeds* random topologies.

    *seeds* may be a count (meaning ``range(seeds)``) or an explicit
    iterable of seed values.  ``quick`` shrinks topology sizes, the
    simulation horizon and the kernel workload for CI smoke runs.
    Repro cases for any violations are returned on the report and, when
    *out_dir* is given, written there as ``case_<oracle>_<seed>.json``.
    """
    seed_list = list(range(seeds)) if isinstance(seeds, int) else \
        list(seeds)
    if quick:
        horizon = min(horizon, 40.0)
    if kernel_trials is None:
        kernel_trials = 2 if quick else 4
    if kernel_resolution is None:
        kernel_resolution = 512 if quick else 1024
    if ctx.metrics is None:
        ctx = AnalysisContext(deadline=ctx.deadline, tracer=ctx.tracer,
                              metrics=MetricsRegistry())
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)

    done: list[int] = []
    cases: list[ReproCase] = []
    timed_out = False
    try:
        for seed in seed_list:
            ctx.checkpoint(f"validate seed {seed}")
            with ctx.span("validate.seed", seed=seed):
                net = topology_for_seed(seed, quick=quick)
                target = max(net.flows.values(),
                             key=lambda f: f.n_hops).name
                sound_params = {"target": target, "horizon": horizon,
                                "packet_size": packet_size}
                mono_params = {"burst_factor": burst_factor,
                               "rate_factor": rate_factor}
                found: list[tuple[Violation, dict]] = []
                found += [(v, sound_params) for v in check_soundness(
                    net, target, horizon=horizon,
                    packet_size=packet_size, analyzers=analyzers,
                    ctx=ctx)]
                found += [(v, {}) for v in check_ordering(
                    net, analyzers=analyzers, ctx=ctx)]
                found += [(v, mono_params) for v in check_monotonicity(
                    net, burst_factor=burst_factor,
                    rate_factor=rate_factor, analyzers=analyzers,
                    ctx=ctx)]
                for violation, params in found:
                    ctx.count("validate.violations")
                    cases.append(_case_for(
                        seed, net, violation, target, params,
                        shrink=shrink, ctx=ctx))

                kernel_params = {"trials": kernel_trials,
                                 "resolution": kernel_resolution}
                for violation in check_kernels(
                        seed, trials=kernel_trials,
                        resolution=kernel_resolution, ctx=ctx):
                    ctx.count("validate.violations")
                    cases.append(ReproCase(
                        oracle="kernel", seed=seed,
                        violation=violation.as_dict(),
                        params=dict(kernel_params)))
                for violation in check_exact_grid(
                        seed, trials=kernel_trials,
                        resolution=kernel_resolution, ctx=ctx):
                    ctx.count("validate.violations")
                    cases.append(ReproCase(
                        oracle="exact_grid", seed=seed,
                        violation=violation.as_dict(),
                        params=dict(kernel_params)))
            done.append(seed)
            ctx.count("validate.seeds")
    except AnalysisTimeoutError:
        timed_out = True

    if out_path is not None:
        for i, case in enumerate(cases):
            save_case(case, out_path /
                      f"case_{case.oracle}_{case.seed}_{i}.json")
    counters = ctx.metrics.as_dict() if ctx.metrics is not None else {}
    return ValidationReport(seeds=tuple(done), cases=tuple(cases),
                            counters=counters, timed_out=timed_out)
