"""Self-contained JSON repro cases for oracle violations.

A :class:`ReproCase` packages everything needed to re-run one failed
oracle property after the fuzz run is gone: the oracle name, the seed
and oracle parameters, the recorded violation, and — for the
network-level oracles — the (shrunk) violating topology serialized via
:mod:`repro.network.serialization`.  Cases round-trip through plain
JSON so they can be committed next to the fix they motivated and
replayed with ``repro validate --replay case.json``.

:func:`replay` re-runs the named oracle on the embedded inputs and
returns the violations it finds *now* — an empty list means the defect
is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.context import NULL_CONTEXT, AnalysisContext
from repro.network.serialization import (
    network_from_dict,
    network_to_dict,
)
from repro.network.topology import Network
from repro.validate.oracles import (
    Violation,
    check_kernels,
    check_monotonicity,
    check_ordering,
    check_soundness,
)

__all__ = ["ReproCase", "case_to_dict", "case_from_dict",
           "save_case", "load_case", "replay"]

#: Schema version stamped into every saved case.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class ReproCase:
    """One replayable oracle violation.

    ``network`` is the serialized (usually shrunk) topology for the
    soundness/ordering/monotonicity oracles and ``None`` for kernel
    cases, which are fully determined by ``seed`` and ``params``.
    """

    oracle: str
    seed: int
    violation: dict
    params: dict = field(default_factory=dict)
    network: dict | None = None

    def network_obj(self) -> Network | None:
        """The embedded topology as a live :class:`Network`."""
        if self.network is None:
            return None
        return network_from_dict(self.network)


def case_to_dict(case: ReproCase) -> dict:
    """JSON-ready representation of *case*."""
    return {
        "version": FORMAT_VERSION,
        "oracle": case.oracle,
        "seed": case.seed,
        "params": dict(case.params),
        "violation": dict(case.violation),
        "network": case.network,
    }


def case_from_dict(doc: dict) -> ReproCase:
    """Rebuild a :class:`ReproCase` from :func:`case_to_dict` output."""
    version = doc.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported repro-case version {version!r} "
            f"(this build reads version {FORMAT_VERSION})")
    try:
        return ReproCase(
            oracle=doc["oracle"],
            seed=int(doc["seed"]),
            params=dict(doc.get("params") or {}),
            violation=dict(doc["violation"]),
            network=doc.get("network"),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed repro case: {exc}") from exc


def save_case(case: ReproCase, path: str | Path) -> Path:
    """Write *case* to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(case_to_dict(case), indent=2) + "\n")
    return path


def load_case(path: str | Path) -> ReproCase:
    """Read a repro case from a JSON file."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: invalid JSON: {exc}") from exc
    return case_from_dict(doc)


def replay(case: ReproCase, *,
           ctx: AnalysisContext = NULL_CONTEXT) -> list[Violation]:
    """Re-run *case*'s oracle on its embedded inputs.

    Returns the violations found now; an empty list means the recorded
    defect no longer reproduces.
    """
    params = case.params
    if case.oracle == "kernel":
        return check_kernels(
            case.seed,
            trials=int(params.get("trials", 8)),
            resolution=int(params.get("resolution", 1024)),
            ctx=ctx)

    net = case.network_obj()
    if net is None:
        raise ValueError(
            f"repro case for oracle {case.oracle!r} has no network")
    if case.oracle == "soundness":
        return check_soundness(
            net, params.get("target"),
            horizon=float(params.get("horizon", 80.0)),
            packet_size=float(params.get("packet_size", 0.05)),
            ctx=ctx)
    if case.oracle == "ordering":
        return check_ordering(net, ctx=ctx)
    if case.oracle == "monotonicity":
        return check_monotonicity(
            net,
            burst_factor=float(params.get("burst_factor", 2.0)),
            rate_factor=float(params.get("rate_factor", 1.25)),
            ctx=ctx)
    raise ValueError(f"unknown oracle {case.oracle!r}")
