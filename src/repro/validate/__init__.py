"""Differential validation: fuzz the analytic bounds against each other.

The paper's value proposition is that Algorithm Integrated yields
*provably correct* end-to-end delay bounds that are tighter than
Algorithm Decomposed — so any simulated delay exceeding an analytic
bound, or any flow where ``Integrated > Decomposed`` on a feed-forward
network, is a reproduction-killing defect.  This package hunts for such
defects systematically with three randomized oracles
(:mod:`repro.validate.oracles`):

* **soundness** — for seeded random topologies, run the adversarial
  packet-level simulation and assert every observed delay stays below
  each analytic bound plus the documented per-hop packetization slack;
* **ordering / monotonicity** — ``Integrated <= Decomposed`` per flow,
  and every bound monotone under burst and utilization inflation;
* **kernel differential** — the exact piecewise-linear kernels
  (:meth:`~repro.curves.piecewise.PiecewiseLinearCurve.convolve`,
  ``hdev``, ``vdev``) against the sampled :mod:`repro.curves.numeric`
  kernels on the same operands, within a resolution-derived tolerance.

Violations are shrunk to minimal failing networks
(:mod:`repro.validate.shrink`) and emitted as self-contained JSON repro
cases (:mod:`repro.validate.repro_case`) that replay via
``repro validate --replay case.json``.  The fuzz driver lives in
:mod:`repro.validate.runner` and behind ``repro validate --seeds N``.
"""

from repro.validate.oracles import (
    Violation,
    check_kernels,
    check_monotonicity,
    check_ordering,
    check_soundness,
    default_analyzers,
    packetization_slack,
)
from repro.validate.repro_case import (
    ReproCase,
    load_case,
    replay,
    save_case,
)
from repro.validate.runner import (
    ValidationReport,
    run_validation,
    topology_for_seed,
)
from repro.validate.shrink import shrink_network

__all__ = [
    "Violation",
    "check_soundness",
    "check_ordering",
    "check_monotonicity",
    "check_kernels",
    "default_analyzers",
    "packetization_slack",
    "shrink_network",
    "ReproCase",
    "save_case",
    "load_case",
    "replay",
    "ValidationReport",
    "run_validation",
    "topology_for_seed",
]
