"""Greedy shrinking of violating networks to minimal repro cases.

A fuzzed violation on a random 6-server / 10-flow network is hard to
read; the same violation on 2 servers and 2 flows usually points
straight at the defect.  :func:`shrink_network` performs the classic
greedy delta-debugging loop: repeatedly try the candidate reductions

1. drop one flow,
2. drop one server (with every flow routed through it),
3. halve one flow's burst,

keeping a reduction whenever the caller's *predicate* (``True`` =
"the violation still reproduces") holds on the reduced network, until
no single reduction preserves the failure.  The result is 1-minimal
with respect to these reductions: removing any single remaining
element or halving any remaining burst makes the violation vanish.

Predicates are arbitrary callables — typically a closure re-running
one oracle from :mod:`repro.validate.oracles` — and are treated as
failure-prone: a predicate that *raises* on a candidate (e.g. the
reduced network lost the simulated target flow) counts as "violation
gone" and the candidate is discarded.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.context import NULL_CONTEXT, AnalysisContext
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.topology import Network

__all__ = ["shrink_network"]

#: Bursts below this size are no longer halved (a zero burst would
#: change the curve family, not just its scale).
_MIN_SIGMA = 1e-3


def _candidates(net: Network,
                protect: frozenset[str]) -> Iterable[Network]:
    """Single-step reductions of *net*, protected flows kept intact."""
    protected_servers = {
        sid for name in protect if name in net.flows
        for sid in net.flow(name).path
    }
    for flow in net.iter_flows():
        if flow.name not in protect and len(net.flows) > 1:
            yield net.without_flow(flow.name)
    for sid in sorted(net.servers, key=str):
        if sid not in protected_servers and len(net.servers) > 1:
            yield net.without_server(sid)
    for flow in net.iter_flows():
        if flow.bucket.sigma > _MIN_SIGMA:
            bucket = TokenBucket(flow.bucket.sigma / 2.0,
                                 flow.bucket.rho, flow.bucket.peak)
            yield net.replace_flow(Flow(
                flow.name, bucket, flow.path,
                deadline=flow.deadline, priority=flow.priority))


def shrink_network(network: Network,
                   predicate: Callable[[Network], bool], *,
                   protect: Iterable[str] = (),
                   max_steps: int = 200,
                   ctx: AnalysisContext = NULL_CONTEXT) -> Network:
    """Greedily minimize *network* while *predicate* keeps holding.

    Parameters
    ----------
    network:
        The violating network (predicate must hold on it; when it does
        not, the network is returned unchanged).
    predicate:
        ``True`` when the violation still reproduces on a candidate.
        Exceptions raised by the predicate count as ``False``.
    protect:
        Flow names that must survive shrinking (the violating flow and
        the simulation target); their servers are protected too.
    max_steps:
        Ceiling on predicate evaluations — shrinking an expensive
        soundness violation re-simulates per candidate, so runaway
        loops must be bounded.  Counted on ``validate.shrink_steps``.
    ctx:
        Execution context: a deadline on it is checked between
        candidate evaluations.
    """
    protect = frozenset(protect)

    def holds(candidate: Network) -> bool:
        try:
            return bool(predicate(candidate))
        except Exception:  # noqa: BLE001 - predicate boundary
            return False

    steps = 0
    current = network
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current, protect):
            ctx.checkpoint("shrink candidate")
            if steps >= max_steps:
                break
            steps += 1
            ctx.count("validate.shrink_steps")
            if holds(candidate):
                current = candidate
                improved = True
                break
    return current
