"""The three differential oracles.

Each oracle is a pure check ``inputs -> list[Violation]``: it never
raises on a failed property (callers decide whether to shrink, record
or abort) and it threads an :class:`~repro.context.AnalysisContext`
through every analysis it runs, so fuzz runs are deadline-bounded and
metered under the ``validate.*`` counter namespace.

Soundness tolerances
--------------------
The fluid analyses bound the delay of *fluid* traffic; the packetized
simulator completes a packet at a hop only once its **last bit** has
been served, which adds up to one packet transmission time
(``packet_size / capacity``) per hop.  :func:`packetization_slack`
computes that documented slack term exactly; observed delays must stay
within ``bound + slack`` (plus a float-comparison epsilon).

Kernel tolerances
-----------------
The sampled kernels evaluate on a uniform grid of spacing ``dt``.  For
operands with Lipschitz constant ``L`` the sampled result can deviate
from the exact one by ``O(dt * L)``; the per-check tolerances below are
that scale with a safety factor of 2 (validated empirically far above
the observed worst cases — see ``docs/VALIDATION.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.analysis.base import Analyzer, DelayReport
from repro.analysis.decomposed import DecomposedAnalysis
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.core.integrated import IntegratedAnalysis
from repro.curves import numeric
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.topology import Network
from repro.resilience.faults import BurstInflation
from repro.sim.adversary import simulate_adversarial
from repro.utils.grid import make_grid

__all__ = [
    "Violation",
    "default_analyzers",
    "packetization_slack",
    "check_soundness",
    "check_ordering",
    "check_monotonicity",
    "check_kernels",
    "check_exact_grid",
]

#: Float-comparison epsilon added on top of every analytic tolerance.
EPS_ABS = 1e-9
#: Relative slack for bound-vs-bound comparisons (ordering and
#: monotonicity compare two sampled-kernel results against each other).
EPS_REL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One failed oracle property.

    ``observed > allowed`` always holds for a recorded violation;
    ``margin`` is the (positive) excess.
    """

    oracle: str
    flow: str | None
    detail: str
    observed: float
    allowed: float

    @property
    def margin(self) -> float:
        """How far past the allowed value the observation landed."""
        return self.observed - self.allowed

    def as_dict(self) -> dict:
        """JSON-ready representation (repro-case payload)."""
        return {
            "oracle": self.oracle,
            "flow": self.flow,
            "detail": self.detail,
            "observed": self.observed,
            "allowed": self.allowed,
            "margin": self.margin,
        }


def default_analyzers() -> dict[str, Analyzer]:
    """The analyzer pair every oracle compares by default."""
    return {
        "integrated": IntegratedAnalysis(),
        "decomposed": DecomposedAnalysis(),
    }


def packetization_slack(network: Network, flow: Flow,
                        packet_size: float) -> float:
    """The documented per-hop packetization slack of *flow*.

    One packet transmission time (``packet_size / capacity``) per
    traversed server: the fluid bound covers the last bit's fluid
    delay, and packetized service releases a packet only when that last
    bit has been served at every hop.
    """
    return sum(packet_size / network.server(sid).capacity
               for sid in flow.path)


# ----------------------------------------------------------------------
# oracle 1: soundness (simulation vs bounds)
# ----------------------------------------------------------------------


def check_soundness(network: Network, target: str | None = None, *,
                    horizon: float = 80.0, packet_size: float = 0.05,
                    analyzers: Mapping[str, Analyzer] | None = None,
                    ctx: AnalysisContext = NULL_CONTEXT,
                    ) -> list[Violation]:
    """Observed adversarial-simulation delays must stay below bounds.

    The adversarial stagger attacks *target* (default: the flow with
    the most hops), but soundness is asserted for **every** flow with
    completed packets — a bound must hold under any arrival pattern,
    adversarial toward this flow or not.
    """
    analyzers = dict(analyzers) if analyzers is not None \
        else default_analyzers()
    if target is None:
        target = _longest_flow(network)
    reports = {name: a.run(network, ctx)
               for name, a in analyzers.items()}
    ctx.checkpoint("soundness simulation")
    with ctx.timed("validate.sim"):
        sim = simulate_adversarial(network, target, horizon=horizon,
                                   packet_size=packet_size)
    violations = []
    for name, report in reports.items():
        for flow in network.iter_flows():
            stats = sim.stats.get(flow.name)
            if stats is None or stats.count == 0:
                continue
            slack = packetization_slack(network, flow, packet_size)
            allowed = report.delay_of(flow.name) + slack + EPS_ABS
            ctx.count("validate.soundness_checks")
            if stats.max_delay > allowed:
                violations.append(Violation(
                    "soundness", flow.name,
                    f"simulated delay {stats.max_delay:.6g} exceeds "
                    f"{name} bound {report.delay_of(flow.name):.6g} + "
                    f"packetization slack {slack:.6g} "
                    f"(target={target!r}, horizon={horizon:g}, "
                    f"packet={packet_size:g})",
                    stats.max_delay, allowed))
    return violations


# ----------------------------------------------------------------------
# oracle 2: ordering and monotonicity
# ----------------------------------------------------------------------


def check_ordering(network: Network, *,
                   analyzers: Mapping[str, Analyzer] | None = None,
                   ctx: AnalysisContext = NULL_CONTEXT,
                   ) -> list[Violation]:
    """``Integrated <= Decomposed`` per flow on feed-forward networks.

    The paper's central claim: the integrated bound never loses to the
    decomposition.  Uses the "integrated" and "decomposed" entries of
    *analyzers* (both must be present).
    """
    analyzers = dict(analyzers) if analyzers is not None \
        else default_analyzers()
    integrated = analyzers["integrated"].run(network, ctx)
    decomposed = analyzers["decomposed"].run(network, ctx)
    violations = []
    for flow in network.iter_flows():
        d_int = integrated.delay_of(flow.name)
        d_dec = decomposed.delay_of(flow.name)
        allowed = d_dec * (1.0 + EPS_REL) + EPS_ABS
        ctx.count("validate.ordering_checks")
        if d_int > allowed:
            violations.append(Violation(
                "ordering", flow.name,
                f"integrated bound {d_int:.6g} exceeds decomposed "
                f"bound {d_dec:.6g}", d_int, allowed))
    return violations


def _inflate_rates(network: Network, factor: float) -> Network | None:
    """Every source rate scaled by *factor*, or None when that would
    push any server to (or past) saturation — the inflated comparison
    point must itself be a stable network."""
    if factor * network.max_utilization() >= 0.999:
        return None
    result = network
    for flow in network.iter_flows():
        b = flow.bucket
        peak = b.peak if math.isinf(b.peak) else max(b.peak,
                                                     b.rho * factor)
        result = result.replace_flow(Flow(
            flow.name, TokenBucket(b.sigma, b.rho * factor, peak),
            flow.path, deadline=flow.deadline, priority=flow.priority))
    return result


def check_monotonicity(network: Network, *,
                       burst_factor: float = 2.0,
                       rate_factor: float = 1.25,
                       analyzers: Mapping[str, Analyzer] | None = None,
                       ctx: AnalysisContext = NULL_CONTEXT,
                       ) -> list[Violation]:
    """Bounds must not decrease under burst or utilization inflation.

    Two inflations are applied: every source's burst scaled by
    *burst_factor*, and every source's rate scaled by *rate_factor*
    (skipped when it would destabilize a server).  For each analyzer
    and flow, the inflated bound must be at least the baseline bound
    (up to the bound-vs-bound comparison slack).

    Always evaluated on the exact kernel: monotonicity is a property
    of the analytic bounds, and the grid backend's resolution-derived
    soundness pads shrink with its rate-aware horizon — inflating the
    rates can shrink the pad faster than the true bound grows, so the
    padded bound is *not* monotone in the inputs (see docs/KERNELS.md).
    The grid backend itself is covered by the kernel and exact-vs-grid
    differential oracles.
    """
    analyzers = dict(analyzers) if analyzers is not None \
        else default_analyzers()
    ctx = ctx.with_kernel("exact")
    base = {name: a.run(network, ctx)
            for name, a in analyzers.items()}
    inflations: list[tuple[str, Network]] = [
        (f"burst x{burst_factor:g}",
         BurstInflation(burst_factor).apply(network)),
    ]
    inflated_rates = _inflate_rates(network, rate_factor)
    if inflated_rates is not None:
        inflations.append((f"rate x{rate_factor:g}", inflated_rates))

    violations = []
    for label, inflated in inflations:
        for name, analyzer in analyzers.items():
            report = analyzer.run(inflated, ctx)
            for flow in network.iter_flows():
                before = base[name].delay_of(flow.name)
                after = report.delay_of(flow.name)
                floor = before * (1.0 - EPS_REL) - EPS_ABS
                ctx.count("validate.monotonicity_checks")
                if after < floor:
                    violations.append(Violation(
                        "monotonicity", flow.name,
                        f"{name} bound dropped from {before:.6g} to "
                        f"{after:.6g} under {label}",
                        # monotonicity is a lower-bound property; keep
                        # the violation's observed > allowed convention
                        # by negating both sides
                        -after, -floor))
    return violations


# ----------------------------------------------------------------------
# oracle 3: exact-vs-sampled kernel differential
# ----------------------------------------------------------------------


def _random_concave(rng: np.random.Generator) -> PiecewiseLinearCurve:
    """A random arrival curve (peak-limited token bucket)."""
    sigma = float(rng.uniform(0.2, 3.0))
    rho = float(rng.uniform(0.05, 0.6))
    peak = float(rng.uniform(max(rho * 1.5, 0.7), 2.0))
    return TokenBucket(sigma, rho, peak).constraint_curve()


def _random_convex(rng: np.random.Generator,
                   min_rate: float) -> PiecewiseLinearCurve:
    """A random service curve (rate-latency above *min_rate*)."""
    rate = float(rng.uniform(max(min_rate + 0.1, 0.3), 2.0))
    latency = float(rng.uniform(0.0, 4.0))
    return PiecewiseLinearCurve.rate_latency(rate, latency)


def _lipschitz(c: PiecewiseLinearCurve) -> float:
    return float(np.max(np.abs(c.slopes())))


def _characteristic(c: PiecewiseLinearCurve) -> float:
    t = float(c.x[-1])
    if c.final_slope > 0:
        t += max(float(c.y[-1]), 0.0) / c.final_slope
    return t


def check_kernels(seed: int, *, trials: int = 8,
                  resolution: int = 1024,
                  ctx: AnalysisContext = NULL_CONTEXT,
                  ) -> list[Violation]:
    """Exact curve kernels vs the sampled grid kernels.

    For *trials* random (concave arrival, concave arrival, convex
    service) triples, compares

    * exact concave ``convolve`` against :func:`numeric.grid_convolve`,
    * exact convex ``convolve`` against the sampled kernel,
    * exact ``horizontal_deviation`` against :func:`numeric.grid_hdev`,
    * exact ``vertical_deviation`` against :func:`numeric.grid_vdev`,

    each within its resolution-derived tolerance (module docstring).
    """
    rng = np.random.default_rng(seed)
    violations = []

    def record(op: str, exact: float, sampled: float, tol: float,
               what: str) -> None:
        ctx.count("validate.kernel_checks")
        err = abs(exact - sampled)
        if err > tol:
            violations.append(Violation(
                "kernel", None,
                f"{op}: exact {exact:.9g} vs sampled {sampled:.9g} "
                f"({what}, seed={seed})", err, tol))

    for trial in range(trials):
        ctx.checkpoint(f"kernel differential trial {trial}")
        arr = _random_concave(rng)
        arr2 = _random_concave(rng)
        srv = _random_convex(rng, min_rate=arr.final_slope)
        srv2 = _random_convex(rng, min_rate=0.0)
        horizon = max(1.0, 4.0 * max(_characteristic(arr),
                                     _characteristic(arr2),
                                     _characteristic(srv),
                                     _characteristic(srv2)))
        grid = make_grid(horizon, resolution)
        dt = grid.dt
        l_arr, l_arr2 = _lipschitz(arr), _lipschitz(arr2)
        l_srv, l_srv2 = _lipschitz(srv), _lipschitz(srv2)
        probe = grid.times[:: max(1, resolution // 64)]

        # concave (x) concave convolution
        exact_cc = arr.convolve(arr2)
        sampled_cc = numeric.to_curve(
            numeric.grid_convolve(numeric.sample(arr, grid),
                                  numeric.sample(arr2, grid)), grid)
        tol = 2.0 * dt * (1.0 + l_arr + l_arr2)
        err = float(np.max(np.abs(exact_cc.sample(probe)
                                  - sampled_cc.sample(probe))))
        record("convolve[concave]", 0.0, err, tol,
               f"trial {trial}, max abs gap on grid")

        # convex (x) convex convolution
        exact_vv = srv.convolve(srv2)
        sampled_vv = numeric.to_curve(
            numeric.grid_convolve(numeric.sample(srv, grid),
                                  numeric.sample(srv2, grid)), grid)
        tol = 2.0 * dt * (1.0 + l_srv + l_srv2)
        err = float(np.max(np.abs(exact_vv.sample(probe)
                                  - sampled_vv.sample(probe))))
        record("convolve[convex]", 0.0, err, tol,
               f"trial {trial}, max abs gap on grid")

        # horizontal deviation (delay bound)
        exact_h = arr.horizontal_deviation(srv)
        sampled_h = numeric.grid_hdev(numeric.sample(arr, grid),
                                      numeric.sample(srv, grid), grid)
        tol = 2.0 * dt * (1.0 + l_arr / max(srv.final_slope, 1e-9))
        record("hdev", exact_h, sampled_h, tol, f"trial {trial}")

        # vertical deviation (backlog bound)
        exact_v = arr.vertical_deviation(srv)
        sampled_v = numeric.grid_vdev(numeric.sample(arr, grid),
                                      numeric.sample(srv, grid))
        tol = 2.0 * dt * (l_arr + l_srv)
        record("vdev", exact_v, sampled_v, tol, f"trial {trial}")
    return violations


def _random_mixed(rng: np.random.Generator) -> PiecewiseLinearCurve:
    """A random mixed-convexity curve: convex near 0, concave beyond.

    ``rate_latency ∧ token-bucket`` with the latency ramp steeper than
    the bucket's sustained rate is neither convex nor concave, so the
    exact kernel must take its general decomposition path (no closed
    form applies).
    """
    concave = _random_concave(rng)
    rate = float(rng.uniform(concave.final_slope + 0.2, 3.0))
    latency = float(rng.uniform(0.2, 2.0))
    return PiecewiseLinearCurve.rate_latency(rate, latency).minimum(
        concave).simplified()


def check_exact_grid(seed: int, *, trials: int = 6,
                     resolution: int = 1024,
                     ctx: AnalysisContext = NULL_CONTEXT,
                     ) -> list[Violation]:
    """Differential oracle over the *operations façade*: exact vs grid.

    Where :func:`check_kernels` compares the raw numeric kernels
    against closed forms, this oracle drives the public
    :mod:`repro.curves.operations` dispatch — the exact kernel's
    general (mixed-convexity) paths against the padded grid backend —
    and asserts the *soundness ordering* the analyses rely on:

    * **convolution**: the grid inf ranges over fewer split points, so
      at every grid time ``exact ⊗ <= grid ⊗ + eps``; and the grid
      result must stay within the documented ``2·dt·(1 + Lf + Lg)``
      error envelope of the exact one.
    * **deconvolution**: the padded grid sup must dominate the exact
      sup on the kept window, within ``2·dt·(Lf + Lg)`` of it.
    * **hdev / vdev**: the grid backend's padded deviations must
      dominate the exact ones, within twice their pad.

    A violation in either direction means a kernel (or a pad) is wrong.
    """
    from repro.curves.exact import exact_convolve, exact_deconvolve
    from repro.curves.kernels import use_kernel
    from repro.curves.operations import _auto_grid
    from repro.curves.operations import convolve as op_convolve
    from repro.curves.operations import deconvolve as op_deconvolve
    from repro.curves.operations import hdev, vdev

    rng = np.random.default_rng(seed)
    violations: list[Violation] = []
    n_probe = max(8, resolution // 16)

    def record(op: str, gap: float, tol: float, what: str) -> None:
        ctx.count("validate.exact_grid_checks")
        if gap > tol:
            violations.append(Violation(
                "exact_grid", None,
                f"{op}: {what} (seed={seed})", gap, tol))

    for trial in range(trials):
        ctx.checkpoint(f"exact/grid differential trial {trial}")
        mixed = _random_mixed(rng)
        arr = _random_concave(rng)
        srv = _random_convex(rng, min_rate=max(mixed.final_slope,
                                               arr.final_slope))
        l_m, l_a, l_s = (_lipschitz(c) for c in (mixed, arr, srv))

        # -- convolution: exact general path vs sampled grid ----------
        # Probe at grid points: between them the reconstructed grid
        # curve interpolates linearly and may legitimately dip below
        # the exact curve by O(dt*L) in concave regions.
        grid = _auto_grid(mixed, srv)   # the grid backend's own grid
        probe = grid.times[:: max(1, grid.n // n_probe)]
        probe = probe[probe <= 0.5 * grid.horizon]
        c_exact = exact_convolve(mixed, srv)
        with use_kernel("grid"):
            c_grid = op_convolve(mixed, srv)
        ve, vg = c_exact.sample(probe), c_grid.sample(probe)
        tol = 2.0 * grid.dt * (1.0 + l_m + l_s)
        record("convolve", float(np.max(ve - vg)), EPS_ABS,
               f"trial {trial}: exact exceeds grid inf")
        record("convolve", float(np.max(vg - ve)), tol + EPS_ABS,
               f"trial {trial}: grid outside error envelope")

        # -- deconvolution: exact sup vs padded grid sup --------------
        grid = _auto_grid(arr, srv)
        probe = grid.times[:: max(1, grid.n // n_probe)]
        probe = probe[probe <= 0.5 * grid.horizon]
        d_exact = exact_deconvolve(arr, srv)
        with use_kernel("grid"):
            d_grid = op_deconvolve(arr, srv)
        ve, vg = d_exact.sample(probe), d_grid.sample(probe)
        tol = 2.0 * grid.dt * (l_a + l_s)
        record("deconvolve", float(np.max(ve - vg)), EPS_ABS,
               f"trial {trial}: padded grid sup below exact sup")
        record("deconvolve", float(np.max(vg - ve)), tol + EPS_ABS,
               f"trial {trial}: grid outside error envelope")

        # -- deviations: padded grid must dominate exact --------------
        h_exact = hdev(arr, srv, kernel="exact")
        v_exact = vdev(arr, srv, kernel="exact")
        h_grid = hdev(arr, srv, kernel="grid")
        v_grid = vdev(arr, srv, kernel="grid")
        grid = _auto_grid(arr, srv)
        h_pad = 2.0 * grid.dt * (1.0 + l_a / max(srv.final_slope, 1e-9))
        v_pad = 2.0 * grid.dt * (l_a + l_s)
        record("hdev", h_exact - h_grid, EPS_ABS,
               f"trial {trial}: grid hdev below exact")
        record("hdev", h_grid - h_exact, 2.0 * h_pad + EPS_ABS,
               f"trial {trial}: grid hdev outside envelope")
        record("vdev", v_exact - v_grid, EPS_ABS,
               f"trial {trial}: grid vdev below exact")
        record("vdev", v_grid - v_exact, 2.0 * v_pad + EPS_ABS,
               f"trial {trial}: grid vdev outside envelope")
    return violations


def _longest_flow(network: Network) -> str:
    return max(network.flows.values(), key=lambda f: f.n_hops).name


def bounds_of(report: DelayReport) -> dict[str, float]:
    """Per-flow bound mapping of a report (repro-case payloads)."""
    return {name: fd.total for name, fd in report.delays.items()}
