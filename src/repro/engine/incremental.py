"""The incremental engine: dependency-tracked memoization of delay
analyses.

:class:`IncrementalEngine` wraps an :class:`~repro.analysis.base.
Analyzer` and serves repeated analyses of *evolving* networks — the
admission-control workload, where consecutive networks differ by a
handful of flows.  Three mechanisms cooperate:

1. **Dependency graph** (:mod:`repro.engine.depgraph`): which servers
   each flow touches, and what is downstream of them.  Changing flows
   dirties exactly the affected cone.
2. **Fast reuse**: per-server / per-block results from the previous
   sweep are replayed verbatim for every block outside the cone — no
   hashing, no computation.
3. **Content-addressed cache** (:mod:`repro.engine.cache`): blocks
   inside the cone are keyed by a stable digest of their *exact*
   inputs (specs, flow roles, IEEE-754 bits of every curve); a hit —
   e.g. releasing a flow back to a previously seen state — replays the
   stored result.

Because every reused result was originally produced by the very same
pure per-block function the cold analyzer runs
(:func:`repro.analysis.propagation.server_step`,
:func:`repro.core.integrated.evaluate_block`), engine reports are
**bit-identical** to cold reports.  When the wrapped analyzer is not
one the engine understands — or the network is not feed-forward — the
engine transparently falls back to a cold full analysis (counted in
:class:`~repro.engine.stats.EngineStats.fallbacks`), so it is a safe
drop-in anywhere an analyzer is accepted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.analysis.base import Analyzer, DelayReport
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.propagation import ServerInput, server_step
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.core.integrated import (
    BlockInput,
    IntegratedAnalysis,
    evaluate_block,
)
from repro.curves.kernels import current_kernel
from repro.engine.cache import ResultCache
from repro.engine.depgraph import DependencyGraph, affected_cone
from repro.engine.stats import EngineStats
from repro.errors import EngineError, StoreError
from repro.network.flow import Flow
from repro.network.topology import Network
from repro.store import AnalysisStore
from repro.utils.hashing import stable_digest

__all__ = [
    "IncrementalEngine",
    "reports_identical",
    "describe_report_difference",
]

ServerId = Hashable

#: Sweep-unit record: the result object plus its original compute time
#: (what a reuse saves).
_Record = tuple[object, float]


def _server_key(si: ServerInput) -> bytes:
    """Content digest of one decomposition step's exact inputs.

    The curve kernel is part of the key: a step evaluated on the grid
    backend must never replay as an exact result (or vice versa).
    """
    parts: list[object] = ["step", si.capacity, si.discipline, si.capped,
                           si.kernel]
    for fa in si.flows:
        parts.extend((fa.name, fa.has_next, fa.priority, fa.rho,
                      fa.curve.x, fa.curve.y, fa.curve.final_slope))
    return stable_digest(*parts)


def _block_key(bi: BlockInput) -> bytes:
    """Content digest of one integrated block's exact inputs.

    Includes the curve kernel, like :func:`_server_key`.
    """
    parts: list[object] = ["block", bi.kind, bi.capacities,
                           bi.disciplines, bi.use_family_kernel,
                           bi.kernel]
    for fa in bi.flows:
        parts.extend((fa.name, fa.role, fa.has_next, fa.priority, fa.rho,
                      fa.curve.x, fa.curve.y, fa.curve.final_slope))
    return stable_digest(*parts)


def reports_identical(a: DelayReport, b: DelayReport) -> bool:
    """True when two reports are exactly equal — algorithm, every
    flow's bound and contribution breakdown, and all metadata.

    Floats are compared with ``==`` (no tolerance): the engine's
    contract is bit-identity, not approximation.
    """
    return (a.algorithm == b.algorithm
            and dict(a.delays) == dict(b.delays)
            and dict(a.meta) == dict(b.meta))


def describe_report_difference(a: DelayReport,
                               b: DelayReport) -> str | None:
    """Human-readable description of the first divergence, or None."""
    if a.algorithm != b.algorithm:
        return f"algorithm {a.algorithm!r} != {b.algorithm!r}"
    if set(a.delays) != set(b.delays):
        odd = sorted(set(a.delays) ^ set(b.delays))
        return f"flow sets differ: {odd}"
    for name in sorted(a.delays):
        fa, fb = a.delays[name], b.delays[name]
        if fa.total != fb.total:
            return (f"flow {name!r}: total {fa.total!r} != {fb.total!r}")
        if fa.contributions != fb.contributions:
            return (f"flow {name!r}: contributions differ: "
                    f"{fa.contributions} != {fb.contributions}")
    if dict(a.meta) != dict(b.meta):
        keys = {k for k in set(a.meta) | set(b.meta)
                if a.meta.get(k) != b.meta.get(k)}
        return f"meta differs on keys {sorted(map(str, keys))}"
    return None


@dataclass
class _SweepMemo:
    """Everything remembered from the engine's last incremental sweep."""

    network: Network
    depgraph: DependencyGraph
    fingerprint: tuple
    outcomes: dict[tuple, _Record]
    report: DelayReport


class IncrementalEngine(Analyzer):
    """Analyzer wrapper that memoizes per-hop / per-block results.

    Parameters
    ----------
    analyzer:
        The wrapped analysis.  :class:`~repro.analysis.decomposed.
        DecomposedAnalysis` and :class:`~repro.core.integrated.
        IntegratedAnalysis` run incrementally; anything else falls back
        to cold full analysis on every query.
    network:
        Optional initial network for the stateful
        :meth:`admit` / :meth:`release` / :meth:`query` interface.  The
        stateless :meth:`analyze` works without it.
    max_cache_entries:
        Bound on the content-addressed cache (LRU beyond it);
        ``None`` = unbounded.
    self_check:
        Run a cold full analysis after every incremental sweep and
        raise :class:`~repro.errors.EngineError` unless the reports are
        bit-identical.  For differential harnesses and paranoid
        deployments; roughly doubles the cost of every query.
    store:
        Optional :class:`~repro.store.AnalysisStore` second cache tier:
        a memory miss probes the store before computing cold, and
        freshly computed results are persisted (when the store is
        writable), so bounds survive process restarts.  Store entries
        carry the same content keys (kernel included) as the in-memory
        cache, so a store hit is bit-identical to the cold computation
        by construction; disk trouble degrades to a miss, never an
        error on the analysis path.
    """

    def __init__(self, analyzer: Analyzer,
                 network: Network | None = None, *,
                 max_cache_entries: int | None = None,
                 self_check: bool = False,
                 store: AnalysisStore | None = None) -> None:
        if isinstance(analyzer, IncrementalEngine):
            raise EngineError("cannot wrap an IncrementalEngine in "
                              "another IncrementalEngine")
        self._analyzer = analyzer
        if isinstance(analyzer, DecomposedAnalysis):
            self._mode = "decomposed"
        elif isinstance(analyzer, IntegratedAnalysis):
            self._mode = "integrated"
        else:
            self._mode = None
        self.name = f"incremental+{analyzer.name}"
        self.stats = EngineStats()
        self._cache = ResultCache(max_cache_entries)
        self._memo: _SweepMemo | None = None
        self._network = network
        self._self_check = bool(self_check)
        self._store = store

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def analyzer(self) -> Analyzer:
        """The wrapped (cold) analyzer."""
        return self._analyzer

    @property
    def network(self) -> Network | None:
        """Current network of the stateful admit/release interface."""
        return self._network

    @property
    def cache_size(self) -> int:
        """Number of entries in the content-addressed cache."""
        return len(self._cache)

    @property
    def store(self) -> AnalysisStore | None:
        """The persistent second cache tier, when attached."""
        return self._store

    @property
    def supports_incremental(self) -> bool:
        """False when every query cold-falls-back (unknown analyzer)."""
        return self._mode is not None

    def _fingerprint(self, ctx: AnalysisContext) -> tuple:
        """The wrapped analyzer's current configuration.

        Changing configuration between queries invalidates fast reuse
        (the memoized sweep was produced under different settings);
        the content cache is safe regardless because the relevant flags
        are part of every key.  The effective curve kernel — the
        context's selection when set, else the ambient one — is part of
        the configuration: switching kernels between queries must not
        replay the previous kernel's sweep verbatim.
        """
        kernel = ctx.kernel if ctx.kernel is not None else current_kernel()
        if self._mode == "decomposed":
            return ("decomposed", self._analyzer.capped_propagation,
                    kernel)
        strategy = self._analyzer.strategy
        return ("integrated", self._analyzer.use_family_kernel,
                type(strategy).__qualname__,
                getattr(strategy, "flow_name", None),
                kernel)

    # ------------------------------------------------------------------
    # core analysis
    # ------------------------------------------------------------------

    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Bounds for *network*, reusing whatever the last analysis of
        a similar network already established.

        Falls back to a cold full analysis (same return value, no
        caching) for unsupported analyzers and non-feed-forward
        networks.  Results are always bit-identical to
        ``self.analyzer.analyze(network)``.

        *ctx* flows into the wrapped analyzer (deadline checks and
        spans at every sweep unit); the engine installs its memoizing
        interceptors on a derived context, and mirrors its cache
        counters (``engine.hits`` …) into the context's registry so
        traces carry the cache behavior of the very query they time.
        """
        self.stats.queries += 1
        ctx.count("engine.queries")
        if self._mode is None or not network.is_feedforward:
            self.stats.fallbacks += 1
            ctx.count("engine.fallbacks")
            return self._analyzer.run(network, ctx)

        memo = self._memo
        fingerprint = self._fingerprint(ctx)
        if (memo is not None and memo.fingerprint == fingerprint
                and memo.network.version == network.version):
            ctx.count("engine.memo_replays")
            return memo.report

        depgraph = DependencyGraph(network)
        cone, reusable = self._plan(memo, network, depgraph, fingerprint)
        if cone is not None and not cone and reusable:
            # nothing changed at all: the previous report stands
            ctx.count("engine.memo_replays")
            return memo.report
        n_dirty = len(cone) if cone is not None else 0
        self.stats.invalidations += n_dirty
        ctx.count("engine.invalidations", n_dirty)
        ctx.annotate(dirty_cone=n_dirty,
                     full_rebuild=cone is None)

        outcomes: dict[tuple, _Record] = {}
        if self._mode == "decomposed":
            sweep_ctx = ctx.with_interceptors(
                step=self._make_server_step(cone, reusable, outcomes, ctx))
        else:
            sweep_ctx = ctx.with_interceptors(
                block=self._make_block_step(cone, reusable, outcomes, ctx))
        report = self._analyzer.analyze(network, ctx=sweep_ctx)
        self._memo = _SweepMemo(network, depgraph, fingerprint,
                                outcomes, report)

        if self._self_check:
            self.stats.self_checks += 1
            cold = self._analyzer.analyze(network)
            diff = describe_report_difference(report, cold)
            if diff is not None:
                raise EngineError(
                    f"incremental result diverged from cold analysis: "
                    f"{diff}")
        return report

    def _plan(self, memo: _SweepMemo | None, network: Network,
              depgraph: DependencyGraph, fingerprint: tuple,
              ) -> tuple[set[ServerId] | None, dict[tuple, _Record]]:
        """The invalidation pass: (dirty cone, reusable sweep units).

        A ``None`` cone means "everything dirty, nothing structurally
        comparable" (first query, changed analyzer config, changed
        server set); fast reuse is disabled and only the content cache
        applies.
        """
        if memo is None or memo.fingerprint != fingerprint:
            return None, {}
        old = memo.network
        if (dict(old.servers) != dict(network.servers)
                or old.allow_cycles != network.allow_cycles):
            return None, {}
        old_flows: Mapping[str, Flow] = old.flows
        new_flows: Mapping[str, Flow] = network.flows
        changed: list[Flow] = [
            f for name, f in old_flows.items()
            if name not in new_flows or new_flows[name] != f]
        changed += [
            f for name, f in new_flows.items()
            if name not in old_flows or old_flows[name] != f]
        if not changed:
            return set(), memo.outcomes
        cone = affected_cone(memo.depgraph, depgraph, changed)
        return cone, memo.outcomes

    # ------------------------------------------------------------------
    # sweep hooks
    # ------------------------------------------------------------------

    def _lookup(self, unit: tuple, in_cone: bool,
                reusable: dict[tuple, _Record],
                outcomes: dict[tuple, _Record], key_fn, compute_fn,
                payload, ctx: AnalysisContext):
        """Shared reuse → cache → compute ladder for one sweep unit.

        Runs *inside* the span the context opened for this unit, so the
        cache verdict is annotated onto the unit's own span.
        """
        if not in_cone:
            rec = reusable.get(unit)
            if rec is not None:
                outcomes[unit] = rec
                self.stats.fast_reuses += 1
                self.stats.saved_s += rec[1]
                ctx.count("engine.fast_reuses")
                ctx.annotate(cache="fast_reuse")
                return rec[0]
        key = key_fn(payload)
        entry = self._cache.get(key)
        if entry is not None:
            self.stats.hits += 1
            self.stats.saved_s += entry.compute_time
            ctx.count("engine.hits")
            ctx.annotate(cache="hit")
            outcomes[unit] = (entry.value, entry.compute_time)
            return entry.value
        if self._store is not None:
            stored = self._store.get(key)
            if stored is not None:
                self.stats.store_hits += 1
                self.stats.saved_s += stored.compute_time
                ctx.count("store.hits")
                ctx.annotate(cache="store_hit")
                self._cache.put(key, stored.value, stored.compute_time)
                outcomes[unit] = (stored.value, stored.compute_time)
                return stored.value
            self.stats.store_misses += 1
            ctx.count("store.misses")
        t0 = time.perf_counter()
        value = compute_fn(payload)
        dt = time.perf_counter() - t0
        self.stats.misses += 1
        self.stats.spent_s += dt
        ctx.count("engine.misses")
        ctx.count("engine.spent_s", dt)
        ctx.annotate(cache="miss")
        self._cache.put(key, value, dt)
        self._persist(key, value, dt, ctx)
        outcomes[unit] = (value, dt)
        return value

    def _persist(self, key: bytes, value: object, dt: float,
                 ctx: AnalysisContext) -> None:
        """Best-effort store write; never fails the analysis path.

        Read-only stores (pool workers) skip silently — their fresh
        entries travel back to the parent as seed records instead.
        Disk trouble (full, permissions, closed store) is counted and
        swallowed: persistence is an optimization, correctness never
        depends on it.
        """
        if self._store is None or self._store.read_only:
            return
        try:
            if self._store.put(key, value, dt):
                ctx.count("store.writes")
        except (StoreError, OSError):
            ctx.count("store.write_errors")

    def _make_server_step(self, cone, reusable, outcomes,
                          ctx: AnalysisContext):
        def step(sid, si: ServerInput):
            in_cone = cone is None or sid in cone
            return self._lookup(("server", sid), in_cone, reusable,
                                outcomes, _server_key, server_step, si,
                                ctx)
        return step

    def _make_block_step(self, cone, reusable, outcomes,
                         ctx: AnalysisContext):
        def block_step(block: tuple, bi: BlockInput):
            in_cone = cone is None or any(s in cone for s in block)
            return self._lookup((bi.kind, block), in_cone, reusable,
                                outcomes, _block_key, evaluate_block, bi,
                                ctx)
        return block_step

    # ------------------------------------------------------------------
    # stateful admission interface
    # ------------------------------------------------------------------

    def _require_network(self) -> Network:
        if self._network is None:
            raise EngineError(
                "engine has no base network; construct with "
                "IncrementalEngine(analyzer, network) to use "
                "admit/release/query")
        return self._network

    def query(self, *, ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Bounds for the current network (cheap when nothing changed)."""
        return self.analyze(self._require_network(), ctx=ctx)

    def admit(self, flow: Flow, *,
              ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Add *flow* and return the new network's report.

        Transactional: if the topology rejects the flow or the
        analysis raises (e.g. the flow overloads a server), the
        engine's network is unchanged.
        """
        candidate = self._require_network().with_flow(flow)
        report = self.analyze(candidate, ctx=ctx)
        self._network = candidate
        return report

    def admit_batch(self, flows: Iterable[Flow], *,
                    ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Admit several flows in ONE invalidation pass.

        Coalescing N pending requests dirties the union cone once and
        runs a single sweep, instead of N sweeps with overlapping
        cones.  All-or-nothing: any failure leaves the network as it
        was.
        """
        candidate = self._require_network()
        for flow in flows:
            candidate = candidate.with_flow(flow)
        report = self.analyze(candidate, ctx=ctx)
        self._network = candidate
        return report

    def release(self, name: str, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Remove flow *name* and return the new network's report."""
        candidate = self._require_network().without_flow(name)
        report = self.analyze(candidate, ctx=ctx)
        self._network = candidate
        return report

    def seed_cache(self, records: Iterable[tuple[bytes, object, float]],
                   ) -> int:
        """Preload content-addressed results computed elsewhere.

        The parallel batch-admission path feeds each worker's
        per-server step results back here, so the very next engine
        query over the committed network replays them as cache hits
        instead of recomputing the whole sweep.  Records are
        ``(content key, result, original compute seconds)`` exactly as
        the engine itself stores them; already-present keys are left
        untouched (first write wins — all writers produced the value
        from the same pure function on the same inputs).  Returns the
        number of entries actually added.
        """
        added = 0
        for key, value, dt in records:
            if self._cache.get(key) is None:
                self._cache.put(key, value, dt)
                added += 1
            self._persist(key, value, dt, NULL_CONTEXT)
        return added

    def reset_cache(self) -> None:
        """Drop every cached result and sweep memo (not the stats)."""
        self._cache.clear()
        self._memo = None
