"""Component-parallel delay analysis over independent dependency cones.

The paper's per-server decomposition makes weakly-connected components
of the server graph *embarrassingly parallel*: a flow's end-to-end
bound depends only on the servers its component contains (arrival
curves propagate along flow paths, and paths never leave a component).
This module exploits that:

* :func:`partition_components` — deterministic component list (flow
  incidence = weak connectivity of the server graph);
* :func:`subnetwork` — the induced sub-:class:`~repro.network.topology.
  Network` of one component, preserving insertion order so per-server
  float summation order (and hence every IEEE-754 result bit) matches
  the full-network analysis;
* :class:`ParallelAnalysis` — an :class:`~repro.analysis.base.Analyzer`
  wrapper that farms components out to a process pool and merges the
  per-component reports through a deterministic, order-independent
  reducer.

**Determinism contract**: parallel reports are bit-identical
(``float.hex``) to the wrapped serial analyzer's — same algorithm name,
same bounds, same contribution breakdowns, same metadata — enforced by
``tests/engine/test_parallel_analysis.py``.  This holds because
each worker runs the *same pure function chain*
(:func:`repro.analysis.propagation.server_step`) on the *same inputs*
(name-sorted flow order at each server is preserved by the induced
subnetwork), under the *same explicitly-pinned curve kernel*.

Only :class:`~repro.analysis.decomposed.DecomposedAnalysis` is
parallelized.  Algorithm Integrated's default partition strategy
(:class:`~repro.core.partition.PairAlongPath` with no pinned flow)
selects the globally longest flow, so adding a flow in one component
can change the block partition — and therefore the bounds — in *other*
components; its analysis is not component-local and falls back to the
serial path (see ``docs/PARALLEL.md``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.analysis.base import Analyzer, DelayReport
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.propagation import server_step
from repro.context import NULL_CONTEXT, AnalysisContext, Deadline
from repro.curves.kernels import current_kernel
from repro.errors import AnalysisError, EngineError
from repro.network.topology import Network

__all__ = [
    "partition_components",
    "subnetwork",
    "merge_reports",
    "ParallelAnalysis",
]

ServerId = Hashable

#: One engine-cache seed record: (content key, ServerStep, compute s).
SeedRecord = tuple[bytes, object, float]


# ----------------------------------------------------------------------
# component partitioning
# ----------------------------------------------------------------------

def partition_components(network: Network,
                         ) -> list[tuple[ServerId, ...]]:
    """Weakly-connected server components that carry at least one flow.

    Servers within a component keep the network's insertion order, and
    components are ordered by their first server's insertion position —
    both deterministic, so the same network always partitions the same
    way.  Flow-less servers are excluded (both analyses skip them).
    """
    graph = network.server_graph
    comp_of: dict[ServerId, int] = {}
    for k, comp in enumerate(nx.weakly_connected_components(graph)):
        for sid in comp:
            comp_of[sid] = k
    live = {comp_of[f.path[0]] for f in network.flows.values()}
    ordered: dict[int, list[ServerId]] = {}
    for sid in network.servers:
        k = comp_of[sid]
        if k in live:
            ordered.setdefault(k, []).append(sid)
    return [tuple(sids) for sids in ordered.values()]


def subnetwork(network: Network,
               servers: Iterable[ServerId]) -> Network:
    """The induced sub-network on *servers* (insertion order kept).

    Includes every flow whose path lies inside *servers*; a flow with
    any hop outside raises :class:`~repro.errors.EngineError` (the
    caller partitioned wrongly — components always contain whole
    paths).
    """
    keep = set(servers)
    specs = [spec for sid, spec in network.servers.items() if sid in keep]
    flows = []
    for f in network.flows.values():
        inside = [sid in keep for sid in f.path]
        if all(inside):
            flows.append(f)
        elif any(inside):
            raise EngineError(
                f"flow {f.name!r} crosses the component boundary; "
                "components must contain whole paths")
    return Network(specs, flows, allow_cycles=network.allow_cycles)


# ----------------------------------------------------------------------
# worker side (runs in the pool processes)
# ----------------------------------------------------------------------

def open_worker_store(store_path: str | None):
    """A read-only store handle for a pool worker, or None.

    Workers never write (single-writer discipline, see
    ``docs/STORE.md``); a missing or unreadable store degrades to
    "no store" — the worker simply computes everything.
    """
    if store_path is None:
        return None
    from repro.errors import StoreError
    from repro.store import AnalysisStore
    try:
        return AnalysisStore(store_path, read_only=True)
    except (StoreError, OSError):
        return None


def _analyze_component(payload: tuple) -> dict:
    """Pool worker: analyze one component's subnetwork.

    Runs the same pure per-server function chain as the serial path,
    under the explicitly-pinned kernel, with a fresh worker-local
    metrics registry (merged into the parent's on return) and an
    optional deadline carved from the parent's remaining budget.
    When the parent has a persistent analysis store, the worker opens
    it **read-only**, serves per-server steps from it, and ships every
    freshly computed step back as a seed record for the parent's
    single serialized write.

    Analysis errors come back as structured markers — exception
    *objects* with keyword-only constructors don't survive the pickle
    round-trip a raising worker would force.
    """
    net, capped, kernel, budget, want_records, store_path = payload
    from repro.context.metrics import MetricsRegistry
    metrics = MetricsRegistry()
    ctx = AnalysisContext(metrics=metrics, kernel=kernel)
    if budget is not None:
        ctx = ctx.with_deadline(
            Deadline(budget, "parallel component analysis"))
    records: list[SeedRecord] = []
    store = open_worker_store(store_path)
    if want_records or store is not None:
        from repro.engine.incremental import _server_key

        def step(sid, si):
            key = _server_key(si)
            if store is not None:
                entry = store.get(key)
                if entry is not None:
                    ctx.count("store.hits")
                    return entry.value
                ctx.count("store.misses")
            t0 = time.perf_counter()
            value = server_step(si)
            records.append((key, value, time.perf_counter() - t0))
            return value

        ctx = ctx.with_interceptors(step=step)
    try:
        report = DecomposedAnalysis(capped).analyze(net, ctx=ctx)
    except AnalysisError as exc:
        return {"ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "metrics": metrics.as_dict()}
    finally:
        if store is not None:
            store.close()
    return {"ok": True, "report": report,
            "metrics": metrics.as_dict(), "records": records}


# ----------------------------------------------------------------------
# deterministic merge
# ----------------------------------------------------------------------

def merge_reports(network: Network, algorithm: str,
                  reports: Sequence[DelayReport]) -> DelayReport:
    """Fold per-component reports into one full-network report.

    Order-independent by construction: flow bounds are keyed by name
    and re-emitted in the full network's insertion order; dict-valued
    metadata (``local_delay``, ``busy_period``) is unioned (component
    key sets are disjoint); scalar metadata must agree across
    components.  The result satisfies
    :func:`repro.engine.reports_identical` against the serial report.
    """
    by_flow: dict[str, object] = {}
    for rep in reports:
        by_flow.update(rep.delays)
    delays = {}
    for name in network.flows:
        try:
            delays[name] = by_flow[name]
        except KeyError:
            raise EngineError(
                f"merge: no component report covers flow {name!r}"
            ) from None
    meta: dict = {}
    for rep in reports:
        for key, value in rep.meta.items():
            if isinstance(value, dict):
                meta.setdefault(key, {}).update(value)
            elif key in meta and meta[key] != value:
                raise EngineError(
                    f"merge: components disagree on meta {key!r}: "
                    f"{meta[key]!r} != {value!r}")
            else:
                meta[key] = value
    return DelayReport(algorithm=algorithm, delays=delays, meta=meta)


# ----------------------------------------------------------------------
# the analyzer wrapper
# ----------------------------------------------------------------------

class ParallelAnalysis(Analyzer):
    """Run a delay analysis with components fanned out to a pool.

    Parameters
    ----------
    analyzer:
        The wrapped analysis.  :class:`~repro.analysis.decomposed.
        DecomposedAnalysis` parallelizes; anything else (and any
        network the fast path cannot handle) runs serially through
        *analyzer* unchanged — this wrapper is always a safe drop-in.
    workers:
        Pool size.  ``workers <= 1`` disables the pool entirely.
    store:
        Optional persistent :class:`~repro.store.AnalysisStore`.
        Workers open it read-only and serve already-known per-server
        steps from it; fresh steps ship back and, when the parent's
        handle is writable, land in one serialized write here.

    The report's ``algorithm`` is the wrapped analyzer's name: callers
    (and the differential harness) cannot tell which path produced it.
    """

    def __init__(self, analyzer: Analyzer, workers: int = 2, *,
                 store=None) -> None:
        if isinstance(analyzer, ParallelAnalysis):
            raise EngineError("cannot nest ParallelAnalysis")
        self._analyzer = analyzer
        self._workers = int(workers)
        self._store = store
        self.name = analyzer.name
        self.serial_fallbacks = 0
        self.parallel_runs = 0

    @property
    def analyzer(self) -> Analyzer:
        """The wrapped (serial) analyzer."""
        return self._analyzer

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def store(self):
        """The attached persistent store, when any."""
        return self._store

    def _fast_path_ok(self, network: Network,
                      ctx: AnalysisContext) -> bool:
        return (self._workers > 1
                and isinstance(self._analyzer, DecomposedAnalysis)
                and network.is_feedforward
                and ctx.step_interceptor is None
                and ctx.block_interceptor is None)

    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        if not self._fast_path_ok(network, ctx):
            self.serial_fallbacks += 1
            ctx.count("parallel.serial_fallbacks")
            return self._analyzer.run(network, ctx)
        components = partition_components(network)
        if len(components) < 2:
            self.serial_fallbacks += 1
            ctx.count("parallel.serial_fallbacks")
            return self._analyzer.run(network, ctx)
        self.parallel_runs += 1
        ctx.count("parallel.runs")
        ctx.count("parallel.components", len(components))
        kernel = ctx.kernel if ctx.kernel is not None else current_kernel()
        budget = (ctx.deadline.remaining()
                  if ctx.deadline is not None else None)
        capped = self._analyzer.capped_propagation
        store_path = (str(self._store.path)
                      if self._store is not None else None)
        payloads = [(subnetwork(network, comp), capped, kernel, budget,
                     False, store_path) for comp in components]
        reports: list[DelayReport] = []
        fresh: list[SeedRecord] = []
        with ProcessPoolExecutor(max_workers=self._workers) as pool:
            for result in pool.map(_analyze_component, payloads):
                merge_worker_metrics(ctx, result.get("metrics"))
                if not result["ok"]:
                    raise AnalysisError(
                        f"parallel component analysis failed: "
                        f"{result['error']}")
                reports.append(result["report"])
                fresh.extend(result.get("records") or ())
        self._persist_records(fresh, ctx)
        ctx.checkpoint("parallel merge")
        return merge_reports(network, self._analyzer.name, reports)

    def _persist_records(self, records: Sequence[SeedRecord],
                         ctx: AnalysisContext) -> None:
        """The single serialized write of worker-computed entries."""
        if (self._store is None or self._store.read_only
                or not records):
            return
        from repro.errors import StoreError
        try:
            ctx.count("store.writes", self._store.seed(records))
        except (StoreError, OSError):
            ctx.count("store.write_errors")


def merge_worker_metrics(ctx: AnalysisContext,
                         counters: dict[str, float] | None) -> None:
    """Fold a worker's counter snapshot into the parent context."""
    if counters:
        for name, value in counters.items():
            ctx.count(name, value)
