"""Content-addressed result cache with LRU eviction.

Keys are :func:`repro.utils.hashing.stable_digest` digests over the
*exact* inputs of a per-server / per-block computation; values are the
immutable result objects (:class:`~repro.analysis.propagation.
ServerStep`, :class:`~repro.core.integrated.BlockOutcome`).  Because a
key covers every bit of every input, a hit is guaranteed to reproduce
the cold computation bit-identically — invalidation is therefore a
*performance* concern (bounding memory), never a correctness one.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

__all__ = ["CacheEntry", "ResultCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One cached result plus the wall-clock cost of computing it.

    ``compute_time`` is what a future hit saves; the engine aggregates
    it into :class:`~repro.engine.stats.EngineStats.saved_s`.
    """

    value: object
    compute_time: float


class ResultCache:
    """A bounded LRU mapping of content digests to results.

    Parameters
    ----------
    max_entries:
        Entry cap; the least recently used entry is evicted beyond it.
        ``None`` (default) means unbounded — intermediate results are
        small (a few curve arrays each), so unbounded is safe for any
        realistic admission session.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}")
        self._entries: OrderedDict[bytes, CacheEntry] = OrderedDict()
        self.max_entries = max_entries
        self.evictions = 0

    def get(self, key: bytes) -> CacheEntry | None:
        """The entry for *key* (refreshing its recency), or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: bytes, value: object,
            compute_time: float) -> None:
        """Store a result; evicts the LRU entry when over capacity."""
        self._entries[key] = CacheEntry(value, compute_time)
        self._entries.move_to_end(key)
        if (self.max_entries is not None
                and len(self._entries) > self.max_entries):
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (e.g. on an out-of-band network change)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._entries)
