"""Dependency tracking between flows, servers and downstream results.

The engine's invalidation rule comes straight from the analyses'
structure: a per-server (or per-block) result depends on

1. the server specs involved,
2. the set of flows incident to the server and their descriptors, and
3. each incident flow's *input* curve — which is the output of the
   flow's previous hop.

Changing a flow therefore dirties exactly the servers on its path
(dependency 2) plus, through dependency 3, everything reachable from
them in the server graph — burstiness propagates strictly downstream
in a feed-forward network.  :func:`affected_cone` computes that set;
everything outside it is guaranteed to receive bit-identical inputs
and can reuse its previous result without recomputation.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.network.flow import Flow
from repro.network.topology import Network

__all__ = ["DependencyGraph", "affected_cone"]

ServerId = Hashable


class DependencyGraph:
    """Server-to-flow incidence plus downstream reachability for one
    network snapshot.

    Built once per analyzed network; immutable thereafter (the network
    itself is immutable).
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        flows_by_server: dict[ServerId, set[str]] = {
            sid: set() for sid in network.servers}
        successors: dict[ServerId, set[ServerId]] = {
            sid: set() for sid in network.servers}
        for f in network.flows.values():
            for sid in f.path:
                flows_by_server[sid].add(f.name)
            for a, b in zip(f.path, f.path[1:]):
                successors[a].add(b)
        self._flows_by_server: Mapping[ServerId, frozenset[str]] = {
            sid: frozenset(names)
            for sid, names in flows_by_server.items()}
        self._successors = successors

    def flows_at(self, server_id: ServerId) -> frozenset[str]:
        """Names of the flows traversing *server_id* (empty if none)."""
        return self._flows_by_server.get(server_id, frozenset())

    def servers_of(self, flow_names: Iterable[str]) -> set[ServerId]:
        """Union of the named flows' path servers (unknown names are
        ignored — the caller may hold names from another snapshot)."""
        out: set[ServerId] = set()
        flows = self.network.flows
        for name in flow_names:
            f = flows.get(name)
            if f is not None:
                out.update(f.path)
        return out

    def downstream_closure(self,
                           servers: Iterable[ServerId]) -> set[ServerId]:
        """*servers* plus every server reachable from them.

        Multi-source BFS over the flow-induced server graph; linear in
        the size of the reached subgraph, so small cones stay cheap.
        """
        frontier = [s for s in servers if s in self._successors]
        seen: set[ServerId] = set(frontier)
        while frontier:
            nxt: list[ServerId] = []
            for s in frontier:
                for succ in self._successors[s]:
                    if succ not in seen:
                        seen.add(succ)
                        nxt.append(succ)
            frontier = nxt
        return seen


def affected_cone(old: DependencyGraph | None, new: DependencyGraph,
                  changed_flows: Iterable[Flow]) -> set[ServerId]:
    """Servers whose results may change between two network snapshots.

    Seeds are every server on a changed flow's path (in either
    snapshot); the cone closes the seeds downstream in *both* server
    graphs, because an admitted flow adds propagation edges while a
    released flow's effects linger along its former path.

    The cone is a sound over-approximation: any server outside it has
    an unchanged incident flow set and receives bit-identical input
    curves, hence produces a bit-identical result.
    """
    seeds: set[ServerId] = set()
    for f in changed_flows:
        seeds.update(f.path)
    cone = set(seeds)
    if old is not None:
        cone |= old.downstream_closure(seeds & set(old.network.servers))
    cone |= new.downstream_closure(seeds & set(new.network.servers))
    return cone
