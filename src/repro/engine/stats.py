"""Counter block for the incremental engine.

Separated from the engine so evaluation code and the CLI can render
statistics without importing the engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Operational counters of one :class:`~repro.engine.IncrementalEngine`.

    Attributes
    ----------
    queries:
        Analyses answered by the engine (incremental or fallback).
    hits:
        Block/step results served from the content-addressed cache.
    misses:
        Block/step results that had to be computed.
    fast_reuses:
        Results reused from the previous sweep without even hashing
        (the block was outside the invalidation cone).
    invalidations:
        Servers dirtied by network changes, summed over queries.
    fallbacks:
        Queries answered by a cold full analysis (unsupported analyzer
        or network shape).
    self_checks:
        Differential self-checks performed (``self_check=True``).
    saved_s:
        Estimated wall-clock seconds saved: the original compute time
        of every result served from cache or reused.
    spent_s:
        Wall-clock seconds spent computing cache misses.
    """

    queries: int = 0
    hits: int = 0
    misses: int = 0
    fast_reuses: int = 0
    invalidations: int = 0
    fallbacks: int = 0
    self_checks: int = 0
    saved_s: float = 0.0
    spent_s: float = 0.0
    _extra: dict = field(default_factory=dict, repr=False)

    @property
    def reused(self) -> int:
        """Results not recomputed (cache hits plus fast reuses)."""
        return self.hits + self.fast_reuses

    @property
    def hit_rate(self) -> float:
        """Fraction of block/step evaluations served without computing."""
        total = self.reused + self.misses
        return self.reused / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-serializable)."""
        return {
            "queries": self.queries,
            "hits": self.hits,
            "misses": self.misses,
            "fast_reuses": self.fast_reuses,
            "invalidations": self.invalidations,
            "fallbacks": self.fallbacks,
            "self_checks": self.self_checks,
            "hit_rate": self.hit_rate,
            "saved_s": self.saved_s,
            "spent_s": self.spent_s,
        }

    def render(self) -> str:
        """Aligned human-readable counter block."""
        d = self.as_dict()
        lines = ["engine stats:"]
        for key in ("queries", "hits", "misses", "fast_reuses",
                    "invalidations", "fallbacks", "self_checks"):
            lines.append(f"  {key:<14}{d[key]:>10d}")
        lines.append(f"  {'hit_rate':<14}{d['hit_rate']:>10.1%}")
        lines.append(f"  {'saved_s':<14}{d['saved_s']:>10.4f}")
        lines.append(f"  {'spent_s':<14}{d['spent_s']:>10.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = self.hits = self.misses = 0
        self.fast_reuses = self.invalidations = 0
        self.fallbacks = self.self_checks = 0
        self.saved_s = self.spent_s = 0.0
