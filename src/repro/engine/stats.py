"""Counter block for the incremental engine.

Separated from the engine so evaluation code and the CLI can render
statistics without importing the engine internals.

Since the :class:`~repro.context.AnalysisContext` refactor the stats
are a *view* over a :class:`~repro.context.MetricsRegistry` (namespace
``engine.*``) instead of private attribute bookkeeping: the engine
writes its counters into the registry, traces export them alongside
curve-kernel op counts, and this class keeps the familiar attribute
API (``stats.hits``, ``stats.hit_rate``, ``stats.render()``) on top.
"""

from __future__ import annotations

from repro.context import MetricsRegistry

__all__ = ["EngineStats"]

#: Integer counters, in render order.
_COUNTERS = ("queries", "hits", "misses", "store_hits", "store_misses",
             "fast_reuses", "invalidations", "fallbacks", "self_checks")
#: Seconds accumulators.
_SECONDS = ("saved_s", "spent_s")


def _counter(name: str, cast):
    key = "engine." + name

    def fget(self) -> float:
        return cast(self.registry.get(key))

    def fset(self, value) -> None:
        self.registry.set(key, float(value))

    return property(fget, fset, doc=f"``{key}`` registry counter.")


class EngineStats:
    """Operational counters of one :class:`~repro.engine.IncrementalEngine`.

    Attributes
    ----------
    queries:
        Analyses answered by the engine (incremental or fallback).
    hits:
        Block/step results served from the content-addressed cache.
    misses:
        Block/step results that had to be computed.
    store_hits / store_misses:
        Memory-cache misses that the persistent analysis store (when
        one is attached) did / did not answer.  A store hit still
        counts as neither ``hits`` nor ``misses``: the three tiers are
        disjoint.
    fast_reuses:
        Results reused from the previous sweep without even hashing
        (the block was outside the invalidation cone).
    invalidations:
        Servers dirtied by network changes, summed over queries.
    fallbacks:
        Queries answered by a cold full analysis (unsupported analyzer
        or network shape).
    self_checks:
        Differential self-checks performed (``self_check=True``).
    saved_s:
        Estimated wall-clock seconds saved: the original compute time
        of every result served from cache or reused.
    spent_s:
        Wall-clock seconds spent computing cache misses.

    Parameters
    ----------
    registry:
        Backing :class:`~repro.context.MetricsRegistry`; a private one
        is created when omitted.  Counters live under ``engine.*``.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    queries = _counter("queries", int)
    hits = _counter("hits", int)
    misses = _counter("misses", int)
    store_hits = _counter("store_hits", int)
    store_misses = _counter("store_misses", int)
    fast_reuses = _counter("fast_reuses", int)
    invalidations = _counter("invalidations", int)
    fallbacks = _counter("fallbacks", int)
    self_checks = _counter("self_checks", int)
    saved_s = _counter("saved_s", float)
    spent_s = _counter("spent_s", float)

    @property
    def reused(self) -> int:
        """Results not recomputed (memory + store hits, fast reuses)."""
        return self.hits + self.store_hits + self.fast_reuses

    @property
    def hit_rate(self) -> float:
        """Fraction of block/step evaluations served without computing."""
        total = self.reused + self.misses
        return self.reused / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-serializable)."""
        out: dict = {name: getattr(self, name) for name in _COUNTERS}
        out["hit_rate"] = self.hit_rate
        for name in _SECONDS:
            out[name] = getattr(self, name)
        return out

    def render(self) -> str:
        """Aligned human-readable counter block."""
        d = self.as_dict()
        lines = ["engine stats:"]
        for key in _COUNTERS:
            lines.append(f"  {key:<14}{d[key]:>10d}")
        lines.append(f"  {'hit_rate':<14}{d['hit_rate']:>10.1%}")
        lines.append(f"  {'saved_s':<14}{d['saved_s']:>10.4f}")
        lines.append(f"  {'spent_s':<14}{d['spent_s']:>10.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every counter."""
        self.registry.reset("engine.")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"EngineStats({pairs})"
