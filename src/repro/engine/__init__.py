"""Incremental analysis engine: dependency-tracked caching for
admission at scale.

Every admission test re-analyzes a network that differs from the last
one by a handful of flows.  The per-hop / per-subsystem structure of
Algorithm Decomposed and Algorithm Integrated makes most intermediate
results reusable across such requests: a server whose incident flow
set and input curves did not change produces bit-identical local
results.  :class:`IncrementalEngine` exploits that with

* a dependency graph mapping each server to the flows traversing it
  (:mod:`repro.engine.depgraph`),
* a content-addressed cache of per-server / per-block intermediate
  results (:mod:`repro.engine.cache`), and
* precise invalidation: a changed flow dirties only the servers on its
  path plus everything downstream via burstiness propagation.

Correctness contract: engine-produced :class:`repro.analysis.base.
DelayReport` objects are **bit-identical** to a cold full analysis —
enforced by the differential test harness in ``tests/engine/``.
"""

from repro.engine.cache import CacheEntry, ResultCache
from repro.engine.depgraph import DependencyGraph, affected_cone
from repro.engine.incremental import (
    IncrementalEngine,
    describe_report_difference,
    reports_identical,
)
from repro.engine.parallel import (
    ParallelAnalysis,
    merge_reports,
    partition_components,
    subnetwork,
)
from repro.engine.stats import EngineStats

__all__ = [
    "IncrementalEngine",
    "EngineStats",
    "DependencyGraph",
    "affected_cone",
    "ResultCache",
    "CacheEntry",
    "reports_identical",
    "describe_report_difference",
    "ParallelAnalysis",
    "partition_components",
    "subnetwork",
    "merge_reports",
]
