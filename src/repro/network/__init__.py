"""Network model (systems S3/S4 in DESIGN.md).

* :class:`Network`, :class:`ServerSpec`, :class:`Discipline` — feed-forward
  topologies of work-conserving servers;
* :class:`Flow` — connections with token-bucket sources and fixed paths;
* :func:`build_tandem` — the paper's Figure-3 evaluation topology.
"""

from repro.network.flow import Flow
from repro.network.topology import Discipline, Network, ServerSpec
from repro.network.generators import (
    fat_tree,
    parking_lot,
    random_feedforward,
    random_multicomponent,
)
from repro.network.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.network.tandem import (
    CONNECTION0,
    build_tandem,
    long_name,
    short_name,
    tandem_rho,
)

__all__ = [
    "Flow",
    "Network",
    "ServerSpec",
    "Discipline",
    "build_tandem",
    "tandem_rho",
    "CONNECTION0",
    "short_name",
    "long_name",
    "parking_lot",
    "fat_tree",
    "random_feedforward",
    "random_multicomponent",
    "load_network",
    "save_network",
    "network_to_dict",
    "network_from_dict",
]
