"""Network model: servers plus flows, with feed-forward validation.

A :class:`Network` is the unit every analysis consumes: a set of
:class:`ServerSpec` (the multiplexors — output ports in the paper's
switch model) and a set of :class:`repro.network.flow.Flow` whose paths
induce a directed *server graph*.  The analyses in this package are only
valid for feed-forward (acyclic) networks, exactly like the paper's
Algorithm Integrated, so construction eagerly verifies acyclicity and
stability hooks are provided.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

import networkx as nx

from repro.errors import InstabilityError, TopologyError
from repro.network.flow import Flow
from repro.utils.hashing import stable_digest
from repro.utils.validation import check_positive

__all__ = ["ServerSpec", "Network", "Discipline"]

ServerId = Hashable


class Discipline:
    """Scheduling discipline identifiers understood by the analyses."""

    FIFO = "fifo"
    STATIC_PRIORITY = "static_priority"
    GUARANTEED_RATE = "guaranteed_rate"

    ALL = (FIFO, STATIC_PRIORITY, GUARANTEED_RATE)


@dataclass(frozen=True)
class ServerSpec:
    """A work-conserving server (switch output port / multiplexor).

    Attributes
    ----------
    server_id:
        Unique, hashable identifier.
    capacity:
        Service rate in data units per second (the paper normalizes to 1).
    discipline:
        One of :class:`Discipline`; the analyses specialize on this.
    """

    server_id: ServerId
    capacity: float = 1.0
    discipline: str = Discipline.FIFO

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)
        if self.discipline not in Discipline.ALL:
            raise TopologyError(
                f"unknown discipline {self.discipline!r}; "
                f"expected one of {Discipline.ALL}")

    def content_key(self) -> bytes:
        """A stable digest of this server's identity and parameters."""
        return stable_digest("server", str(self.server_id),
                             self.capacity, self.discipline)


#: Monotonically increasing structural version counter.  Every Network
#: instance — including the derived ones produced by with_flow/
#: without_flow/replace_* — gets a fresh version at construction, so
#: version equality implies object identity and the incremental engine
#: can use it as a cheap same-network check before falling back to
#: content comparison.
_STRUCT_VERSION = itertools.count(1)


class Network:
    """A feed-forward network of servers and flows.

    Parameters
    ----------
    servers:
        Iterable of :class:`ServerSpec`.
    flows:
        Iterable of :class:`Flow`; every server named in a path must be
        declared in *servers*.
    allow_cycles:
        Permit cyclic server graphs.  The decomposition/integrated
        analyses require feed-forward routing and will refuse such
        networks (``topological_servers`` raises), but the feedback
        fixed-point analysis (:mod:`repro.analysis.feedback`) and the
        simulator handle them.

    Raises
    ------
    TopologyError
        On duplicate ids, paths through unknown servers, or — unless
        ``allow_cycles`` — cyclic server graphs.
    """

    def __init__(self, servers: Iterable[ServerSpec],
                 flows: Iterable[Flow],
                 allow_cycles: bool = False) -> None:
        self._servers: dict[ServerId, ServerSpec] = {}
        for s in servers:
            if s.server_id in self._servers:
                raise TopologyError(f"duplicate server id {s.server_id!r}")
            self._servers[s.server_id] = s

        self._flows: dict[str, Flow] = {}
        for f in flows:
            if f.name in self._flows:
                raise TopologyError(f"duplicate flow name {f.name!r}")
            for sid in f.path:
                if sid not in self._servers:
                    raise TopologyError(
                        f"flow {f.name!r} traverses unknown server {sid!r}")
            self._flows[f.name] = f

        self._graph = self._build_server_graph()
        self.allow_cycles = bool(allow_cycles)
        self.version = next(_STRUCT_VERSION)
        self._content_key: bytes | None = None
        self._is_dag = nx.is_directed_acyclic_graph(self._graph)
        if not self._is_dag and not self.allow_cycles:
            cycle = nx.find_cycle(self._graph)
            raise TopologyError(
                f"server graph has a cycle ({cycle}); pass "
                "allow_cycles=True and use the feedback analysis for "
                "non-feed-forward networks")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_server_graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self._servers)
        for f in self._flows.values():
            for a, b in zip(f.path, f.path[1:]):
                g.add_edge(a, b)
        return g

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def servers(self) -> Mapping[ServerId, ServerSpec]:
        """Read-only mapping of server id to spec."""
        return dict(self._servers)

    @property
    def flows(self) -> Mapping[str, Flow]:
        """Read-only mapping of flow name to flow."""
        return dict(self._flows)

    @property
    def server_graph(self) -> nx.DiGraph:
        """A copy of the directed server graph induced by flow paths."""
        return self._graph.copy()

    def server(self, server_id: ServerId) -> ServerSpec:
        """Look up a server spec; raises :class:`TopologyError` if absent."""
        try:
            return self._servers[server_id]
        except KeyError:
            raise TopologyError(f"unknown server {server_id!r}") from None

    def flow(self, name: str) -> Flow:
        """Look up a flow by name; raises :class:`TopologyError` if absent."""
        try:
            return self._flows[name]
        except KeyError:
            raise TopologyError(f"unknown flow {name!r}") from None

    def flows_at(self, server_id: ServerId) -> list[Flow]:
        """All flows traversing *server_id*, in deterministic name order."""
        self.server(server_id)
        return sorted(
            (f for f in self._flows.values() if f.traverses(server_id)),
            key=lambda f: f.name,
        )

    @property
    def is_feedforward(self) -> bool:
        """True when the server graph is acyclic."""
        return self._is_dag

    def content_key(self) -> bytes:
        """A stable digest of the whole network's structure.

        Covers every server spec and every flow (in sorted order, so
        construction order is irrelevant).  Two networks with equal
        content keys produce bit-identical analysis results; the
        incremental engine uses this for whole-network memoization and
        to detect out-of-band structural changes.  Computed lazily and
        cached — Network is immutable after construction.
        """
        if self._content_key is None:
            parts: list[object] = ["network", self.allow_cycles]
            for sid in sorted(self._servers, key=str):
                parts.append(self._servers[sid].content_key())
            for name in sorted(self._flows):
                parts.append(self._flows[name].content_key())
            self._content_key = stable_digest(*parts)
        return self._content_key

    def topological_servers(self) -> list[ServerId]:
        """Server ids in a (deterministic) topological order.

        Raises :class:`TopologyError` on cyclic networks — use
        :mod:`repro.analysis.feedback` there.
        """
        if not self._is_dag:
            raise TopologyError(
                "cyclic server graph has no topological order; use the "
                "feedback analysis")
        return list(nx.lexicographical_topological_sort(
            self._graph, key=lambda n: str(n)))

    def iter_flows(self) -> Iterator[Flow]:
        """Iterate flows in deterministic name order."""
        return iter(sorted(self._flows.values(), key=lambda f: f.name))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    def utilization(self, server_id: ServerId) -> float:
        """Long-term utilization rho_total / capacity of one server."""
        spec = self.server(server_id)
        total = sum(f.bucket.rho for f in self.flows_at(server_id))
        return total / spec.capacity

    def max_utilization(self) -> float:
        """The largest per-server utilization in the network."""
        if not self._servers:
            return 0.0
        return max(self.utilization(s) for s in self._servers)

    def check_stability(self) -> None:
        """Raise :class:`InstabilityError` unless every server has
        utilization strictly below 1.

        Deterministic delay bounds do not exist otherwise; every analysis
        calls this before doing any work.
        """
        for sid, spec in self._servers.items():
            rate = sum(f.bucket.rho for f in self.flows_at(sid))
            if rate >= spec.capacity:
                raise InstabilityError(
                    f"server {sid!r} overloaded: aggregate rate {rate:g} >= "
                    f"capacity {spec.capacity:g}",
                    rate=rate, capacity=spec.capacity)

    def with_flow(self, flow: Flow) -> "Network":
        """A new network with *flow* added (used by admission control)."""
        return Network(self._servers.values(),
                       list(self._flows.values()) + [flow],
                       allow_cycles=self.allow_cycles)

    def without_flow(self, name: str) -> "Network":
        """A new network with flow *name* removed."""
        self.flow(name)
        return Network(self._servers.values(),
                       [f for f in self._flows.values() if f.name != name],
                       allow_cycles=self.allow_cycles)

    def replace_flow(self, flow: Flow) -> "Network":
        """A new network with the same-named flow swapped for *flow*.

        Used by fault injection (burst inflation) and reroute-and-retest
        (path replacement); the flow must already exist.
        """
        self.flow(flow.name)
        return Network(
            self._servers.values(),
            [flow if f.name == flow.name else f
             for f in self._flows.values()],
            allow_cycles=self.allow_cycles)

    def replace_server(self, spec: ServerSpec) -> "Network":
        """A new network with the same-id server swapped for *spec*.

        Used by fault injection (capacity degradation); the server must
        already exist.
        """
        self.server(spec.server_id)
        return Network(
            [spec if s.server_id == spec.server_id else s
             for s in self._servers.values()],
            self._flows.values(),
            allow_cycles=self.allow_cycles)

    def without_server(self, server_id: ServerId) -> "Network":
        """A new network with *server_id* removed.

        Every flow whose path traverses the server is removed with it
        (its connection is severed); rerouting severed flows around the
        failure is the survivability analysis' job, not the topology's.
        """
        self.server(server_id)
        return Network(
            [s for s in self._servers.values()
             if s.server_id != server_id],
            [f for f in self._flows.values()
             if not f.traverses(server_id)],
            allow_cycles=self.allow_cycles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Network({len(self._servers)} servers, "
                f"{len(self._flows)} flows)")
