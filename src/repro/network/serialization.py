"""JSON (de)serialization of networks.

Lets topologies live in version-controlled files and be fed to the CLI
(``python -m repro analyze --network net.json``).  Server ids must be
JSON-representable scalars (strings or integers); everything else in
the model round-trips exactly.

Schema::

    {
      "allow_cycles": false,
      "servers": [
        {"id": "tor1", "capacity": 1.0, "discipline": "fifo"}
      ],
      "flows": [
        {"name": "ctl", "sigma": 0.2, "rho": 0.05, "peak": 1.0,
         "path": ["tor1"], "deadline": 5.0, "priority": 0}
      ]
    }

``peak`` and ``deadline`` may be null/omitted (meaning unbounded).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.curves.token_bucket import TokenBucket
from repro.errors import TopologyError
from repro.network.flow import Flow
from repro.network.topology import Network, ServerSpec

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
]


def _check_id(sid) -> None:
    if not isinstance(sid, (str, int)):
        raise TopologyError(
            f"server id {sid!r} is not JSON-serializable "
            "(use strings or integers)")


def network_to_dict(network: Network) -> dict:
    """Plain-dict representation of a network (JSON-ready)."""
    servers = []
    for spec in network.servers.values():
        _check_id(spec.server_id)
        servers.append({
            "id": spec.server_id,
            "capacity": spec.capacity,
            "discipline": spec.discipline,
        })
    flows = []
    for f in network.iter_flows():
        flows.append({
            "name": f.name,
            "sigma": f.bucket.sigma,
            "rho": f.bucket.rho,
            "peak": None if math.isinf(f.bucket.peak) else f.bucket.peak,
            "path": list(f.path),
            "deadline": None if math.isinf(f.deadline) else f.deadline,
            "priority": f.priority,
        })
    return {
        "allow_cycles": network.allow_cycles,
        "servers": servers,
        "flows": flows,
    }


def network_from_dict(doc: dict) -> Network:
    """Rebuild a :class:`Network` from :func:`network_to_dict` output.

    Raises :class:`TopologyError` on malformed documents (missing keys,
    wrong types) with a message naming the offending entry.
    """
    try:
        servers = [
            ServerSpec(s["id"], float(s.get("capacity", 1.0)),
                       s.get("discipline", "fifo"))
            for s in doc["servers"]
        ]
        flows = []
        for fd in doc["flows"]:
            peak = fd.get("peak")
            deadline = fd.get("deadline")
            bucket = TokenBucket(
                float(fd["sigma"]), float(fd["rho"]),
                math.inf if peak is None else float(peak))
            flows.append(Flow(
                fd["name"], bucket, fd["path"],
                deadline=math.inf if deadline is None else float(deadline),
                priority=int(fd.get("priority", 0))))
    except (KeyError, TypeError, ValueError) as exc:
        raise TopologyError(f"malformed network document: {exc}") from exc
    return Network(servers, flows,
                   allow_cycles=bool(doc.get("allow_cycles", False)))


def save_network(network: Network, path: str | Path) -> Path:
    """Write a network to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(network_to_dict(network), indent=2))
    return path


def load_network(path: str | Path) -> Network:
    """Read a network from a JSON file."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TopologyError(f"{path}: invalid JSON: {exc}") from exc
    return network_from_dict(doc)
