"""Canonical topology generators beyond the paper's tandem.

The delay-analysis literature evaluates on a handful of standard
shapes; these builders produce them as ready-to-analyze
:class:`repro.network.topology.Network` objects:

* :func:`parking_lot` — a tandem where fresh cross traffic enters at
  every hop and exits immediately after one contended hop (the
  "parking-lot" fairness topology);
* :func:`fat_tree` — a binary aggregation tree with leaf-to-root flows;
* :func:`random_feedforward` — seeded random flows over a line of
  servers with a per-server utilization budget (useful for fuzzing).

All generators guarantee stability (utilization strictly below the
requested budget at every server).
"""

from __future__ import annotations

import numpy as np

from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.topology import Network, ServerSpec
from repro.utils.validation import check_positive

__all__ = ["parking_lot", "fat_tree", "random_feedforward",
           "random_multicomponent"]


def parking_lot(n_hops: int, utilization: float, sigma: float = 1.0,
                capacity: float = 1.0) -> Network:
    """The parking-lot topology: one long flow, one fresh cross per hop.

    Each server carries exactly two flows (the long one and its local
    cross), each with rate ``utilization * capacity / 2``.
    """
    if n_hops < 1:
        raise ValueError(f"n_hops must be >= 1, got {n_hops}")
    if not (0.0 < utilization < 1.0):
        raise ValueError(f"utilization must be in (0,1), got {utilization}")
    check_positive("sigma", sigma)
    rho = utilization * capacity / 2.0
    bucket = TokenBucket(sigma, rho, peak=capacity)
    servers = [ServerSpec(k, capacity) for k in range(1, n_hops + 1)]
    flows = [Flow("long", bucket, tuple(range(1, n_hops + 1)))]
    flows += [Flow(f"cross_{k}", bucket, (k,))
              for k in range(1, n_hops + 1)]
    return Network(servers, flows)


def fat_tree(depth: int, utilization: float, sigma: float = 1.0,
             capacity: float = 1.0) -> Network:
    """A binary aggregation tree: leaves at level 0, root at ``depth``.

    One flow per leaf runs to the root.  Interior servers aggregate
    ``2^level`` flows; rates are sized so the *root* runs at the
    requested utilization (upstream servers run proportionally lighter).
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if not (0.0 < utilization < 1.0):
        raise ValueError(f"utilization must be in (0,1), got {utilization}")
    n_leaves = 2 ** depth
    rho = utilization * capacity / n_leaves
    bucket = TokenBucket(sigma, rho, peak=capacity)

    # node ids: (level, index); level 0 nodes are the leaf access ports
    servers = [ServerSpec((lvl, i), capacity)
               for lvl in range(depth + 1)
               for i in range(2 ** (depth - lvl))]
    flows = []
    for leaf in range(n_leaves):
        path = []
        idx = leaf
        for lvl in range(depth + 1):
            path.append((lvl, idx))
            idx //= 2
        flows.append(Flow(f"leaf_{leaf}", bucket, tuple(path)))
    return Network(servers, flows)


def random_feedforward(seed: int, n_servers: int = 5,
                       n_flows: int = 8, max_utilization: float = 0.85,
                       sigma_range: tuple[float, float] = (0.2, 3.0),
                       capacity: float = 1.0) -> Network:
    """A seeded random feed-forward network on a line of servers.

    Flows occupy random contiguous server intervals with random bursts;
    rates are drawn and then clipped so that no server exceeds
    ``max_utilization``.
    """
    if n_servers < 1 or n_flows < 1:
        raise ValueError("need at least one server and one flow")
    if not (0.0 < max_utilization < 1.0):
        raise ValueError(
            f"max_utilization must be in (0,1), got {max_utilization}")
    rng = np.random.default_rng(seed)
    loads = np.zeros(n_servers)
    flows = []
    for i in range(n_flows):
        a = int(rng.integers(0, n_servers))
        b = int(rng.integers(a, n_servers))
        sigma = float(rng.uniform(*sigma_range))
        rho = float(rng.uniform(0.01, max_utilization / 2)) * capacity
        headroom = max_utilization * capacity - loads[a:b + 1].max()
        rho = min(rho, max(headroom / 2, 1e-3 * capacity))
        loads[a:b + 1] += rho
        flows.append(Flow(f"f{i}", TokenBucket(sigma, rho, peak=capacity),
                          tuple(range(a, b + 1))))
    servers = [ServerSpec(k, capacity) for k in range(n_servers)]
    return Network(servers, flows)


def random_multicomponent(seed: int, n_components: int = 4,
                          servers_per_component: int = 4,
                          flows_per_component: int = 8,
                          max_utilization: float = 0.85,
                          sigma_range: tuple[float, float] = (0.2, 3.0),
                          capacity: float = 1.0) -> Network:
    """Disjoint random feed-forward components in one network.

    Component ``c`` occupies the integer servers
    ``[c * servers_per_component, (c + 1) * servers_per_component)``
    with flows named ``c{c}_f{i}``; no flow crosses a component
    boundary, so the network's server graph has exactly
    ``n_components`` weakly connected components carrying flows.  This
    is the natural stress shape for
    :class:`repro.engine.ParallelAnalysis` and parallel batch
    admission: the dependency cones are the components.

    Integer server ids keep the topology journal-serializable
    (:func:`repro.network.serialization.network_to_dict` accepts
    ``str | int`` ids only).
    """
    if n_components < 1:
        raise ValueError(f"n_components must be >= 1, got {n_components}")
    servers: list[ServerSpec] = []
    flows: list[Flow] = []
    for c in range(n_components):
        comp = random_feedforward(
            seed + 7919 * c, n_servers=servers_per_component,
            n_flows=flows_per_component,
            max_utilization=max_utilization, sigma_range=sigma_range,
            capacity=capacity)
        base = c * servers_per_component
        servers += [ServerSpec(base + int(s.server_id), s.capacity,
                               s.discipline)
                    for s in comp.servers.values()]
        flows += [Flow(f"c{c}_{f.name}", f.bucket,
                       tuple(base + int(k) for k in f.path),
                       f.deadline)
                  for f in comp.flows.values()]
    return Network(servers, flows)
