"""The paper's evaluation topology (Figure 3): a tandem of 3x3 switches.

``n`` switches are chained; the contended resources are the *middle
output ports* (one FIFO multiplexor per switch), modeled here as servers
``1 .. n`` of unit capacity.  There are ``2n + 1`` connections:

* **Connection 0** — the longest connection; traverses every server
  ``1 .. n``.
* **short_k** (one per switch ``k``) — enters at switch ``k``'s upper
  input, shares server ``k`` with Connection 0, exits at switch ``k+1``
  (its exit port is uncontended and is not modeled).
* **long_k** (one per switch ``k``) — enters at switch ``k``'s lower
  input and shares servers ``k`` and ``k+1`` with Connection 0 before
  exiting at switch ``k+2``; at the last switch the second contended hop
  is truncated (``long_n`` shares only server ``n``).

With this routing, every interior middle port serves **four**
connections (Connection 0, short_k, long_k, long_{k-1}) and the first
serves three — exactly the paper's description ("the middle output port
of each switch, except the first one, carries four connections").

Every source is token-bucket constrained with burst ``sigma`` (paper:
1), rate ``rho = U / 4`` (so interior servers run at utilization ``U``)
and peak-limited by the unit access line.
"""

from __future__ import annotations

import math

from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.topology import Discipline, Network, ServerSpec
from repro.utils.validation import check_positive

__all__ = [
    "build_tandem",
    "tandem_rho",
    "CONNECTION0",
    "short_name",
    "long_name",
]

#: Name of the paper's Connection 0 in generated networks.
CONNECTION0 = "conn0"


def short_name(k: int) -> str:
    """Name of the 1-contended-hop cross connection entering at switch k."""
    return f"short_{k}"


def long_name(k: int) -> str:
    """Name of the 2-contended-hop cross connection entering at switch k."""
    return f"long_{k}"


def tandem_rho(utilization: float, flows_per_port: int = 4) -> float:
    """Per-connection token rate giving *utilization* at interior ports.

    The paper loads each (interior) middle output port with
    ``flows_per_port`` = 4 connections of identical rate, so
    ``rho = U / 4``.
    """
    check_positive("utilization", utilization)
    if utilization >= 1.0:
        raise ValueError(
            f"utilization must be < 1 for stable servers, got {utilization}")
    return utilization / flows_per_port


def build_tandem(n_hops: int, utilization: float, sigma: float = 1.0,
                 capacity: float = 1.0,
                 discipline: str = Discipline.FIFO,
                 peak_limited: bool = True) -> Network:
    """Build the Figure-3 tandem network.

    Parameters
    ----------
    n_hops:
        Number of switches ``n`` (Connection 0 traverses ``n`` servers).
    utilization:
        Interior-port load ``U`` in ``(0, 1)``; per-source rate is
        ``U * capacity / 4``.
    sigma:
        Source token-bucket depth (paper uses 1).
    capacity:
        Link/server rate (paper normalizes to 1).
    discipline:
        Scheduling discipline for every server (default FIFO, as in the
        paper's evaluation).
    peak_limited:
        When True (default) sources are additionally limited by the
        access line rate, i.e. ``b(I) = min(capacity * I, sigma + rho*I)``
        — the paper's eq. (4).

    Returns
    -------
    Network
        ``n`` unit servers named ``1 .. n`` and ``2n + 1`` flows.
    """
    if n_hops < 1:
        raise ValueError(f"n_hops must be >= 1, got {n_hops}")
    check_positive("sigma", sigma)
    check_positive("capacity", capacity)
    rho = tandem_rho(utilization) * capacity
    peak = capacity if peak_limited else math.inf
    bucket = TokenBucket(sigma, rho, peak)

    servers = [ServerSpec(k, capacity, discipline)
               for k in range(1, n_hops + 1)]

    flows = [Flow(CONNECTION0, bucket, tuple(range(1, n_hops + 1)))]
    for k in range(1, n_hops + 1):
        flows.append(Flow(short_name(k), bucket, (k,)))
        long_path = (k, k + 1) if k < n_hops else (k,)
        flows.append(Flow(long_name(k), bucket, long_path))

    return Network(servers, flows)
