"""Flows (the paper's *connections*): a traffic descriptor plus a path.

A flow enters the network at the first server of its path, traverses the
listed servers in order, and leaves after the last.  The token bucket
describes the flow *at the source*; per-hop constraint curves are derived
by the analyses and never stored on the flow itself, keeping :class:`Flow`
immutable and safely shareable between analyses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.curves.token_bucket import TokenBucket
from repro.errors import FlowError
from repro.utils.hashing import stable_digest

__all__ = ["Flow"]

ServerId = Hashable


@dataclass(frozen=True)
class Flow:
    """A unidirectional connection with deterministic QoS requirements.

    Attributes
    ----------
    name:
        Unique identifier within a :class:`repro.network.topology.Network`.
    bucket:
        Source :class:`TokenBucket` (sigma, rho, optional peak).
    path:
        Ordered servers the flow traverses; must be non-empty and free of
        repeats (feed-forward networks have no looping flows).
    deadline:
        Optional end-to-end deadline used by admission control;
        ``inf`` means best-effort (no deadline check).
    priority:
        Priority level for static-priority servers (lower value = higher
        priority); ignored by FIFO servers.
    """

    name: str
    bucket: TokenBucket
    path: tuple[ServerId, ...]
    deadline: float = math.inf
    priority: int = 0

    def __init__(self, name: str, bucket: TokenBucket,
                 path: Sequence[ServerId], deadline: float = math.inf,
                 priority: int = 0) -> None:
        if not name:
            raise FlowError("flow name must be non-empty")
        if not isinstance(bucket, TokenBucket):
            raise FlowError(
                f"bucket must be a TokenBucket, got {type(bucket).__name__}")
        p = tuple(path)
        if not p:
            raise FlowError(f"flow {name!r}: path must be non-empty")
        if len(set(p)) != len(p):
            raise FlowError(f"flow {name!r}: path revisits a server "
                            "(not feed-forward)")
        if not (deadline > 0):
            raise FlowError(f"flow {name!r}: deadline must be > 0")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "bucket", bucket)
        object.__setattr__(self, "path", p)
        object.__setattr__(self, "deadline", float(deadline))
        object.__setattr__(self, "priority", int(priority))

    # ------------------------------------------------------------------

    @property
    def n_hops(self) -> int:
        """Number of servers traversed."""
        return len(self.path)

    def traverses(self, server: ServerId) -> bool:
        """True when *server* is on this flow's path."""
        return server in self.path

    def hop_index(self, server: ServerId) -> int:
        """Position of *server* on the path (0-based).

        Raises :class:`FlowError` when the flow does not traverse it.
        """
        try:
            return self.path.index(server)
        except ValueError:
            raise FlowError(
                f"flow {self.name!r} does not traverse server {server!r}"
            ) from None

    def next_hop(self, server: ServerId) -> ServerId | None:
        """The server after *server* on the path, or None at the exit."""
        i = self.hop_index(server)
        return self.path[i + 1] if i + 1 < len(self.path) else None

    def content_key(self) -> bytes:
        """A stable digest of everything that defines this flow.

        Two flows share a content key iff name, traffic descriptor,
        path, deadline and priority are all bit-identical; the
        incremental engine (:mod:`repro.engine`) uses this to detect
        which flows actually changed between two networks.
        """
        return stable_digest(
            "flow", self.name, self.bucket.sigma, self.bucket.rho,
            self.bucket.peak, tuple(str(s) for s in self.path),
            self.deadline, self.priority)

    def with_deadline(self, deadline: float) -> "Flow":
        """A copy of this flow with a different deadline."""
        return Flow(self.name, self.bucket, self.path, deadline,
                    self.priority)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Flow({self.name}: sigma={self.bucket.sigma:g}, "
                f"rho={self.bucket.rho:g}, path={list(self.path)})")
