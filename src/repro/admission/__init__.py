"""Admission control built on pluggable delay analyses (system S12)."""

from repro.admission.controller import AdmissionController
from repro.admission.requests import AdmissionDecision, ConnectionRequest

__all__ = [
    "AdmissionController",
    "ConnectionRequest",
    "AdmissionDecision",
]
