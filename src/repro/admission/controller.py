"""Admission control for bounded-delay services (paper §1 motivation).

The number of deadline-guaranteed connections a network can carry is
determined by the *tightness* of the delay analysis the admission test
uses: a looser analysis rejects connections the network could in fact
serve.  :class:`AdmissionController` makes the analysis pluggable so the
evaluation can quantify exactly that effect (more connections admitted
under Algorithm Integrated than under Algorithm Decomposed for the same
network — the operational payoff of the paper).

The controller is hardened for online operation:

* **Degraded mode** — an optional fallback analyzer chain (typically
  integrated → decomposed) answers requests when the primary analysis
  raises :class:`~repro.errors.AnalysisError` or exceeds a wall-clock
  budget; admission keeps working, just with looser bounds.
* **Fail closed** — when every analyzer in the chain fails, the request
  is rejected rather than admitted blind.
* **Transactional admit** — controller state mutates only after a
  complete, positive decision; an analyzer raising mid-test leaves the
  network and admitted set untouched.
* **Incremental mode** — ``incremental=True`` wraps the primary
  analyzer in an :class:`~repro.engine.IncrementalEngine`, so
  consecutive admission tests reuse every per-server / per-block result
  the new request does not touch.  Decisions are bit-identical to cold
  analysis; the cold analyzer stays in the fallback chain, so an engine
  failure degrades instead of rejecting.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.admission.requests import AdmissionDecision, ConnectionRequest
from repro.analysis.base import Analyzer, DelayReport
from repro.context import NULL_CONTEXT, AnalysisContext, Deadline
from repro.errors import (
    AdmissionError,
    AnalysisError,
    InstabilityError,
    TopologyError,
)
from repro.engine import EngineStats, IncrementalEngine
from repro.network.flow import Flow
from repro.network.topology import Network
from repro.resilience.faults import FaultScenario
from repro.resilience.survivability import (
    SurvivabilityReport,
    survivability,
)

__all__ = ["AdmissionController"]


class AdmissionController:
    """Online admission control driven by a delay analyzer.

    Parameters
    ----------
    network:
        Initial network (servers and already-established flows).
    analyzer:
        The end-to-end delay analysis used for admission tests.
    fallbacks:
        Analyzers tried, in order, when the one before them raises
        :class:`~repro.errors.AnalysisError` (including a blown
        budget).  Typically cheaper/looser analyses.
    analysis_budget:
        Optional wall-clock budget in seconds applied to *each*
        analyzer attempt; a blown budget triggers the next fallback.
        Enforced cooperatively: every attempt runs under a fresh
        :class:`~repro.context.Deadline` checked at server-step / block
        boundaries, so enforcement works on any thread with no signal
        handlers and no leaked workers.
    signal_backstop:
        Additionally arm ``SIGALRM`` for each budgeted attempt (no-op
        off the POSIX main thread).  Opt-in guard for analyzers that
        never checkpoint — e.g. third-party :class:`Analyzer`
        subclasses predating the context layer.
    context:
        Default :class:`~repro.context.AnalysisContext` for every
        admission test (tracing, metrics); per-call ``ctx=`` arguments
        override it.  Budget deadlines are swapped into derived copies,
        never into this object.
    incremental:
        Wrap *analyzer* in an :class:`~repro.engine.IncrementalEngine`
        so consecutive admission tests reuse unaffected intermediate
        results.  The unwrapped analyzer is kept right behind the
        engine in the fallback chain; transactional semantics are
        unchanged (the engine is stateless here — the controller still
        owns the network).
    store:
        Optional persistent :class:`~repro.store.AnalysisStore`.  With
        ``incremental=True`` it becomes the engine's second cache tier
        (results survive restarts); with or without an engine, batch
        admission workers probe it read-only and ship fresh entries
        back for one serialized parent write.  When *analyzer* is
        already an engine carrying its own store, that store wins.
    analyzer_gate:
        Optional ``gate(analyzer) -> bool`` consulted before every
        analyzer attempt; a False verdict skips the analyzer (recorded
        as a chain failure) without running it.  The admission service
        wires circuit breakers and load-shedding floors through this
        hook.
    analyzer_listener:
        Optional ``listener(analyzer, exc_or_None)`` called after every
        *attempted* analyzer (skipped ones excluded) with the
        :class:`~repro.errors.AnalysisError` it raised, ``None`` on
        success, or — for exceptions that escape the chain entirely
        (analyzer bugs, ``KeyboardInterrupt``) — the escaping exception
        just before it propagates.  This is the feedback edge circuit
        breakers learn from; without the escape notification a breaker
        probe slot would leak on any non-analysis exception.
    """

    def __init__(self, network: Network, analyzer: Analyzer, *,
                 fallbacks: Sequence[Analyzer] = (),
                 analysis_budget: float | None = None,
                 signal_backstop: bool = False,
                 context: AnalysisContext | None = None,
                 incremental: bool = False,
                 analyzer_gate: Callable[[Analyzer], bool] | None = None,
                 analyzer_listener: Callable[
                     [Analyzer, BaseException | None], None] | None = None,
                 store=None) -> None:
        if analysis_budget is not None and not analysis_budget > 0:
            raise AdmissionError(
                f"analysis_budget must be > 0, got {analysis_budget}")
        self._network = network
        self._engine: IncrementalEngine | None = None
        self._store = store
        if incremental:
            if isinstance(analyzer, IncrementalEngine):
                self._engine = analyzer
                analyzer = self._engine.analyzer
            else:
                self._engine = IncrementalEngine(analyzer, store=store)
            self._analyzers = (self._engine, analyzer, *fallbacks)
        else:
            self._analyzers = (analyzer, *fallbacks)
        self._budget = analysis_budget
        self._signal_backstop = bool(signal_backstop)
        self._context = context if context is not None else NULL_CONTEXT
        self._gate = analyzer_gate
        self._listener = analyzer_listener
        self._admitted: list[str] = []

    @classmethod
    def from_state(cls, network: Network, admitted: Iterable[str],
                   analyzer: Analyzer, **kwargs) -> "AdmissionController":
        """Rebuild a controller from recovered state.

        *network* must already contain every flow named in *admitted*
        (crash recovery replays the journal into the network first);
        unknown names raise :class:`~repro.errors.AdmissionError`.
        """
        controller = cls(network, analyzer, **kwargs)
        names = list(admitted)
        for name in names:
            try:
                network.flow(name)
            except TopologyError:
                raise AdmissionError(
                    f"recovered admitted set names flow {name!r} which "
                    "is not in the recovered network", flow=name) from None
        if len(set(names)) != len(names):
            raise AdmissionError(
                "recovered admitted set contains duplicate names")
        controller._admitted = names
        return controller

    # ------------------------------------------------------------------

    @property
    def network(self) -> Network:
        """The current network including every admitted connection."""
        return self._network

    @property
    def analyzer(self) -> Analyzer:
        """The primary analyzer (head of the fallback chain)."""
        return self._analyzers[0]

    @property
    def chain(self) -> tuple[Analyzer, ...]:
        """Every analyzer in the chain, in attempt order."""
        return self._analyzers

    @property
    def admitted(self) -> tuple[str, ...]:
        """Names of connections admitted through this controller."""
        return tuple(self._admitted)

    @property
    def engine(self) -> IncrementalEngine | None:
        """The incremental engine, when ``incremental=True``."""
        return self._engine

    @property
    def engine_stats(self) -> EngineStats | None:
        """Engine counters (hits/misses/saved time), or None."""
        return self._engine.stats if self._engine is not None else None

    @property
    def store(self):
        """The persistent analysis store in effect, when any.

        The engine's store when an engine carries one (it may predate
        this controller), else the ``store=`` this controller was
        constructed with.
        """
        if self._engine is not None and self._engine.store is not None:
            return self._engine.store
        return self._store

    @property
    def context(self) -> AnalysisContext:
        """Default execution context for admission tests."""
        return self._context

    # ------------------------------------------------------------------

    @staticmethod
    def _flow_from_request(request: ConnectionRequest) -> Flow:
        """The flow a request would establish (single source of truth)."""
        return Flow(request.name, request.bucket, request.path,
                    deadline=request.deadline, priority=request.priority)

    def _attempt(self, analyzer: Analyzer, candidate: Network,
                 ctx: AnalysisContext) -> DelayReport:
        """One analyzer attempt under the configured budget.

        A fresh cooperative :class:`~repro.context.Deadline` per
        attempt (fallbacks get a full budget each); the optional
        ``SIGALRM`` backstop covers analyzers that never checkpoint.
        """
        if self._budget is None:
            return analyzer.run(candidate, ctx)
        deadline = Deadline(self._budget,
                            f"{analyzer.name} admission test")
        attempt_ctx = ctx.with_deadline(deadline)
        if self._signal_backstop:
            with deadline.signal_backstop():
                return analyzer.run(candidate, attempt_ctx)
        return analyzer.run(candidate, attempt_ctx)

    def _analyze(self, candidate: Network,
                 ctx: AnalysisContext) -> tuple[DelayReport, str]:
        """Run the analyzer chain; return (report, analyzer name).

        Raises :class:`~repro.errors.AnalysisError` only when every
        analyzer in the chain failed.
        """
        failures: list[str] = []
        for analyzer in self._analyzers:
            if self._gate is not None and not self._gate(analyzer):
                ctx.count("admission.analyzer_skipped")
                failures.append(f"{analyzer.name}: skipped (gated off)")
                continue
            try:
                with ctx.span("admission_test", analyzer=analyzer.name):
                    report = self._attempt(analyzer, candidate, ctx)
            except AnalysisError as exc:
                ctx.count("admission.analyzer_failures")
                failures.append(f"{analyzer.name}: {exc}")
                if self._listener is not None:
                    self._listener(analyzer, exc)
            except BaseException as exc:
                # Anything else (analyzer bug, KeyboardInterrupt)
                # aborts the chain, but the listener must still hear
                # the attempt ended or a breaker's half-open probe
                # slot leaks and the rung stays gated off forever.
                if self._listener is not None:
                    self._listener(analyzer, exc)
                raise
            else:
                if self._listener is not None:
                    self._listener(analyzer, None)
                return report, analyzer.name
        raise AnalysisError(
            "every analyzer in the admission chain failed ("
            + "; ".join(failures) + ")")

    def test(self, request: ConnectionRequest, *,
             ctx: AnalysisContext | None = None) -> AdmissionDecision:
        """Evaluate a request without committing it.

        The connection is admitted iff, with it added, every flow in the
        network (existing and new) still meets its deadline according to
        the configured analyzer (or the first fallback that answers).
        When every analyzer fails, the request is rejected (fail
        closed) with the accumulated failure reasons.

        *ctx* overrides the controller's default context for this test.
        """
        if ctx is None:
            ctx = self._context
        with ctx.span("admission_request", request=request.name):
            decision = self._test(request, ctx)
            ctx.annotate(admitted=decision.admitted,
                         reason=decision.reason)
        ctx.count("admission.requests")
        ctx.count("admission.admitted" if decision.admitted
                  else "admission.rejected")
        return decision

    def _test(self, request: ConnectionRequest,
              ctx: AnalysisContext) -> AdmissionDecision:
        flow = self._flow_from_request(request)
        try:
            candidate = self._network.with_flow(flow)
        except TopologyError as exc:
            return AdmissionDecision(False, f"topology: {exc}")
        try:
            candidate.check_stability()
        except InstabilityError as exc:
            return AdmissionDecision(False, f"overload: {exc}")

        try:
            report, used = self._analyze(candidate, ctx)
        except AnalysisError as exc:
            return AdmissionDecision(False, f"analysis failed: {exc}")

        new_bound = report.delay_of(request.name)
        for f in candidate.flows.values():
            bound = report.delay_of(f.name)
            if bound > f.deadline:
                who = ("requested connection" if f.name == request.name
                       else f"existing connection {f.name!r}")
                return AdmissionDecision(
                    False,
                    f"deadline violation: {who} bound {bound:.4g} > "
                    f"deadline {f.deadline:.4g}",
                    new_flow_bound=new_bound, analyzer=used)
        return AdmissionDecision(True, "all deadlines met",
                                 new_flow_bound=new_bound, analyzer=used,
                                 candidate_network=candidate)

    def admit(self, request: ConnectionRequest, *,
              ctx: AnalysisContext | None = None) -> AdmissionDecision:
        """Test a request and, on success, add the connection.

        The commit is transactional: state changes only after a
        complete, positive decision, and the network committed is the
        very candidate the decision analyzed.  An analyzer raising
        mid-test (any exception the chain does not absorb) propagates
        with the controller state unchanged.
        """
        decision = self.test(request, ctx=ctx)
        if decision.admitted:
            self.commit(request, decision)
        return decision

    def admit_batch(self, requests: Iterable[ConnectionRequest], *,
                    workers: int = 1,
                    ctx: AnalysisContext | None = None,
                    ) -> list[AdmissionDecision]:
        """Admit a batch of requests; returns one decision per request.

        Semantically identical to calling :meth:`admit` on each request
        in order — same decisions, same reason strings, same
        bit-identical bounds, same commit order.  With ``workers > 1``
        and a decomposed-family primary analyzer, independent component
        groups of the batch are evaluated concurrently on a process
        pool (:mod:`repro.admission.batch`); whenever the parallel
        planner cannot guarantee serial equivalence it falls back to
        the serial loop, so the flag is always safe.
        """
        requests = list(requests)
        if ctx is None:
            ctx = self._context
        planned = None
        if workers > 1 and len(requests) > 1:
            from repro.admission.batch import plan_batch
            planned = plan_batch(self, requests, workers=workers, ctx=ctx)
        if planned is None:
            return [self.admit(r, ctx=ctx) for r in requests]
        decisions: list[AdmissionDecision] = []
        for request, (kind, decision) in zip(requests, planned):
            if kind == "serial":
                decision = self.admit(request, ctx=ctx)
            else:
                ctx.count("admission.requests")
                ctx.count("admission.admitted" if decision.admitted
                          else "admission.rejected")
                if decision.admitted:
                    self.commit(request, decision)
            decisions.append(decision)
        return decisions

    def commit(self, request: ConnectionRequest,
               decision: AdmissionDecision) -> None:
        """Apply a positive decision produced by :meth:`test`.

        Split out of :meth:`admit` so write-ahead services can persist
        the decision durably *between* the test and the state mutation;
        committing a rejected decision raises
        :class:`~repro.errors.AdmissionError`.
        """
        if not decision.admitted:
            raise AdmissionError(
                f"cannot commit rejected decision for {request.name!r}: "
                f"{decision.reason}", flow=request.name)
        if request.name in self._admitted:
            raise AdmissionError(
                f"connection {request.name!r} is already admitted",
                flow=request.name)
        candidate = decision.candidate_network
        if candidate is None:  # decision built by hand: recompute
            candidate = self._network.with_flow(
                self._flow_from_request(request))
        self._network = candidate
        self._admitted.append(request.name)

    def release(self, name: str) -> None:
        """Tear down a previously admitted connection.

        Raises a typed :class:`~repro.errors.AdmissionError` carrying
        the unknown ``flow`` name when *name* was never admitted (or
        was already released) — never a bare :class:`KeyError` —
        so callers like journal replay can treat a double-release
        structurally (idempotent skip) instead of crashing.
        """
        if name not in self._admitted:
            raise AdmissionError(
                f"connection {name!r} was not admitted by this controller",
                flow=name)
        self._network = self._network.without_flow(name)
        self._admitted.remove(name)

    def admissible_count(self, make_request, max_tries: int = 1000, *,
                         ctx: AnalysisContext | None = None) -> int:
        """Admit identical connections until one is rejected.

        Parameters
        ----------
        make_request:
            Callable ``index -> ConnectionRequest`` generating the k-th
            candidate.
        max_tries:
            Safety bound on the loop.
        ctx:
            Context override applied to every admission test.

        Returns
        -------
        int
            Number of connections admitted before the first rejection.
        """
        count = 0
        for k in range(max_tries):
            req = make_request(k)
            if not math.isfinite(req.deadline):
                raise AdmissionError("requests need finite deadlines")
            if not self.admit(req, ctx=ctx).admitted:
                break
            count += 1
        return count

    # ------------------------------------------------------------------

    def survivability_report(
            self, scenarios: Iterable[FaultScenario], *,
            analyzer: Analyzer | None = None,
            reroute: bool = True,
            ctx: AnalysisContext | None = None) -> SurvivabilityReport:
        """Which admitted guarantees survive the given fault scenarios?

        Runs :func:`repro.resilience.survivability` over the current
        network (established plus admitted connections) with the
        controller's primary analyzer unless *analyzer* overrides it.
        """
        return survivability(self._network, scenarios,
                             analyzer or self.analyzer, reroute=reroute,
                             ctx=ctx if ctx is not None else self._context)
