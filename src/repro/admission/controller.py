"""Admission control for bounded-delay services (paper §1 motivation).

The number of deadline-guaranteed connections a network can carry is
determined by the *tightness* of the delay analysis the admission test
uses: a looser analysis rejects connections the network could in fact
serve.  :class:`AdmissionController` makes the analysis pluggable so the
evaluation can quantify exactly that effect (more connections admitted
under Algorithm Integrated than under Algorithm Decomposed for the same
network — the operational payoff of the paper).
"""

from __future__ import annotations

import math

from repro.admission.requests import AdmissionDecision, ConnectionRequest
from repro.analysis.base import Analyzer
from repro.errors import AdmissionError, InstabilityError, TopologyError
from repro.network.flow import Flow
from repro.network.topology import Network

__all__ = ["AdmissionController"]


class AdmissionController:
    """Online admission control driven by a delay analyzer.

    Parameters
    ----------
    network:
        Initial network (servers and already-established flows).
    analyzer:
        The end-to-end delay analysis used for admission tests.
    """

    def __init__(self, network: Network, analyzer: Analyzer) -> None:
        self._network = network
        self._analyzer = analyzer
        self._admitted: list[str] = []

    # ------------------------------------------------------------------

    @property
    def network(self) -> Network:
        """The current network including every admitted connection."""
        return self._network

    @property
    def admitted(self) -> tuple[str, ...]:
        """Names of connections admitted through this controller."""
        return tuple(self._admitted)

    # ------------------------------------------------------------------

    def test(self, request: ConnectionRequest) -> AdmissionDecision:
        """Evaluate a request without committing it.

        The connection is admitted iff, with it added, every flow in the
        network (existing and new) still meets its deadline according to
        the configured analyzer.
        """
        flow = Flow(request.name, request.bucket, request.path,
                    deadline=request.deadline, priority=request.priority)
        try:
            candidate = self._network.with_flow(flow)
        except TopologyError as exc:
            return AdmissionDecision(False, f"topology: {exc}")
        try:
            candidate.check_stability()
        except InstabilityError as exc:
            return AdmissionDecision(False, f"overload: {exc}")

        report = self._analyzer.analyze(candidate)
        new_bound = report.delay_of(request.name)
        for f in candidate.flows.values():
            bound = report.delay_of(f.name)
            if bound > f.deadline:
                who = ("requested connection" if f.name == request.name
                       else f"existing connection {f.name!r}")
                return AdmissionDecision(
                    False,
                    f"deadline violation: {who} bound {bound:.4g} > "
                    f"deadline {f.deadline:.4g}",
                    new_flow_bound=new_bound)
        return AdmissionDecision(True, "all deadlines met",
                                 new_flow_bound=new_bound)

    def admit(self, request: ConnectionRequest) -> AdmissionDecision:
        """Test a request and, on success, add the connection."""
        decision = self.test(request)
        if decision.admitted:
            flow = Flow(request.name, request.bucket, request.path,
                        deadline=request.deadline,
                        priority=request.priority)
            self._network = self._network.with_flow(flow)
            self._admitted.append(request.name)
        return decision

    def release(self, name: str) -> None:
        """Tear down a previously admitted connection."""
        if name not in self._admitted:
            raise AdmissionError(
                f"connection {name!r} was not admitted by this controller")
        self._network = self._network.without_flow(name)
        self._admitted.remove(name)

    def admissible_count(self, make_request, max_tries: int = 1000) -> int:
        """Admit identical connections until one is rejected.

        Parameters
        ----------
        make_request:
            Callable ``index -> ConnectionRequest`` generating the k-th
            candidate.
        max_tries:
            Safety bound on the loop.

        Returns
        -------
        int
            Number of connections admitted before the first rejection.
        """
        count = 0
        for k in range(max_tries):
            req = make_request(k)
            if not math.isfinite(req.deadline):
                raise AdmissionError("requests need finite deadlines")
            if not self.admit(req).admitted:
                break
            count += 1
        return count
