"""Connection requests and admission decisions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.curves.token_bucket import TokenBucket
from repro.errors import AdmissionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing
    from repro.network.topology import Network

__all__ = ["ConnectionRequest", "AdmissionDecision"]


@dataclass(frozen=True)
class ConnectionRequest:
    """A request to establish a bounded-delay connection.

    Attributes
    ----------
    name:
        Requested flow name (must be new in the network).
    bucket:
        Source traffic descriptor the connection will be policed to.
    path:
        Servers the connection will traverse.
    deadline:
        Required end-to-end delay bound.
    priority:
        Priority for static-priority servers.
    """

    name: str
    bucket: TokenBucket
    path: tuple[Hashable, ...]
    deadline: float
    priority: int = 0

    def __init__(self, name: str, bucket: TokenBucket,
                 path: Sequence[Hashable], deadline: float,
                 priority: int = 0) -> None:
        if not name:
            raise AdmissionError("request name must be non-empty")
        if not (deadline > 0 and math.isfinite(deadline)):
            raise AdmissionError(
                f"deadline must be finite and > 0, got {deadline}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "bucket", bucket)
        object.__setattr__(self, "path", tuple(path))
        object.__setattr__(self, "deadline", float(deadline))
        object.__setattr__(self, "priority", int(priority))


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission test.

    Attributes
    ----------
    admitted:
        Whether the connection was accepted.
    reason:
        Human-readable explanation (which deadline failed, overload, …).
    new_flow_bound:
        The analyzed end-to-end bound of the requested connection
        (``inf`` when the test aborted before producing one).
    analyzer:
        Name of the analyzer that produced the decision — the primary
        one, or whichever fallback answered when the controller runs a
        degraded-mode chain ("" when no analysis ran).
    candidate_network:
        The network *with the requested connection added* that the
        decision was computed on; ``admit`` commits exactly this
        network, so the state mutation and the analysis can never
        drift apart.  ``None`` on decisions that aborted before a
        candidate existed.
    """

    admitted: bool
    reason: str
    new_flow_bound: float = math.inf
    analyzer: str = ""
    candidate_network: "Network | None" = field(
        default=None, repr=False, compare=False)
