"""Parallel batch admission: independent component groups, one pool.

A batch of connection requests partitions — by weak connectivity of
the *union* server graph (baseline flows plus every request path) —
into groups that cannot observe each other's admissions under
Algorithm Decomposed: a flow's bound, the stability of the servers on
its path, and every admission-decision reason string depend only on
the flows of its own component.  Each group is therefore evaluated
sequentially *inside one pool worker* (replicating the serial
test-then-commit ladder exactly), while distinct groups run
concurrently.

The planner (:func:`plan_batch`) only computes decisions; it never
mutates the controller.  Callers execute the plan in original request
order — the admission controller commits directly, the durable service
interleaves its write-ahead journal record before every commit — so
journal and state mutation stay serialized and idempotent regardless
of worker count.

**Determinism contract**: every decision (admitted flag, reason
string, ``new_flow_bound`` down to the last IEEE-754 bit, analyzer
label) equals what the serial ``admit`` loop would have produced.
This relies on invariants checked up front; whenever one fails —
non-decomposed primary, gated-off primary, unstable or
deadline-violating baseline, a request the grouping cannot place —
:func:`plan_batch` returns ``None`` and the caller falls back to the
serial loop.  Groups whose worker hits an :class:`~repro.errors.
AnalysisError` are re-run serially through the full fallback chain
(sound: groups are independent, so decisions are order-free across
groups).
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

import networkx as nx

from repro.admission.requests import AdmissionDecision, ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.context import AnalysisContext, Deadline
from repro.curves.kernels import current_kernel
from repro.errors import (
    AnalysisError,
    FlowError,
    InstabilityError,
    TopologyError,
)
from repro.network.flow import Flow
from repro.network.topology import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.admission.controller import AdmissionController

__all__ = ["plan_batch", "PlannedBatch"]

#: A planned batch: one entry per request, in order.  ``("decision",
#: AdmissionDecision)`` is ready to commit/journal; ``("serial", None)``
#: means "run this request through the ordinary serial path".
PlannedBatch = list[tuple[str, AdmissionDecision | None]]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _admit_group(payload: tuple) -> dict:
    """Evaluate one group's requests sequentially against its subnet.

    Replicates :meth:`AdmissionController._test` verbatim — same check
    order, same reason strings, same float formatting — with commits
    simulated on the worker-local subnet.  Returns per-request decision
    tuples plus worker metrics and (optionally) engine cache seed
    records; an analysis failure aborts the whole group with
    ``ok=False`` so the driver re-runs it through the fallback chain.
    """
    (subnet, items, capped, kernel, budget, label, want_records,
     store_path) = payload
    from repro.analysis.propagation import server_step
    from repro.context.metrics import MetricsRegistry
    from repro.engine.parallel import open_worker_store
    metrics = MetricsRegistry()
    analyzer = DecomposedAnalysis(capped)
    records: dict[bytes, tuple[object, float]] = {}
    store = open_worker_store(store_path)
    step = None
    if want_records or store is not None:
        from repro.engine.incremental import _server_key

        def step(sid, si):
            key = _server_key(si)
            if store is not None:
                entry = store.get(key)
                if entry is not None:
                    metrics.inc("store.hits")
                    return entry.value
                metrics.inc("store.misses")
            t0 = time.perf_counter()
            value = server_step(si)
            records[key] = (value, time.perf_counter() - t0)
            return value

    current = subnet
    decisions: list[tuple] = []
    for idx, flow in items:
        try:
            candidate = current.with_flow(flow)
        except TopologyError as exc:
            decisions.append((idx, False, f"topology: {exc}",
                              math.inf, ""))
            continue
        try:
            candidate.check_stability()
        except InstabilityError as exc:
            decisions.append((idx, False, f"overload: {exc}",
                              math.inf, ""))
            continue
        ctx = AnalysisContext(metrics=metrics, kernel=kernel)
        if budget is not None:
            ctx = ctx.with_deadline(
                Deadline(budget, f"{label} admission test"))
        if step is not None:
            ctx = ctx.with_interceptors(step=step)
        try:
            report = analyzer.analyze(candidate, ctx=ctx)
        except AnalysisError as exc:
            if store is not None:
                store.close()
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "metrics": metrics.as_dict()}
        new_bound = report.delay_of(flow.name)
        rejected = None
        for f in candidate.flows.values():
            bound = report.delay_of(f.name)
            if bound > f.deadline:
                who = ("requested connection" if f.name == flow.name
                       else f"existing connection {f.name!r}")
                rejected = (idx, False,
                            f"deadline violation: {who} bound "
                            f"{bound:.4g} > deadline {f.deadline:.4g}",
                            new_bound, label)
                break
        if rejected is not None:
            decisions.append(rejected)
            continue
        decisions.append((idx, True, "all deadlines met", new_bound,
                          label))
        current = candidate
    if store is not None:
        store.close()
    return {"ok": True, "decisions": decisions,
            "metrics": metrics.as_dict(),
            "records": [(k, v, dt) for k, (v, dt) in records.items()]}


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------

def _induced_subnetwork(network: Network, keep: set) -> Network:
    """Induced subnet on *keep*, preserving insertion order everywhere."""
    specs = [s for sid, s in network.servers.items() if sid in keep]
    flows = [f for f in network.flows.values() if f.path[0] in keep]
    return Network(specs, flows, allow_cycles=network.allow_cycles)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, x):
        parent = self._parent
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def plan_batch(controller: "AdmissionController",
               requests: Sequence[ConnectionRequest], *,
               workers: int,
               ctx: AnalysisContext) -> PlannedBatch | None:
    """Plan a batch of admission tests across a process pool.

    Returns one entry per request (see :data:`PlannedBatch`), or
    ``None`` when any fast-path invariant fails and the whole batch
    must take the serial loop.  The plan is valid only against the
    controller state it was computed on — execute it immediately,
    committing in request order.
    """
    primary = controller.chain[0]
    base = getattr(primary, "analyzer", primary)
    network = controller.network
    if (not isinstance(base, DecomposedAnalysis)
            or not network.is_feedforward
            or ctx.deadline is not None
            or ctx.step_interceptor is not None
            or ctx.block_interceptor is not None):
        return None
    gate = controller._gate
    if gate is not None and not gate(primary):
        return None
    try:
        flows = [controller._flow_from_request(r) for r in requests]
    except FlowError:
        # An invalid request must raise *at its position in the serial
        # loop*, after earlier requests committed — only the serial
        # path reproduces that.
        return None

    # -- baseline health: stable and meeting every deadline ------------
    try:
        network.check_stability()
        baseline = primary.run(network, ctx)
    except (InstabilityError, AnalysisError):
        return None
    for f in network.flows.values():
        if baseline.delay_of(f.name) > f.deadline:
            return None

    # -- pre-screen requests the grouping cannot place -----------------
    servers = network.servers
    baseline_names = set(network.flows)
    batch_names: dict[str, int] = {}
    planned: PlannedBatch = [("serial", None)] * len(requests)
    placed: list[tuple[int, Flow]] = []
    for idx, flow in enumerate(flows):
        if flow.name in baseline_names:
            # with_flow checks duplicate names before unknown servers
            planned[idx] = ("decision", AdmissionDecision(
                False, f"topology: duplicate flow name {flow.name!r}"))
            continue
        unknown = next((s for s in flow.path if s not in servers), None)
        if unknown is not None:
            if flow.name in batch_names:
                return None  # unknown-server + in-batch name collision
            planned[idx] = ("decision", AdmissionDecision(
                False, f"topology: flow {flow.name!r} traverses "
                       f"unknown server {unknown!r}"))
            continue
        batch_names.setdefault(flow.name, idx)
        placed.append((idx, flow))
    if len(placed) < 2:
        return None

    # -- group by weak connectivity of the union graph -----------------
    graph = network.server_graph
    for _, flow in placed:
        graph.add_edges_from(zip(flow.path, flow.path[1:]))
    comp_of: dict = {}
    for k, comp in enumerate(nx.weakly_connected_components(graph)):
        for sid in comp:
            comp_of[sid] = k
    uf = _UnionFind()
    first_of_name: dict[str, int] = {}
    for _, flow in placed:
        root = comp_of[flow.path[0]]
        if flow.name in first_of_name:
            uf.union(first_of_name[flow.name], root)
        else:
            first_of_name[flow.name] = root
    groups: dict[int, list[tuple[int, Flow]]] = {}
    for idx, flow in placed:
        groups.setdefault(uf.find(comp_of[flow.path[0]]),
                          []).append((idx, flow))
    if len(groups) < 2:
        return None

    # -- evaluate groups on the pool -----------------------------------
    kernel = ctx.kernel if ctx.kernel is not None else current_kernel()
    store = controller.store
    store_path = str(store.path) if store is not None else None
    want_records = controller.engine is not None or store is not None
    payloads = []
    ordered_groups = sorted(groups.values(), key=lambda g: g[0][0])
    for items in ordered_groups:
        roots = {uf.find(comp_of[f.path[0]]) for _, f in items}
        keep = {sid for sid in network.servers
                if uf.find(comp_of[sid]) in roots}
        payloads.append((_induced_subnetwork(network, keep), items,
                         base.capped_propagation, kernel,
                         controller._budget, primary.name, want_records,
                         store_path))

    ctx.count("parallel.batch_groups", len(groups))
    seeds: list = []
    listener = controller._listener
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for items, result in zip(ordered_groups,
                                 pool.map(_admit_group, payloads)):
            from repro.engine.parallel import merge_worker_metrics
            merge_worker_metrics(ctx, result.get("metrics"))
            if not result["ok"]:
                ctx.count("parallel.group_serial_reruns")
                continue  # entries stay ("serial", None)
            seeds.extend(result.get("records", ()))
            for idx, admitted, reason, bound, label in result["decisions"]:
                planned[idx] = ("decision", AdmissionDecision(
                    admitted, reason, new_flow_bound=bound,
                    analyzer=label))
                if listener is not None and label:
                    listener(primary, None)
    if seeds:
        if controller.engine is not None:
            # seed_cache also persists to the engine's store (when
            # writable) — the single serialized write of worker results
            controller.engine.seed_cache(seeds)
        elif store is not None and not store.read_only:
            from repro.errors import StoreError
            try:
                store.seed(seeds)
            except (StoreError, OSError):
                ctx.count("store.write_errors")
    return planned
