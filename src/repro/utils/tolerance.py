"""Floating point comparison helpers used across the curve algebra.

Delay-bound computations chain many piecewise-linear operations; a single
shared absolute/relative tolerance keeps comparisons consistent between
the exact piecewise kernels and the sampled numeric kernels.
"""

from __future__ import annotations

#: Default absolute tolerance for curve-algebra comparisons.
EPS: float = 1e-9


def close(a: float, b: float, eps: float = EPS) -> bool:
    """Return True when *a* and *b* are equal up to mixed abs/rel tolerance."""
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


def leq(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant ``a <= b``."""
    return a <= b + eps * max(1.0, abs(a), abs(b))


def geq(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant ``a >= b``."""
    return leq(b, a, eps)
