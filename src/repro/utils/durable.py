"""Crash-durable file primitives shared by checkpointers and journals.

POSIX gives three separate durability obligations that are easy to get
only two-thirds right:

1. file *contents* reach the disk only after ``fsync(fd)``;
2. a rename is atomic with respect to crashes only for
   :func:`os.replace` within one filesystem;
3. the *rename itself* reaches the disk only after fsyncing the parent
   **directory** — without it a power loss after ``os.replace`` can
   resurrect the old file or leave no file at all.

The sweep checkpointer (:mod:`repro.eval.parallel`) and the admission
journal (:mod:`repro.service.journal`) both funnel their writes through
this module so there is exactly one place where the full
write → flush → fsync → replace → fsync-dir dance lives.

Platforms whose filesystems cannot fsync a directory (some network
mounts, Windows) make :func:`fsync_dir` a silent no-op — the write is
then as durable as the platform allows.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable

__all__ = [
    "fsync_dir",
    "fsync_file",
    "atomic_write_text",
    "DurableAppender",
]


def fsync_file(fh: IO) -> None:
    """Flush python buffers and fsync an open file object."""
    fh.flush()
    os.fsync(fh.fileno())


def fsync_dir(path: str | Path) -> None:
    """Fsync a directory so a completed rename survives power loss.

    Best effort: platforms that cannot open or fsync a directory
    (Windows, some network filesystems) are silently tolerated.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, content: str) -> Path:
    """Durably replace *path* with *content* (all-or-nothing).

    Writes ``<path>.tmp`` in the same directory, fsyncs it, atomically
    renames it over *path* and fsyncs the parent directory.  After a
    crash at any point the path holds either the complete old content
    or the complete new content, never a truncated mix.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(content)
        fsync_file(fh)
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return path


class DurableAppender:
    """Append-only line sink with per-line fsync (write-ahead semantics).

    Every :meth:`append` writes one line and fsyncs before returning, so
    once the call returns the record survives power loss.  A crash *in*
    the call can leave a truncated final line — readers must treat a
    trailing unparseable line as "record never happened" (this is the
    standard WAL contract; see :func:`iter_jsonl`).
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        existed = self._path.exists()
        self._fh: IO | None = open(self._path, "a", encoding="utf-8")
        if not existed:
            # make the file's very existence durable too
            fsync_file(self._fh)
            fsync_dir(self._path.parent)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def closed(self) -> bool:
        return self._fh is None

    def append(self, line: str) -> None:
        """Durably append one line (newline added if missing)."""
        if self._fh is None:
            raise ValueError(f"appender for {self._path} is closed")
        if not line.endswith("\n"):
            line += "\n"
        self._fh.write(line)
        fsync_file(self._fh)

    def close(self) -> None:
        if self._fh is not None:
            try:
                fsync_file(self._fh)
            finally:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_jsonl(path: str | Path) -> Iterable[tuple[dict, bool]]:
    """Yield ``(record, ok)`` per non-empty line of a JSONL file.

    Unparseable or non-object lines yield ``({}, False)`` so callers
    can count corruption; a crash mid-append legitimately truncates the
    final line and the WAL contract is to ignore it.
    """
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            yield {}, False
            continue
        if not isinstance(rec, dict):
            yield {}, False
            continue
        yield rec, True
