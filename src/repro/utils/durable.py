"""Crash-durable file primitives shared by checkpointers and journals.

POSIX gives three separate durability obligations that are easy to get
only two-thirds right:

1. file *contents* reach the disk only after ``fsync(fd)``;
2. a rename is atomic with respect to crashes only for
   :func:`os.replace` within one filesystem;
3. the *rename itself* reaches the disk only after fsyncing the parent
   **directory** — without it a power loss after ``os.replace`` can
   resurrect the old file or leave no file at all.

The sweep checkpointer (:mod:`repro.eval.parallel`) and the admission
journal (:mod:`repro.service.journal`) both funnel their writes through
this module so there is exactly one place where the full
write → flush → fsync → replace → fsync-dir dance lives.

Platforms whose filesystems cannot fsync a directory (some network
mounts, Windows) make :func:`fsync_dir` a silent no-op — the write is
then as durable as the platform allows.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable

__all__ = [
    "fsync_dir",
    "fsync_file",
    "atomic_write_text",
    "repair_torn_tail",
    "DurableAppender",
]


def fsync_file(fh: IO) -> None:
    """Flush python buffers and fsync an open file object."""
    fh.flush()
    os.fsync(fh.fileno())


def fsync_dir(path: str | Path) -> None:
    """Fsync a directory so a completed rename survives power loss.

    Best effort: platforms that cannot open or fsync a directory
    (Windows, some network filesystems) are silently tolerated.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, content: str) -> Path:
    """Durably replace *path* with *content* (all-or-nothing).

    Writes ``<path>.tmp`` in the same directory, fsyncs it, atomically
    renames it over *path* and fsyncs the parent directory.  After a
    crash at any point the path holds either the complete old content
    or the complete new content, never a truncated mix.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(content)
        fsync_file(fh)
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return path


def repair_torn_tail(path: str | Path) -> int:
    """Truncate a trailing partial line left by a crash mid-append.

    A SIGKILL/power loss during an append can leave the file ending in
    a line without its terminating newline.  That record was never
    acknowledged (the fsync'd append never returned), so dropping it is
    exactly the WAL contract — but it must be dropped *before* the next
    append, or the new record is concatenated onto the torn tail and
    both become one unparseable line, silently losing the new,
    acknowledged record on the next recovery.

    Returns the number of bytes truncated (0 when the file is missing,
    empty, or already newline-terminated).  The truncation is fsync'd
    before returning.
    """
    path = Path(path)
    if not path.exists():
        return 0
    with open(path, "rb+") as fh:
        data = fh.read()
        if not data or data.endswith(b"\n"):
            return 0
        keep = data.rfind(b"\n") + 1  # 0 when no newline at all
        fh.truncate(keep)
        fsync_file(fh)
        return len(data) - keep


class DurableAppender:
    """Append-only line sink with per-line fsync (write-ahead semantics).

    Every :meth:`append` writes one line and fsyncs before returning, so
    once the call returns the record survives power loss.  A crash *in*
    the call can leave a truncated final line — readers must treat a
    trailing unparseable line as "record never happened" (this is the
    standard WAL contract; see :func:`iter_jsonl`).  Opening an existing
    file repairs such a torn tail (:func:`repair_torn_tail`) so the next
    append starts on a fresh line instead of extending the torn one.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        existed = self._path.exists()
        if existed:
            repair_torn_tail(self._path)
        self._fh: IO | None = open(self._path, "a", encoding="utf-8")
        if not existed:
            # make the file's very existence durable too
            fsync_file(self._fh)
            fsync_dir(self._path.parent)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def closed(self) -> bool:
        return self._fh is None

    def append(self, line: str) -> None:
        """Durably append one line (newline added if missing)."""
        if self._fh is None:
            raise ValueError(f"appender for {self._path} is closed")
        if not line.endswith("\n"):
            line += "\n"
        self._fh.write(line)
        fsync_file(self._fh)

    def close(self) -> None:
        if self._fh is not None:
            try:
                fsync_file(self._fh)
            finally:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_jsonl(path: str | Path) -> Iterable[tuple[dict, bool]]:
    """Yield ``(record, ok)`` per non-empty line of a JSONL file.

    Unparseable or non-object lines yield ``({}, False)`` so callers
    can count corruption; a crash mid-append legitimately truncates the
    final line and the WAL contract is to ignore it.
    """
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            yield {}, False
            continue
        if not isinstance(rec, dict):
            yield {}, False
            continue
        yield rec, True
