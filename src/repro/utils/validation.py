"""Argument validation helpers.

These raise :class:`ValueError` with a consistent message format; they are
used at public API boundaries so that invalid parameters fail early with
an actionable message instead of surfacing as NaNs deep in a kernel.
"""

from __future__ import annotations

import math
from typing import Any


def check_finite(name: str, value: float) -> float:
    """Validate that *value* is a finite real number and return it."""
    v = float(value)
    if not math.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return v


def check_nonnegative(name: str, value: float) -> float:
    """Validate ``value >= 0`` (and finiteness) and return it."""
    v = check_finite(name, value)
    if v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_positive(name: str, value: float) -> float:
    """Validate ``value > 0`` (and finiteness) and return it."""
    v = check_finite(name, value)
    if v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return v


def check_type(name: str, value: Any, expected: type) -> Any:
    """Validate ``isinstance(value, expected)`` and return *value*."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
