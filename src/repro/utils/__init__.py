"""Small shared utilities: numeric tolerances, grids, validation helpers."""

from repro.utils.tolerance import EPS, close, leq, geq
from repro.utils.grid import TimeGrid, make_grid
from repro.utils.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
)

__all__ = [
    "EPS",
    "close",
    "leq",
    "geq",
    "TimeGrid",
    "make_grid",
    "check_finite",
    "check_nonnegative",
    "check_positive",
]
