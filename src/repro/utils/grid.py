"""Uniform time grids for the sampled (numeric) curve kernels.

The integrated two-server kernel and the generic min-plus fallback both
evaluate curves on a dense uniform grid.  :class:`TimeGrid` centralizes
the grid construction so every kernel agrees on spacing and horizon, and
so tests can sweep resolution in one place (ablation ABL1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TimeGrid:
    """A uniform grid ``t_k = k * dt`` for ``k = 0 .. n-1``.

    Attributes
    ----------
    horizon:
        Largest time covered (inclusive of the final sample).
    n:
        Number of samples (>= 2).
    """

    horizon: float
    n: int

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")

    @property
    def dt(self) -> float:
        """Grid spacing."""
        return self.horizon / (self.n - 1)

    @property
    def times(self) -> np.ndarray:
        """The sample instants as a 1-D float array."""
        return np.linspace(0.0, self.horizon, self.n)

    def index_of(self, t: float) -> int:
        """Index of the last grid point ``<= t`` (clamped to the grid)."""
        if t <= 0:
            return 0
        return min(self.n - 1, int(t / self.dt))

    def refined(self, factor: int) -> "TimeGrid":
        """A grid with the same horizon and ``factor``-times the samples."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return TimeGrid(self.horizon, (self.n - 1) * factor + 1)


def make_grid(horizon: float, resolution: int = 2048) -> TimeGrid:
    """Build a :class:`TimeGrid` covering ``[0, horizon]``.

    Parameters
    ----------
    horizon:
        Time horizon; callers typically pass a small multiple of the sum
        of the busy periods involved so that every extremum of the delay
        expressions falls inside the grid.
    resolution:
        Number of samples.
    """
    return TimeGrid(float(horizon), int(resolution))
