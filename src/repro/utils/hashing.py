"""Stable content hashing for incremental-analysis cache keys.

The incremental engine (:mod:`repro.engine`) keys cached intermediate
results by the *content* of everything that determines them: server
specs, flow descriptors and exact constraint curves.  Python's builtin
``hash`` is salted per process and therefore useless for that; this
module provides a deterministic digest over the small set of value
types the engine needs.

Floats are hashed by their IEEE-754 bit pattern (``struct.pack('<d')``),
so two inputs get the same key *iff* they are bit-identical — exactly
the contract the engine needs for bit-identical cached results.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

import numpy as np

__all__ = ["stable_digest", "digest_update"]

_FLOAT = struct.Struct("<d")
_INT = struct.Struct("<q")


def digest_update(h, obj) -> None:
    """Feed one value into a hashlib digest, canonically.

    Supported: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, numpy arrays and (nested) tuples/lists.  Every value is
    prefixed with a type tag so e.g. ``1`` and ``1.0`` and ``"1"`` hash
    differently and sequences cannot collide by concatenation.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, int):
        try:
            h.update(b"i")
            h.update(_INT.pack(obj))
        except struct.error:  # arbitrary-precision fallback
            h.update(b"I")
            h.update(str(obj).encode("ascii"))
    elif isinstance(obj, float):
        h.update(b"f")
        h.update(_FLOAT.pack(obj))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"s")
        h.update(_INT.pack(len(data)))
        h.update(data)
    elif isinstance(obj, bytes):
        h.update(b"y")
        h.update(_INT.pack(len(obj)))
        h.update(obj)
    elif isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj, dtype=np.float64).tobytes()
        h.update(b"a")
        h.update(_INT.pack(len(data)))
        h.update(data)
    elif isinstance(obj, (tuple, list)):
        h.update(b"(")
        for item in obj:
            digest_update(h, item)
        h.update(b")")
    else:
        raise TypeError(
            f"stable_digest cannot hash {type(obj).__name__!r}; "
            "convert to a supported primitive first")


def stable_digest(*parts: object) -> bytes:
    """A 16-byte deterministic digest of the given values.

    Deterministic across processes and Python invocations (unlike
    builtin ``hash``), collision-resistant (blake2b), and sensitive to
    every bit of every float fed in.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest_update(h, part)
    return h.digest()


def digest_many(parts: Iterable[object]) -> bytes:
    """Like :func:`stable_digest` but over an iterable."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest_update(h, part)
    return h.digest()
