"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to discriminate finer failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CurveError(ReproError):
    """Invalid curve construction or an ill-defined curve operation."""


class InstabilityError(ReproError):
    """A server or network is overloaded (utilization >= capacity).

    Deterministic delay bounds only exist when every server's long-term
    arrival rate is strictly below its service rate; violating that makes
    busy periods unbounded and every analysis in this package undefined.
    """

    def __init__(self, message: str, *, rate: float | None = None,
                 capacity: float | None = None) -> None:
        super().__init__(message)
        self.rate = rate
        self.capacity = capacity


class TopologyError(ReproError):
    """Invalid network topology (cycles, unknown nodes, bad paths)."""


class FlowError(ReproError):
    """Invalid flow definition (empty path, bad traffic parameters)."""


class AnalysisError(ReproError):
    """An analysis algorithm could not produce a bound."""


class AnalysisTimeoutError(AnalysisError):
    """An analysis exceeded its wall-clock budget.

    Admission control treats time as a resource: a test that cannot
    answer within its budget is as useless as one that errors, so the
    controller falls back to a cheaper analyzer.  The structured
    attributes let callers adapt (e.g. widen the budget, skip the
    analyzer) without parsing the message.
    """

    def __init__(self, message: str, *, budget: float | None = None,
                 elapsed: float | None = None) -> None:
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed


class SimulationError(ReproError):
    """Invalid simulation configuration or a runtime simulation fault."""


class AdmissionError(ReproError):
    """Invalid admission-control request or controller state.

    ``flow`` names the offending connection when the error concerns a
    specific one (e.g. releasing a flow that was never admitted), so
    services can handle it structurally — the journal replay path uses
    it to make double-releases idempotent instead of parsing messages.
    """

    def __init__(self, message: str, *, flow: str | None = None) -> None:
        super().__init__(message)
        self.flow = flow


class ResilienceError(ReproError):
    """Invalid fault scenario or a fault-injection failure.

    Carries the scenario description so survivability sweeps over many
    scenarios can report which one was ill-formed.
    """

    def __init__(self, message: str, *,
                 scenario: str | None = None) -> None:
        super().__init__(message)
        self.scenario = scenario


class CircuitOpenError(AnalysisError):
    """An analyzer attempt was refused by an open circuit breaker.

    Subclasses :class:`AnalysisError` on purpose: a chain that skips a
    breaker-protected analyzer treats the skip like any other analysis
    failure and falls through to the next rung instead of crashing.
    """

    def __init__(self, message: str, *,
                 breaker: str | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.breaker = breaker
        self.retry_after = retry_after


class ServiceError(ReproError):
    """Invalid admission-service configuration or runtime state."""


class JournalError(ServiceError):
    """The write-ahead journal is unreadable, unwritable or corrupt."""


class RecoveryError(ServiceError):
    """Crash recovery could not reconstruct a consistent controller.

    Raised when the journal cannot be replayed (missing base record,
    structurally impossible operations) or when post-recovery
    verification finds re-analyzed bounds diverging from the journaled
    ones.
    """


class LoadGenError(ReproError):
    """Invalid load-generation configuration, trace or SLO spec.

    Raised by :mod:`repro.loadgen` for unknown workload names,
    malformed recorded traces and unparseable SLO specifications —
    configuration mistakes, never measurement outcomes (an SLO
    *violation* is reported, not raised).
    """


class StoreError(ReproError):
    """Invalid analysis-store configuration or API misuse.

    Raised for *caller* mistakes only — opening a file as a store
    directory, writing to a read-only store, compacting a closed one.
    Disk-level trouble (torn segment tails, bit flips, version skew)
    is deliberately **not** an exception: the store's contract is to
    degrade every corrupt entry into a cache miss so analysis falls
    back to recomputation, never to crash the admission path.
    """


class EngineError(AnalysisError):
    """The incremental analysis engine detected an internal
    inconsistency (e.g. a self-check found cached results diverging
    from a cold analysis).

    Subclasses :class:`AnalysisError` on purpose: admission control's
    fallback chain treats an engine failure like any other analysis
    failure and degrades to a cold analyzer instead of failing open.
    """
