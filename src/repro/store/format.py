"""On-disk framing for the persistent analysis store.

A store directory holds append-only **segment files** plus one JSON
**index** (see :mod:`repro.store.store`).  This module owns the byte
layout of the segments so the reader, the writer, the scanner and the
corruption tests all agree on one definition.

Segment layout::

    <header line>\n            JSON: {"format": 1, "schema": "..."}
    <frame> <frame> ...        binary, back to back

Frame layout (little endian)::

    magic      4 bytes   FRAME_MAGIC
    key        16 bytes  blake2b content digest (repro.utils.hashing)
    value_len  u32       payload byte count
    crc32      u32       zlib.crc32 of the payload
    payload    value_len bytes (pickled (value, compute_time))

Design notes:

* The **format version** and **value schema** live in every segment's
  header *and* in the index.  A reader that finds either tag it does
  not understand ignores that file entirely — version skew degrades to
  recomputation, never to misinterpreting bytes.
* The per-frame CRC makes a bit flip a detectable *miss* instead of a
  wrong (and, for this codebase, contract-breaking) bound.
* A crash mid-append leaves a torn final frame; the scanner detects it
  (short header, bad magic, or payload running past end of file) and
  reports the clean prefix length so the writer can truncate before
  appending again — the same torn-tail discipline as
  :func:`repro.utils.durable.repair_torn_tail`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator

__all__ = [
    "FORMAT_VERSION",
    "VALUE_SCHEMA",
    "FRAME_MAGIC",
    "FRAME_HEADER",
    "KEY_BYTES",
    "FrameRef",
    "segment_header",
    "parse_segment_header",
    "pack_frame",
    "checksum",
    "scan_segment",
]

#: Bump when the byte layout below changes.
FORMAT_VERSION = 1

#: Tag describing what the payloads *are* (pickled analysis results:
#: ``ServerStep`` / ``BlockOutcome`` tuples).  Bump whenever those
#: dataclasses change shape so stale stores fall back to recomputation
#: instead of feeding old pickles to new code.
VALUE_SCHEMA = "repro-analysis-v1"

FRAME_MAGIC = b"\xabRS1"
FRAME_HEADER = struct.Struct("<4s16sII")
KEY_BYTES = 16


@dataclass(frozen=True)
class FrameRef:
    """Location of one frame's payload inside a segment."""

    key: bytes
    offset: int  #: byte offset of the payload (not the frame header)
    length: int
    crc32: int


def segment_header(format_version: int = FORMAT_VERSION,
                   schema: str = VALUE_SCHEMA) -> bytes:
    """The header line a fresh segment file starts with."""
    return (json.dumps({"format": format_version, "schema": schema},
                       sort_keys=True) + "\n").encode("ascii")


def parse_segment_header(line: bytes) -> tuple[int, str] | None:
    """``(format, schema)`` from a header line, or None if unreadable."""
    try:
        rec = json.loads(line.decode("ascii"))
        return int(rec["format"]), str(rec["schema"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return None


def checksum(payload: bytes) -> int:
    """The frame checksum of *payload* (crc32, masked to u32)."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def pack_frame(key: bytes, payload: bytes) -> bytes:
    """One complete frame: header plus payload."""
    if len(key) != KEY_BYTES:
        raise ValueError(
            f"store keys are {KEY_BYTES}-byte digests, got {len(key)}")
    return FRAME_HEADER.pack(FRAME_MAGIC, key, len(payload),
                             checksum(payload)) + payload


def scan_segment(fh: BinaryIO) -> tuple[list[FrameRef], int, bool]:
    """Walk a segment file and locate every complete frame.

    Returns ``(frames, clean_length, header_ok)``.  ``clean_length`` is
    the byte count of the valid prefix — everything past it is a torn
    or corrupt tail the writer should truncate.  ``header_ok`` is False
    when the segment's header line is missing, unparseable or names a
    format/schema this code does not speak; such segments contribute no
    frames (version skew reads as "empty", i.e. recompute).

    Payload bytes are *not* read (and CRCs not verified) here: a scan
    touches only the 28-byte frame headers, so opening a large store is
    cheap.  Checksums are verified lazily on :meth:`AnalysisStore.get`.
    """
    fh.seek(0)
    line = fh.readline(4096)
    if not line.endswith(b"\n"):
        return [], 0, False
    parsed = parse_segment_header(line)
    if parsed is None or parsed != (FORMAT_VERSION, VALUE_SCHEMA):
        return [], 0, False
    frames: list[FrameRef] = []
    pos = len(line)
    fh.seek(0, 2)
    end = fh.tell()
    fh.seek(pos)
    while True:
        if end - pos < FRAME_HEADER.size:
            break  # clean end (pos == end) or torn header
        header = fh.read(FRAME_HEADER.size)
        magic, key, length, crc = FRAME_HEADER.unpack(header)
        if magic != FRAME_MAGIC:
            break  # corrupt tail: stop at the last good frame
        payload_off = pos + FRAME_HEADER.size
        if end - payload_off < length:
            break  # torn payload
        frames.append(FrameRef(key, payload_off, length, crc))
        pos = payload_off + length
        fh.seek(pos)
    return frames, pos, True


def iter_frames(fh: BinaryIO) -> Iterator[tuple[FrameRef, bytes]]:
    """Yield ``(ref, payload)`` for every complete frame (verify use)."""
    frames, _, _ = scan_segment(fh)
    for ref in frames:
        fh.seek(ref.offset)
        yield ref, fh.read(ref.length)
