"""Persistent, content-addressed analysis store (disk cache tier).

See :mod:`repro.store.store` for the full contract and ``docs/STORE.md``
for operations guidance.
"""

from repro.store.format import FORMAT_VERSION, VALUE_SCHEMA
from repro.store.store import (
    AnalysisStore,
    CompactionReport,
    StoreEntry,
    StoreStats,
    VerifyReport,
)

__all__ = [
    "AnalysisStore",
    "CompactionReport",
    "FORMAT_VERSION",
    "StoreEntry",
    "StoreStats",
    "VALUE_SCHEMA",
    "VerifyReport",
]
