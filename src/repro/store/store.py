"""Disk-backed, content-addressed analysis store with warm-start.

:class:`AnalysisStore` persists the incremental engine's per-server /
per-block results (:mod:`repro.engine`) across **processes**: keys are
the same blake2b content digests (:mod:`repro.utils.hashing`) the
in-memory :class:`~repro.engine.cache.ResultCache` uses, so an entry is
valid for exactly the inputs that produced it — every bit of every
curve, the discipline, and the curve kernel are part of the key, which
is why a store hit is guaranteed to replay the cold computation
bit-identically and why exact and grid results can never alias.

Layout (one directory)::

    seg-00000001.dat   append-only segments (see repro.store.format)
    seg-00000002.dat
    index.json         atomic snapshot: entry locations in LRU order

Durability and corruption semantics:

* Segments are append-only; each ``put`` appends one CRC-framed record
  and flushes.  The **index** is advisory — it is rewritten through
  :func:`repro.utils.durable.atomic_write_text` (tmp + fsync + replace
  + dir fsync) and, when missing, stale or unreadable, the store
  rebuilds it by scanning segment frame headers.
* Every read verifies the frame CRC and unpickles defensively: a bit
  flip, torn tail or version skew turns into a **miss** (counted in
  :class:`StoreStats`), never an exception and never a wrong value.
  Callers recompute and the recomputed entry repairs the store.
* Segment headers and the index both carry the format version and the
  value schema tag; files written by an incompatible version read as
  empty (recompute), not as garbage.

The store is single-writer, many-reader: one process opens it
writable (the admission service, the sweep driver, the bench harness)
while pool workers open it ``read_only`` and ship any newly computed
entries back to the parent for one serialized write — see
``docs/STORE.md``.
"""

from __future__ import annotations

import json
import os
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator, NamedTuple

from repro.errors import StoreError
from repro.store.format import (
    FORMAT_VERSION,
    FRAME_HEADER,
    KEY_BYTES,
    VALUE_SCHEMA,
    checksum,
    pack_frame,
    scan_segment,
    segment_header,
)
from repro.utils.durable import atomic_write_text, fsync_dir, fsync_file

__all__ = [
    "AnalysisStore",
    "StoreEntry",
    "StoreStats",
    "CompactionReport",
    "VerifyReport",
]

INDEX_NAME = "index.json"
_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.dat$")

#: Default segment roll size; small enough that compaction rewrites
#: stay incremental, large enough that a realistic store is a handful
#: of files.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024
#: Index snapshots are written every this many puts (and on flush/close).
DEFAULT_FLUSH_EVERY = 256


@dataclass(frozen=True)
class StoreEntry:
    """One stored result: the value plus its original compute time."""

    value: object
    compute_time: float


@dataclass
class StoreStats:
    """Operational counters of one :class:`AnalysisStore` handle."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0  #: entries dropped on read (CRC/unpickle failure)
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    compactions: int = 0
    evicted: int = 0  #: entries dropped by LRU compaction

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "compactions": self.compactions,
            "evicted": self.evicted,
        }


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one :meth:`AnalysisStore.compact` pass."""

    kept: int
    dropped: int
    bytes_before: int
    bytes_after: int
    segments_before: int
    segments_after: int

    def render(self) -> str:
        return (
            f"compacted: kept {self.kept} entr(ies), dropped "
            f"{self.dropped}, {self.bytes_before} -> {self.bytes_after} "
            f"segment byte(s), {self.segments_before} -> "
            f"{self.segments_after} segment file(s)"
        )


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of a full store verification scan."""

    entries: int
    corrupt: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def render(self) -> str:
        lines = [
            f"verified {self.entries} entr(ies): "
            + ("all good" if self.ok else f"{len(self.corrupt)} CORRUPT")
        ]
        lines += [f"  CORRUPT {c}" for c in self.corrupt]
        return "\n".join(lines)


class _Ref(NamedTuple):
    """Where one entry's payload lives."""

    segment: str
    offset: int
    length: int
    crc32: int


class AnalysisStore:
    """Persistent content-addressed result store (see module docstring).

    Parameters
    ----------
    directory:
        Store directory; created (with parents) when opened writable.
        A ``read_only`` open of a missing directory is a valid empty
        store — pool workers may race the parent's first write.
    read_only:
        Never write: ``put`` raises :class:`~repro.errors.StoreError`,
        torn tails are tolerated in place instead of truncated, and the
        index file is left untouched.
    max_bytes:
        Live-payload cap enforced by compaction (LRU entries beyond it
        are dropped).  ``None`` = uncapped.  Writable stores
        auto-compact when segment bytes exceed twice the cap.
    segment_bytes / flush_every:
        Segment roll size and index-snapshot interval (tuning knobs;
        the defaults are fine for any realistic admission session).
    """

    def __init__(self, directory: str | os.PathLike, *,
                 read_only: bool = False,
                 max_bytes: int | None = None,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 flush_every: int = DEFAULT_FLUSH_EVERY) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise StoreError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        if segment_bytes < 4096:
            raise StoreError(f"segment_bytes must be >= 4096, got {segment_bytes}")
        self._dir = Path(directory)
        self._read_only = bool(read_only)
        self.max_bytes = max_bytes
        self._segment_bytes = int(segment_bytes)
        self._flush_every = max(1, int(flush_every))
        self.stats = StoreStats()
        self._closed = False
        self._dirty = 0
        #: LRU map: oldest first; values locate the payload on disk.
        self._entries: dict[bytes, _Ref] = {}
        #: clean (scanned) byte length per live segment file.
        self._segments: dict[str, int] = {}
        self._readers: dict[str, BinaryIO] = {}
        self._writer: BinaryIO | None = None
        self._writer_name = ""

        if self._dir.exists() and not self._dir.is_dir():
            raise StoreError(f"store path {self._dir} is not a directory")
        if not self._dir.exists():
            if self._read_only:
                return  # empty store; nothing on disk to load
            self._dir.mkdir(parents=True, exist_ok=True)
        self._load()

    # ------------------------------------------------------------------
    # opening: index load with scan fallback
    # ------------------------------------------------------------------

    def _disk_segments(self) -> list[str]:
        try:
            names = os.listdir(self._dir)
        except OSError:
            return []
        return sorted(n for n in names if _SEGMENT_RE.match(n))

    def _load(self) -> None:
        """Populate the entry map: index when trustworthy, else scan."""
        indexed = self._load_index()
        for name in self._disk_segments():
            if name in self._segments:
                continue  # covered by a validated index
            self._scan_segment_file(name)
        if indexed is not None:
            # LRU order from the index; scan-found extras stay newest.
            ordered: dict[bytes, _Ref] = {}
            for key in indexed:
                if key in self._entries:
                    ordered[key] = self._entries.pop(key)
            ordered.update(self._entries)
            self._entries = ordered

    def _load_index(self) -> list[bytes] | None:
        """Load ``index.json``; returns the LRU key order, or None.

        The index is trusted only when its version tags match and every
        segment it names exists with *exactly* the recorded clean
        length — any skew (stale index, crashed compaction, foreign
        version) falls back to scanning the segments themselves.
        """
        path = self._dir / INDEX_NAME
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        try:
            if (int(raw["format"]) != FORMAT_VERSION
                    or str(raw["schema"]) != VALUE_SCHEMA):
                return None
            segments = {str(k): int(v) for k, v in raw["segments"].items()}
            entries = [(bytes.fromhex(k), str(seg), int(off), int(ln), int(crc))
                       for k, seg, off, ln, crc in raw["entries"]]
        except (KeyError, TypeError, ValueError):
            return None
        for name, clean in segments.items():
            try:
                size = (self._dir / name).stat().st_size
            except OSError:
                return None
            if size != clean:
                return None  # appended or truncated since the snapshot
        order: list[bytes] = []
        for key, seg, off, ln, crc in entries:
            if seg not in segments or len(key) != KEY_BYTES:
                return None
            self._entries[key] = _Ref(seg, off, ln, crc)
            order.append(key)
        self._segments.update(segments)
        return order

    def _scan_segment_file(self, name: str) -> None:
        path = self._dir / name
        try:
            with open(path, "rb") as fh:
                frames, clean, header_ok = scan_segment(fh)
                size = fh.seek(0, 2)
        except OSError:
            return
        if not header_ok:
            # foreign format/schema: contributes nothing (recompute);
            # compaction will eventually delete it.
            self._segments[name] = 0
            return
        if clean != size and not self._read_only:
            # torn/corrupt tail: drop it before any future append.
            try:
                with open(path, "rb+") as fh:
                    fh.truncate(clean)
                    fsync_file(fh)
            except OSError:
                pass
        self._segments[name] = clean
        for ref in frames:
            self._entries[ref.key] = _Ref(name, ref.offset, ref.length,
                                          ref.crc32)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._dir

    @property
    def read_only(self) -> bool:
        return self._read_only

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def live_bytes(self) -> int:
        """Payload bytes of live (indexed) entries."""
        return sum(ref.length for ref in self._entries.values())

    @property
    def segment_bytes_on_disk(self) -> int:
        """Total size of every segment file currently on disk."""
        total = 0
        for name in self._disk_segments():
            try:
                total += (self._dir / name).stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[bytes]:
        return iter(list(self._entries))

    def describe(self) -> dict:
        """Inspection snapshot for the ``repro store`` CLI."""
        return {
            "path": str(self._dir),
            "format": FORMAT_VERSION,
            "schema": VALUE_SCHEMA,
            "entries": len(self._entries),
            "segments": len(self._disk_segments()),
            "live_bytes": self.live_bytes,
            "disk_bytes": self.segment_bytes_on_disk,
            "max_bytes": self.max_bytes,
            "read_only": self._read_only,
            "stats": self.stats.as_dict(),
        }

    # ------------------------------------------------------------------
    # the cache surface
    # ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError(f"store {self._dir} is closed")

    def _reader(self, name: str) -> BinaryIO | None:
        fh = self._readers.get(name)
        if fh is None:
            try:
                fh = open(self._dir / name, "rb")
            except OSError:
                return None
            self._readers[name] = fh
        return fh

    def get(self, key: bytes) -> StoreEntry | None:
        """The stored entry for *key*, or None.

        Never raises on disk trouble: a missing segment, CRC mismatch
        or unpicklable payload drops the entry (counted in
        ``stats.corrupt``) and reads as a miss — the caller recomputes,
        and its ``put`` repairs the store.
        """
        self._require_open()
        ref = self._entries.get(key)
        if ref is None:
            self.stats.misses += 1
            return None
        payload: bytes | None = None
        fh = self._reader(ref.segment)
        if fh is not None:
            try:
                fh.seek(ref.offset)
                payload = fh.read(ref.length)
            except OSError:
                payload = None
        if (payload is None or len(payload) != ref.length
                or checksum(payload) != ref.crc32):
            self._drop_corrupt(key)
            return None
        try:
            value, compute_time = pickle.loads(payload)
            compute_time = float(compute_time)
        except Exception:  # noqa: BLE001 - any unpickle failure is corruption
            self._drop_corrupt(key)
            return None
        # refresh LRU recency: re-insert at the newest end
        self._entries.pop(key, None)
        self._entries[key] = ref
        self.stats.hits += 1
        self.stats.bytes_read += ref.length
        return StoreEntry(value, compute_time)

    def _drop_corrupt(self, key: bytes) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        self._entries.pop(key, None)

    def put(self, key: bytes, value: object, compute_time: float) -> bool:
        """Persist one computed result; returns True when written.

        First write wins: a key already present is left untouched
        (every writer derives the value from the same pure function on
        the same content-addressed inputs, so overwriting could only
        replace a value with an identical one).
        """
        self._require_open()
        if self._read_only:
            raise StoreError(f"store {self._dir} is open read-only")
        if len(key) != KEY_BYTES:
            raise StoreError(
                f"store keys are {KEY_BYTES}-byte digests, got {len(key)}")
        if key in self._entries:
            return False
        try:
            payload = pickle.dumps((value, float(compute_time)),
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise StoreError(
                f"value for key {key.hex()} is not picklable: {exc}"
            ) from exc
        frame = pack_frame(key, payload)
        fh = self._ensure_writer(len(frame))
        offset = self._segments[self._writer_name] + FRAME_HEADER.size
        fh.write(frame)
        fh.flush()
        self._segments[self._writer_name] += len(frame)
        self._entries[key] = _Ref(self._writer_name, offset, len(payload),
                                  checksum(payload))
        self.stats.writes += 1
        self.stats.bytes_written += len(frame)
        self._dirty += 1
        if self._dirty >= self._flush_every:
            self.flush()
        if (self.max_bytes is not None
                and self.live_bytes > 2 * self.max_bytes):
            self.compact()
        return True

    def seed(self, records) -> int:
        """Persist ``(key, value, compute_time)`` records; returns count.

        The single serialized write point for entries computed in pool
        workers (parallel analysis, batch admission, sweeps): workers
        open the store read-only, ship fresh entries to the parent, and
        the parent lands them here in one pass.
        """
        added = 0
        for key, value, compute_time in records:
            if self.put(key, value, compute_time):
                added += 1
        return added

    # ------------------------------------------------------------------
    # writer plumbing
    # ------------------------------------------------------------------

    def _next_segment_name(self) -> str:
        highest = 0
        for name in self._disk_segments():
            match = _SEGMENT_RE.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"seg-{highest + 1:08d}.dat"

    def _open_segment(self, name: str) -> BinaryIO:
        path = self._dir / name
        fresh = not path.exists()
        fh = open(path, "ab")
        if fresh:
            header = segment_header()
            fh.write(header)
            fh.flush()
            fsync_dir(self._dir)
            self._segments[name] = len(header)
        return fh

    def _ensure_writer(self, incoming: int) -> BinaryIO:
        if self._writer is not None:
            if (self._segments[self._writer_name] + incoming
                    <= self._segment_bytes):
                return self._writer
            self._close_writer()
        # resume the newest scanned segment when it still has room —
        # but only when its clean length matches the file exactly (a
        # foreign/headerless segment scans as clean == 0 and must never
        # be appended to: its frames would sit past unscannable bytes)
        name = None
        for candidate in reversed(self._disk_segments()):
            clean = self._segments.get(candidate)
            try:
                size = (self._dir / candidate).stat().st_size
            except OSError:
                break
            if (clean is not None
                    and clean == size
                    and clean >= len(segment_header())
                    and clean + incoming <= self._segment_bytes):
                name = candidate
            break  # only ever consider the newest segment
        if name is None:
            name = self._next_segment_name()
        self._writer = self._open_segment(name)
        self._writer_name = name
        self._segments.setdefault(name, len(segment_header()))
        return self._writer

    def _close_writer(self) -> None:
        if self._writer is not None:
            try:
                fsync_file(self._writer)
            except OSError:
                pass
            self._writer.close()
            self._writer = None
            self._writer_name = ""

    # ------------------------------------------------------------------
    # index snapshot, compaction, verification
    # ------------------------------------------------------------------

    def _index_payload(self) -> str:
        live = {ref.segment for ref in self._entries.values()}
        if self._writer_name:
            live.add(self._writer_name)
        segments = {name: clean for name, clean in self._segments.items()
                    if name in live}
        entries = [[key.hex(), ref.segment, ref.offset, ref.length,
                    ref.crc32] for key, ref in self._entries.items()]
        return json.dumps({
            "format": FORMAT_VERSION,
            "schema": VALUE_SCHEMA,
            "segments": segments,
            "entries": entries,
        }, sort_keys=True)

    def flush(self) -> None:
        """Durably snapshot the index (and fsync the open segment)."""
        self._require_open()
        if self._read_only:
            return
        if self._writer is not None:
            try:
                fsync_file(self._writer)
            except OSError:
                pass
        atomic_write_text(self._dir / INDEX_NAME, self._index_payload())
        self._dirty = 0

    def compact(self, max_bytes: int | None = None) -> CompactionReport:
        """Rewrite live entries into fresh segments, LRU-capped.

        Drops (a) payloads of overwritten/corrupt entries, (b) segments
        from foreign format versions, and (c) the least recently used
        entries beyond ``max_bytes`` (argument, else the store's cap).
        Crash-safe: new segments are fully written and fsynced before
        the index switches over; old segments are deleted last, and a
        crash in between merely leaves reclaimable files a future open
        re-scans or a future compaction removes.
        """
        self._require_open()
        if self._read_only:
            raise StoreError(f"store {self._dir} is open read-only")
        cap = self.max_bytes if max_bytes is None else max_bytes
        bytes_before = self.segment_bytes_on_disk
        segments_before = len(self._disk_segments())

        keep: list[tuple[bytes, _Ref]] = []
        total = 0
        dropped = 0
        for key, ref in reversed(list(self._entries.items())):
            if cap is not None and total + ref.length > cap:
                dropped += 1
                continue
            total += ref.length
            keep.append((key, ref))
        keep.reverse()  # restore oldest-first LRU order

        old_segments = self._disk_segments()
        self._close_writer()

        # copy surviving payloads into fresh segments
        new_entries: dict[bytes, _Ref] = {}
        new_segments: dict[str, int] = {}
        writer: BinaryIO | None = None
        writer_name = ""
        for key, ref in keep:
            fh = self._reader(ref.segment)
            payload = None
            if fh is not None:
                try:
                    fh.seek(ref.offset)
                    payload = fh.read(ref.length)
                except OSError:
                    payload = None
            if (payload is None or len(payload) != ref.length
                    or checksum(payload) != ref.crc32):
                self.stats.corrupt += 1
                continue
            frame = pack_frame(key, payload)
            if (writer is None or new_segments[writer_name] + len(frame)
                    > self._segment_bytes):
                if writer is not None:
                    fsync_file(writer)
                    writer.close()
                writer_name = self._bump_name(new_segments, old_segments)
                writer = open(self._dir / writer_name, "ab")
                header = segment_header()
                writer.write(header)
                new_segments[writer_name] = len(header)
            offset = new_segments[writer_name] + FRAME_HEADER.size
            writer.write(frame)
            new_segments[writer_name] += len(frame)
            new_entries[key] = _Ref(writer_name, offset, len(payload),
                                    ref.crc32)
        if writer is not None:
            fsync_file(writer)
            writer.close()
        fsync_dir(self._dir)

        # switch over: index first (atomic), then delete old segments
        for fh in self._readers.values():
            fh.close()
        self._readers.clear()
        self._entries = new_entries
        self._segments = new_segments
        atomic_write_text(self._dir / INDEX_NAME, self._index_payload())
        for name in old_segments:
            if name not in new_segments:
                try:
                    os.unlink(self._dir / name)
                except OSError:
                    pass
        fsync_dir(self._dir)
        self._dirty = 0
        self.stats.compactions += 1
        self.stats.evicted += dropped
        return CompactionReport(
            kept=len(new_entries), dropped=dropped,
            bytes_before=bytes_before,
            bytes_after=self.segment_bytes_on_disk,
            segments_before=segments_before,
            segments_after=len(new_segments))

    def _bump_name(self, new_segments: dict[str, int],
                   old: list[str]) -> str:
        highest = 0
        for name in list(new_segments) + list(old):
            match = _SEGMENT_RE.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"seg-{highest + 1:08d}.dat"

    def verify(self) -> VerifyReport:
        """Checksum and unpickle every entry; reports, never repairs."""
        self._require_open()
        corrupt: list[str] = []
        total = 0
        for key, ref in list(self._entries.items()):
            total += 1
            fh = self._reader(ref.segment)
            payload = None
            if fh is not None:
                try:
                    fh.seek(ref.offset)
                    payload = fh.read(ref.length)
                except OSError:
                    payload = None
            if (payload is None or len(payload) != ref.length
                    or checksum(payload) != ref.crc32):
                corrupt.append(f"{key.hex()} ({ref.segment}: bad checksum)")
                continue
            try:
                pickle.loads(payload)
            except Exception:  # noqa: BLE001 - any failure is corruption
                corrupt.append(f"{key.hex()} ({ref.segment}: unpicklable)")
        return VerifyReport(entries=total, corrupt=tuple(corrupt))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush the index, optionally compact over-cap, close handles."""
        if self._closed:
            return
        try:
            if not self._read_only:
                if (self.max_bytes is not None
                        and self.live_bytes > self.max_bytes):
                    self.compact()
                self.flush()
        finally:
            self._close_writer()
            for fh in self._readers.values():
                fh.close()
            self._readers.clear()
            self._closed = True

    def __enter__(self) -> "AnalysisStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AnalysisStore({str(self._dir)!r}, "
                f"entries={len(self._entries)}, "
                f"read_only={self._read_only})")
