"""Packet record used by the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet"]


@dataclass
class Packet:
    """One simulated packet.

    Attributes
    ----------
    flow:
        Name of the owning flow.
    seq:
        Sequence number within the flow (0-based, emission order).
    size:
        Size in data units (same units as curve values).
    created:
        Network-entry timestamp.
    priority:
        Priority inherited from the flow (for SP servers).
    hop_index:
        Index of the *next* server on the flow's path to visit.
    completed:
        Network-exit timestamp, set when the packet leaves its last
        server; None while in flight.
    hop_arrival:
        Arrival timestamp at the server currently holding the packet
        (used to attribute per-hop delays).
    """

    flow: str
    seq: int
    size: float
    created: float
    priority: int = 0
    hop_index: int = 0
    completed: float | None = None
    hop_arrival: float = 0.0

    @property
    def delay(self) -> float:
        """End-to-end delay; raises if the packet has not completed."""
        if self.completed is None:
            raise ValueError(
                f"packet {self.flow}#{self.seq} has not completed")
        return self.completed - self.created
