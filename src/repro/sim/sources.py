"""Traffic sources for the simulator.

Every source emits a conformant packet stream for a token-bucket
descriptor: the emitted traffic never violates
``b(I) = min(peak I, sigma + rho I)``, so the analytic delay bounds must
dominate every simulated delay — the soundness property the test suite
checks.

* :class:`GreedySource` — the adversarial pattern: a full-bucket burst at
  a chosen start time (emitted at peak rate), followed by steady-rate
  traffic.  Worst cases of FIFO tandems are built from such greedy
  phases, so this source gets the observed delays closest to the bounds.
* :class:`OnOffSource` — random exponential on/off phases run through an
  explicit token-bucket shaper (conformance by construction).
* :class:`ShapedRandomSource` — Poisson arrivals through the same
  shaper.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.curves.token_bucket import TokenBucket
from repro.errors import SimulationError
from repro.utils.validation import check_positive

__all__ = [
    "Source",
    "GreedySource",
    "OnOffSource",
    "ShapedRandomSource",
    "shape_times",
]


class Source(abc.ABC):
    """Generates packet emission times for one flow."""

    def __init__(self, bucket: TokenBucket, packet_size: float) -> None:
        if packet_size > bucket.sigma and bucket.sigma > 0:
            raise SimulationError(
                f"packet size {packet_size} exceeds bucket depth "
                f"{bucket.sigma}; stream cannot conform")
        check_positive("packet_size", packet_size)
        self.bucket = bucket
        self.packet_size = float(packet_size)

    @abc.abstractmethod
    def emission_times(self, horizon: float) -> np.ndarray:
        """Sorted emission timestamps within ``[0, horizon]``."""


def shape_times(candidate_times: np.ndarray, bucket: TokenBucket,
                packet_size: float) -> np.ndarray:
    """Push candidate emission instants through a token-bucket shaper.

    Each packet needs ``packet_size`` tokens; tokens accrue at ``rho`` up
    to depth ``sigma``.  A peak-rate limit additionally enforces a
    minimum spacing of ``packet_size / peak``.  Packets are delayed (not
    dropped) until conformant, preserving order.
    """
    sigma, rho, peak = bucket.sigma, bucket.rho, bucket.peak
    min_gap = 0.0 if math.isinf(peak) else packet_size / peak
    out = np.empty(candidate_times.size)
    tokens = sigma
    last_update = 0.0
    last_emit = -math.inf
    for i, t in enumerate(np.sort(candidate_times)):
        t = float(t)
        # earliest conformant time >= t
        tokens = min(sigma, tokens + rho * (t - last_update))
        last_update = t
        emit = t
        if tokens < packet_size:
            if rho <= 0:
                raise SimulationError("zero-rate bucket ran out of tokens")
            emit = t + (packet_size - tokens) / rho
        emit = max(emit, last_emit + min_gap)
        tokens = min(sigma, tokens + rho * (emit - last_update))
        tokens -= packet_size
        last_update = emit
        last_emit = emit
        out[i] = emit
    return out


class GreedySource(Source):
    """Burst-then-rate (greedy) emission pattern.

    Parameters
    ----------
    bucket:
        Traffic descriptor.
    packet_size:
        Packet size (data units).
    start:
        When the greedy phase begins; nothing is emitted before.
    """

    def __init__(self, bucket: TokenBucket, packet_size: float,
                 start: float = 0.0) -> None:
        super().__init__(bucket, packet_size)
        if start < 0:
            raise SimulationError(f"start must be >= 0, got {start}")
        self.start = float(start)

    def emission_times(self, horizon: float) -> np.ndarray:
        check_positive("horizon", horizon)
        if horizon <= self.start:
            return np.empty(0)
        L = self.packet_size
        sigma, rho = self.bucket.sigma, self.bucket.rho
        # Candidates: the whole bucket at `start`, then the steady-rate
        # stream; the shaper enforces exact conformance (peak spacing,
        # token refill) so candidates only need to be maximally eager.
        n_burst = max(1, int(sigma // L))
        cands = [self.start] * n_burst
        if rho > 0:
            step = L / rho
            n_steady = int((horizon - self.start) / step) + 1
            cands.extend(self.start + k * step for k in range(n_steady))
        shaped = shape_times(np.asarray(cands), self.bucket, L)
        return shaped[shaped <= horizon]


class OnOffSource(Source):
    """Random exponential on/off traffic through a token-bucket shaper."""

    def __init__(self, bucket: TokenBucket, packet_size: float,
                 mean_on: float = 5.0, mean_off: float = 5.0,
                 seed: int = 0) -> None:
        super().__init__(bucket, packet_size)
        check_positive("mean_on", mean_on)
        check_positive("mean_off", mean_off)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.seed = int(seed)

    def emission_times(self, horizon: float) -> np.ndarray:
        check_positive("horizon", horizon)
        rng = np.random.default_rng(self.seed)
        peak = self.bucket.peak
        burst_rate = peak if math.isfinite(peak) else \
            max(4.0 * self.bucket.rho, 1.0)
        gap = self.packet_size / burst_rate
        t = 0.0
        cands: list[float] = []
        while t < horizon:
            on_len = rng.exponential(self.mean_on)
            end = min(t + on_len, horizon)
            while t < end:
                cands.append(t)
                t += gap
            t = end + rng.exponential(self.mean_off)
        if not cands:
            return np.empty(0)
        return shape_times(np.asarray(cands), self.bucket,
                           self.packet_size)


class ShapedRandomSource(Source):
    """Poisson candidate arrivals through a token-bucket shaper."""

    def __init__(self, bucket: TokenBucket, packet_size: float,
                 intensity_factor: float = 1.5, seed: int = 0) -> None:
        super().__init__(bucket, packet_size)
        check_positive("intensity_factor", intensity_factor)
        self.intensity_factor = float(intensity_factor)
        self.seed = int(seed)

    def emission_times(self, horizon: float) -> np.ndarray:
        check_positive("horizon", horizon)
        rng = np.random.default_rng(self.seed)
        lam = self.intensity_factor * self.bucket.rho / self.packet_size
        if lam <= 0:
            return np.empty(0)
        n = rng.poisson(lam * horizon)
        cands = np.sort(rng.uniform(0.0, horizon, size=n))
        if cands.size == 0:
            return np.empty(0)
        return shape_times(cands, self.bucket, self.packet_size)
