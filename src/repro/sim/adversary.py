"""Adversarial source scheduling against a target flow.

Synchronized greedy bursts (every source fires at t=0) are the default
stress pattern, but the worst case for a multi-hop flow has the cross
traffic at hop ``k`` fire *when the target's backlog front arrives
there*, not at t=0.  This module computes such a stagger schedule from
the analysis itself: the target's front is estimated to reach hop ``k``
after a fraction of the upstream local delay bounds, and every cross
flow starts its greedy phase at the estimated arrival time for its
first server shared with the target.

This is a heuristic — finding the exact worst case is a hard
optimization — but it consistently pushes the observed delay closer to
the integrated bound than synchronized bursts (see
``benchmarks/bench_validation.py``), which is evidence the bounds are
not just sound but reasonably tight.
"""

from __future__ import annotations

from typing import Hashable

from repro.analysis.propagation import propagate
from repro.network.topology import Network
from repro.sim.simulator import simulate_greedy
from repro.sim.trace import SimulationResult
from repro.utils.validation import check_positive

__all__ = ["adversarial_stagger", "simulate_adversarial"]

ServerId = Hashable


def adversarial_stagger(network: Network, target: str,
                        front_fraction: float = 0.5,
                        ) -> dict[str, float]:
    """Greedy-phase start times aimed at maximizing *target*'s delay.

    Parameters
    ----------
    network:
        The network (must be feed-forward — the estimate uses the
        decomposition sweep).
    target:
        Flow whose delay the schedule attacks; it starts at 0.
    front_fraction:
        Fraction of each upstream local delay bound used as the
        front-propagation estimate (the burst front moves faster than
        the worst-case *last* bit; 0.5 works well empirically).

    Returns
    -------
    dict
        Flow name -> greedy start time.
    """
    if not (0.0 <= front_fraction <= 1.0):
        raise ValueError(
            f"front_fraction must be in [0,1], got {front_fraction}")
    tgt = network.flow(target)
    prop = propagate(network)

    eta: dict[ServerId, float] = {}
    t = 0.0
    for sid in tgt.path:
        eta[sid] = t
        t += front_fraction * prop.local[sid].delay_by_flow[target]

    stagger = {target: 0.0}
    for flow in network.iter_flows():
        if flow.name == target:
            continue
        shared = [sid for sid in flow.path if sid in eta]
        stagger[flow.name] = eta[shared[0]] if shared else 0.0
    return stagger


def simulate_adversarial(network: Network, target: str, horizon: float,
                         packet_size: float = 0.05,
                         front_fraction: float = 0.5,
                         ) -> SimulationResult:
    """Greedy simulation with the adversarial stagger against *target*."""
    check_positive("horizon", horizon)
    stagger = adversarial_stagger(network, target, front_fraction)
    return simulate_greedy(network, horizon=horizon,
                           packet_size=packet_size, stagger=stagger)
