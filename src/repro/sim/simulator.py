"""Event-driven packet-level network simulator.

Validates the analytic machinery: any conformant packet stream pushed
through the simulated FIFO/SP servers must observe end-to-end delays no
larger than the analytic bounds (up to packetization: the fluid analyses
ignore the quantization of service into packets, which can add at most
one packet transmission time per hop).

The engine is a classic future-event-list simulation over two event
kinds: packet arrival at a server, and service completion at a server.
Propagation delays between servers are zero, matching the analyses.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.network.topology import Discipline, Network
from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue, ServerQueue, StaticPriorityQueue
from repro.sim.sources import GreedySource, Source
from repro.sim.trace import FlowStats, SimulationResult
from repro.utils.validation import check_positive

__all__ = ["NetworkSimulator", "simulate_greedy"]

_ARRIVAL = 0
_DEPARTURE = 1


@dataclass
class _ServerState:
    queue: ServerQueue
    capacity: float
    busy: bool = False
    in_service: Packet | None = None
    max_backlog: float = 0.0


class NetworkSimulator:
    """Simulate a network under given per-flow sources.

    Parameters
    ----------
    network:
        The network to simulate (FIFO and static-priority servers are
        supported; guaranteed-rate servers are not simulated).
    sources:
        Mapping from flow name to a :class:`repro.sim.sources.Source`.
        Every flow of the network must have a source.
    """

    def __init__(self, network: Network,
                 sources: Mapping[str, Source]) -> None:
        self.network = network
        missing = set(network.flows) - set(sources)
        if missing:
            raise SimulationError(
                f"no source for flows: {sorted(missing)}")
        for sid, spec in network.servers.items():
            if spec.discipline == Discipline.GUARANTEED_RATE:
                raise SimulationError(
                    f"server {sid!r}: guaranteed-rate servers are not "
                    "simulated (use FIFO or static priority)")
        self.sources = dict(sources)

    # ------------------------------------------------------------------

    def _make_queue(self, discipline: str) -> ServerQueue:
        if discipline == Discipline.STATIC_PRIORITY:
            return StaticPriorityQueue()
        return FifoQueue()

    def run(self, horizon: float) -> SimulationResult:
        """Run the simulation for ``[0, horizon]``.

        Packets emitted before the horizon are simulated to completion
        (the event loop drains), so worst-case delays near the end of
        the horizon are not truncated.
        """
        check_positive("horizon", horizon)
        net = self.network
        states: dict[Hashable, _ServerState] = {
            sid: _ServerState(self._make_queue(spec.discipline),
                              spec.capacity)
            for sid, spec in net.servers.items()
        }

        counter = itertools.count()
        events: list[tuple[float, int, int, object]] = []

        def push_event(t: float, kind: int, payload) -> None:
            heapq.heappush(events, (t, kind, next(counter), payload))

        completed: dict[str, list[float]] = {
            name: [] for name in net.flows}
        hop_worst: dict[tuple[str, Hashable], float] = {}
        n_emitted = 0
        for name, flow in net.flows.items():
            times = self.sources[name].emission_times(horizon)
            for seq, t in enumerate(np.asarray(times, dtype=float)):
                pkt = Packet(flow=name, seq=seq,
                             size=self.sources[name].packet_size,
                             created=float(t), priority=flow.priority,
                             hop_arrival=float(t))
                push_event(float(t), _ARRIVAL, (flow.path[0], pkt))
                n_emitted += 1

        def start_service(sid: Hashable, now: float) -> None:
            st = states[sid]
            if st.busy or len(st.queue) == 0:
                return
            pkt = st.queue.pop()
            st.busy = True
            st.in_service = pkt
            push_event(now + pkt.size / st.capacity, _DEPARTURE, (sid, None))

        while events:
            now, kind, _tick, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                sid, pkt = payload
                st = states[sid]
                st.queue.push(pkt)
                backlog = st.queue.backlog()
                if st.in_service is not None:
                    backlog += st.in_service.size
                st.max_backlog = max(st.max_backlog, backlog)
                start_service(sid, now)
            else:
                sid, _ = payload
                st = states[sid]
                pkt = st.in_service
                if pkt is None:  # pragma: no cover - engine invariant
                    raise SimulationError("departure from idle server")
                st.busy = False
                st.in_service = None
                flow = net.flow(pkt.flow)
                key = (pkt.flow, sid)
                hop_delay = now - pkt.hop_arrival
                if hop_delay > hop_worst.get(key, 0.0):
                    hop_worst[key] = hop_delay
                pkt.hop_index += 1
                pkt.hop_arrival = now
                if pkt.hop_index < len(flow.path):
                    push_event(now, _ARRIVAL,
                               (flow.path[pkt.hop_index], pkt))
                else:
                    pkt.completed = now
                    completed[pkt.flow].append(pkt.delay)
                start_service(sid, now)

        stats = {
            name: FlowStats.from_delays(name, np.asarray(ds))
            for name, ds in completed.items()
        }
        n_done = sum(s.count for s in stats.values())
        return SimulationResult(
            stats=stats,
            max_backlog={sid: st.max_backlog
                         for sid, st in states.items()},
            duration=horizon,
            packets_completed=n_done,
            packets_in_flight=n_emitted - n_done,
            hop_max_delay=dict(hop_worst),
        )


def simulate_greedy(network: Network, horizon: float,
                    packet_size: float = 0.05,
                    stagger: Mapping[str, float] | None = None,
                    ) -> SimulationResult:
    """Convenience: simulate with greedy sources on every flow.

    Parameters
    ----------
    network:
        Network to simulate.
    horizon:
        Emission horizon (packets emitted by then are drained fully).
    packet_size:
        Uniform packet size; smaller approximates the fluid analyses
        better (at higher simulation cost).
    stagger:
        Optional per-flow greedy-phase start times; default all 0
        (synchronized bursts — the classic adversarial pattern).
    """
    stagger = dict(stagger or {})
    sources: dict[str, Source] = {}
    for name, flow in network.flows.items():
        L = min(packet_size, flow.bucket.sigma) \
            if flow.bucket.sigma > 0 else packet_size
        sources[name] = GreedySource(flow.bucket, L,
                                     start=stagger.get(name, 0.0))
    return NetworkSimulator(network, sources).run(horizon)
