"""Packet-level discrete-event simulator (system S11 in DESIGN.md)."""

from repro.sim.adversary import adversarial_stagger, simulate_adversarial
from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue, ServerQueue, StaticPriorityQueue
from repro.sim.simulator import NetworkSimulator, simulate_greedy
from repro.sim.sources import (
    GreedySource,
    OnOffSource,
    ShapedRandomSource,
    Source,
    shape_times,
)
from repro.sim.trace import FlowStats, SimulationResult

__all__ = [
    "Packet",
    "adversarial_stagger",
    "simulate_adversarial",
    "ServerQueue",
    "FifoQueue",
    "StaticPriorityQueue",
    "NetworkSimulator",
    "simulate_greedy",
    "Source",
    "GreedySource",
    "OnOffSource",
    "ShapedRandomSource",
    "shape_times",
    "FlowStats",
    "SimulationResult",
]
