"""Server queue models for the simulator.

Each queue holds packets awaiting service at one simulated server and
implements the discipline's selection rule:

* :class:`FifoQueue` — arrival order;
* :class:`StaticPriorityQueue` — lowest priority value first,
  non-preemptive, FIFO within a priority level.
"""

from __future__ import annotations

import abc
from collections import deque

from repro.sim.packet import Packet

__all__ = ["ServerQueue", "FifoQueue", "StaticPriorityQueue"]


class ServerQueue(abc.ABC):
    """Interface of a per-server packet queue."""

    @abc.abstractmethod
    def push(self, packet: Packet) -> None:
        """Enqueue an arriving packet."""

    @abc.abstractmethod
    def pop(self) -> Packet:
        """Dequeue the next packet to serve (raises IndexError if empty)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of queued packets."""

    def backlog(self) -> float:
        """Total queued data (sum of packet sizes)."""
        return sum(p.size for p in self._iter_packets())

    @abc.abstractmethod
    def _iter_packets(self):
        """Iterate queued packets (any order)."""


class FifoQueue(ServerQueue):
    """First-in-first-out queue."""

    def __init__(self) -> None:
        self._q: deque[Packet] = deque()

    def push(self, packet: Packet) -> None:
        self._q.append(packet)

    def pop(self) -> Packet:
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    def _iter_packets(self):
        return iter(self._q)


class StaticPriorityQueue(ServerQueue):
    """Non-preemptive static priority, FIFO within a level."""

    def __init__(self) -> None:
        self._levels: dict[int, deque[Packet]] = {}

    def push(self, packet: Packet) -> None:
        self._levels.setdefault(packet.priority, deque()).append(packet)

    def pop(self) -> Packet:
        for level in sorted(self._levels):
            q = self._levels[level]
            if q:
                return q.popleft()
        raise IndexError("pop from empty StaticPriorityQueue")

    def __len__(self) -> int:
        return sum(len(q) for q in self._levels.values())

    def _iter_packets(self):
        for q in self._levels.values():
            yield from q
