"""Simulation result records and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["FlowStats", "SimulationResult"]


@dataclass(frozen=True)
class FlowStats:
    """Delay statistics of one flow's completed packets."""

    flow: str
    count: int
    max_delay: float
    mean_delay: float
    p99_delay: float

    @classmethod
    def from_delays(cls, flow: str, delays: np.ndarray) -> "FlowStats":
        if delays.size == 0:
            return cls(flow, 0, 0.0, 0.0, 0.0)
        return cls(
            flow=flow,
            count=int(delays.size),
            max_delay=float(np.max(delays)),
            mean_delay=float(np.mean(delays)),
            p99_delay=float(np.percentile(delays, 99)),
        )


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one simulation run.

    Attributes
    ----------
    stats:
        Per-flow delay statistics (completed packets only).
    max_backlog:
        Largest observed backlog per server (data units).
    duration:
        Simulated horizon.
    packets_completed / packets_in_flight:
        Completion accounting — in-flight packets at the horizon are
        excluded from the delay statistics.
    hop_max_delay:
        Largest observed per-hop delay keyed by ``(flow, server_id)``
        (arrival at the server to departure from it) — used to validate
        *local* analytic bounds, not just end-to-end ones.
    """

    stats: Mapping[str, FlowStats]
    max_backlog: Mapping[object, float]
    duration: float
    packets_completed: int
    packets_in_flight: int
    hop_max_delay: Mapping[tuple, float] = field(default_factory=dict)

    def max_hop_delay(self, flow: str, server_id) -> float:
        """Largest observed delay of *flow* at *server_id* (0 if none)."""
        return self.hop_max_delay.get((flow, server_id), 0.0)

    def max_delay(self, flow: str) -> float:
        """Largest observed end-to-end delay of one flow."""
        return self.stats[flow].max_delay

    def observed_worst(self) -> float:
        """Largest observed delay across all flows."""
        if not self.stats:
            return 0.0
        return max(s.max_delay for s in self.stats.values())
