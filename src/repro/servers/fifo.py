"""FIFO server analysis (paper §2.1, after Cruz).

For a FIFO server of capacity ``C`` whose aggregate arrivals are
constrained by ``G(t)`` (paper eq. (6)):

* every bit's delay is bounded by the horizontal deviation
  ``d = max_{t <= B} (G(t)/C - t)`` — FIFO serves in arrival order, so
  all flows at the server share this bound;
* the backlog is bounded by the vertical deviation
  ``max_t (G(t) - C t)``;
* the maximum busy period ``B`` is the first positive crossing of ``G``
  below ``C t`` (paper's ``B_j``);
* a flow entering with constraint ``b(.)`` and leaving after at most
  ``d`` is constrained at the output by ``b(I + d)`` (Cruz), optionally
  intersected with the server's line rate ``C * I`` — the *capped*
  output used by the integrated method.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.curves.operations import busy_period as _busy_period
from repro.curves.operations import hdev as _hdev
from repro.curves.operations import vdev as _vdev
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import InstabilityError
from repro.servers.base import LocalAnalysis
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "fifo_delay_bound",
    "fifo_backlog_bound",
    "fifo_busy_period",
    "fifo_local_analysis",
    "cruz_output_curve",
    "capped_output_curve",
]


def _check_stable(aggregate: PiecewiseLinearCurve, capacity: float) -> None:
    if aggregate.long_term_rate() >= capacity:
        raise InstabilityError(
            f"aggregate rate {aggregate.long_term_rate():g} >= capacity "
            f"{capacity:g}; FIFO delay bound does not exist",
            rate=aggregate.long_term_rate(), capacity=capacity)


def fifo_delay_bound(aggregate: PiecewiseLinearCurve,
                     capacity: float) -> float:
    """Worst-case delay at a FIFO server: ``max_t (G(t)/C - t)``.

    Dispatched on the active curve kernel (exact by default; the grid
    backend pads its sampled deviation to dominate the exact bound —
    see ``docs/KERNELS.md``).
    """
    check_positive("capacity", capacity)
    _check_stable(aggregate, capacity)
    return _hdev(aggregate, PiecewiseLinearCurve.line(capacity))


def fifo_backlog_bound(aggregate: PiecewiseLinearCurve,
                       capacity: float) -> float:
    """Worst-case backlog at a FIFO server: ``max_t (G(t) - C t)``.

    Kernel-dispatched like :func:`fifo_delay_bound`.
    """
    check_positive("capacity", capacity)
    _check_stable(aggregate, capacity)
    return _vdev(aggregate, PiecewiseLinearCurve.line(capacity))


def fifo_busy_period(aggregate: PiecewiseLinearCurve,
                     capacity: float) -> float:
    """Maximum busy-period length ``B_j`` of a work-conserving server."""
    check_positive("capacity", capacity)
    return _busy_period(aggregate, capacity)


def fifo_local_analysis(curves_by_flow: Mapping[str, PiecewiseLinearCurve],
                        capacity: float) -> LocalAnalysis:
    """Complete local analysis of one FIFO server.

    Parameters
    ----------
    curves_by_flow:
        Constraint curve of each flow *at this server's input*.
    capacity:
        Server rate.
    """
    agg = PiecewiseLinearCurve.zero()
    for c in curves_by_flow.values():
        agg = agg + c
    agg = agg.simplified()
    d = fifo_delay_bound(agg, capacity)
    return LocalAnalysis(
        delay_by_flow={name: d for name in curves_by_flow},
        backlog=fifo_backlog_bound(agg, capacity),
        busy_period=fifo_busy_period(agg, capacity),
        aggregate=agg,
    )


def cruz_output_curve(input_curve: PiecewiseLinearCurve,
                      delay: float) -> PiecewiseLinearCurve:
    """Cruz's output characterization ``b_out(I) = b_in(I + d)``.

    The classical (uncapped) propagation used by Algorithm Decomposed.
    """
    check_nonnegative("delay", delay)
    if math.isinf(delay):
        raise ValueError("delay bound is infinite; cannot characterize "
                         "output traffic")
    return input_curve.shift_left_x(delay)


def capped_output_curve(input_curve: PiecewiseLinearCurve, delay: float,
                        capacity: float) -> PiecewiseLinearCurve:
    """Line-rate-capped output ``min(C * I, b_in(I + d))``.

    A server of rate ``C`` cannot emit more than ``C`` per unit time over
    *any* interval, so the cap is always sound; it encodes the
    self-regulation effect the integrated method exploits (paper §1.3).
    """
    check_positive("capacity", capacity)
    shifted = cruz_output_curve(input_curve, delay)
    return shifted.minimum(PiecewiseLinearCurve.line(capacity))
