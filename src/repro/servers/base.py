"""Shared definitions for per-server (local) analyses.

A *local analysis* looks at one work-conserving server in isolation: it
receives the constraint curves of every flow currently entering the
server and produces per-flow worst-case delay bounds, a backlog bound and
the maximum busy-period length.  The decomposition-based and integrated
end-to-end algorithms both build on these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.curves.piecewise import PiecewiseLinearCurve

__all__ = ["LocalAnalysis"]


@dataclass(frozen=True)
class LocalAnalysis:
    """Result of analyzing a single server.

    Attributes
    ----------
    delay_by_flow:
        Worst-case queueing+transmission delay bound per flow name.  For
        FIFO all flows share one value; for static priority the bounds
        differ per priority class.
    backlog:
        Worst-case total backlog bound at the server (data units).
    busy_period:
        Maximum busy-period length ``B_j`` (paper's Theorem 1 needs it).
    aggregate:
        The aggregate arrival-constraint curve ``G_j`` used.
    """

    delay_by_flow: Mapping[str, float]
    backlog: float
    busy_period: float
    aggregate: PiecewiseLinearCurve = field(compare=False)

    @property
    def max_delay(self) -> float:
        """The largest per-flow delay bound at this server."""
        return max(self.delay_by_flow.values()) if self.delay_by_flow else 0.0
