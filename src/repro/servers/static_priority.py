"""Static-priority (SP) server analysis.

The paper's conclusion announces the extension of the integrated approach
to static-priority servers (the authors' companion RTSS'97 work analyzes
SP networks with decomposition).  This module provides the sound local SP
bound used by experiment EXT1:

Priority levels are integers, **lower value = higher priority**; flows of
the same priority are served FIFO among themselves.  A class ``p`` flow
is guaranteed the *leftover* service curve

``beta_p(t) = [C t - sum_{q < p} G_q(t)]^+``

(blind multiplexing against strictly-higher-priority traffic — for fluid
service this is exact for preemptive SP and conservative by at most one
maximum packet time for non-preemptive SP), and within the class FIFO
applies, so the class delay bound is the horizontal deviation between the
class aggregate ``G_p`` and ``beta_p``.
"""

from __future__ import annotations

from typing import Mapping

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import InstabilityError
from repro.servers.base import LocalAnalysis
from repro.servers.fifo import fifo_busy_period
from repro.utils.validation import check_positive

__all__ = ["sp_leftover_curve", "sp_delay_bounds", "sp_local_analysis"]


def sp_leftover_curve(capacity: float,
                      higher_aggregate: PiecewiseLinearCurve,
                      ) -> PiecewiseLinearCurve:
    """Leftover service curve after serving higher-priority traffic.

    ``beta(t) = [C t - G_hp(t)]^+``; convex whenever ``G_hp`` is concave.
    """
    check_positive("capacity", capacity)
    line = PiecewiseLinearCurve.line(capacity)
    return (line - higher_aggregate).positive_part()


def sp_delay_bounds(curves_by_flow: Mapping[str, PiecewiseLinearCurve],
                    priority_by_flow: Mapping[str, int],
                    capacity: float) -> dict[str, float]:
    """Per-flow delay bounds at one static-priority server.

    Parameters
    ----------
    curves_by_flow:
        Constraint curve of each flow at this server's input.
    priority_by_flow:
        Priority level per flow (lower = more urgent); flows missing from
        the mapping raise ``KeyError``.
    capacity:
        Server rate.

    Raises
    ------
    InstabilityError
        When the total arrival rate reaches the capacity (then the lowest
        class has no bound).
    """
    check_positive("capacity", capacity)
    total_rate = sum(c.long_term_rate() for c in curves_by_flow.values())
    if total_rate >= capacity:
        raise InstabilityError(
            f"aggregate rate {total_rate:g} >= capacity {capacity:g}",
            rate=total_rate, capacity=capacity)

    levels = sorted({priority_by_flow[name] for name in curves_by_flow})
    bounds: dict[str, float] = {}
    hp_aggregate = PiecewiseLinearCurve.zero()
    for level in levels:
        class_names = [n for n in curves_by_flow
                       if priority_by_flow[n] == level]
        class_agg = PiecewiseLinearCurve.zero()
        for n in class_names:
            class_agg = class_agg + curves_by_flow[n]
        beta = sp_leftover_curve(capacity, hp_aggregate)
        d = class_agg.horizontal_deviation(beta)
        for n in class_names:
            bounds[n] = d
        hp_aggregate = (hp_aggregate + class_agg).simplified()
    return bounds


def sp_local_analysis(curves_by_flow: Mapping[str, PiecewiseLinearCurve],
                      priority_by_flow: Mapping[str, int],
                      capacity: float) -> LocalAnalysis:
    """Complete local analysis of one static-priority server."""
    bounds = sp_delay_bounds(curves_by_flow, priority_by_flow, capacity)
    agg = PiecewiseLinearCurve.zero()
    for c in curves_by_flow.values():
        agg = agg + c
    agg = agg.simplified()
    line = PiecewiseLinearCurve.line(capacity)
    return LocalAnalysis(
        delay_by_flow=bounds,
        backlog=agg.vertical_deviation(line),
        busy_period=fifo_busy_period(agg, capacity),
        aggregate=agg,
    )
