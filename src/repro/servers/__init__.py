"""Per-server (local) scheduling analyses (systems S5–S7 in DESIGN.md)."""

from repro.servers.base import LocalAnalysis
from repro.servers.fifo import (
    capped_output_curve,
    cruz_output_curve,
    fifo_backlog_bound,
    fifo_busy_period,
    fifo_delay_bound,
    fifo_local_analysis,
)
from repro.servers.static_priority import (
    sp_delay_bounds,
    sp_leftover_curve,
    sp_local_analysis,
)
from repro.servers.packetized import (
    packetization_slack,
    packetize_report,
    packetized_arrival_curve,
)
from repro.servers.guaranteed_rate import (
    gr_delay_bounds,
    gr_local_analysis,
    rate_latency_curve,
    wfq_service_curve,
)

__all__ = [
    "LocalAnalysis",
    "fifo_delay_bound",
    "fifo_backlog_bound",
    "fifo_busy_period",
    "fifo_local_analysis",
    "cruz_output_curve",
    "capped_output_curve",
    "sp_delay_bounds",
    "sp_leftover_curve",
    "sp_local_analysis",
    "gr_delay_bounds",
    "gr_local_analysis",
    "rate_latency_curve",
    "wfq_service_curve",
    "packetization_slack",
    "packetize_report",
    "packetized_arrival_curve",
]
