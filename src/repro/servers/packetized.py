"""Packetization corrections for the fluid analyses.

The paper's setting is ATM: traffic moves in fixed 53-byte cells, while
the delay analyses (here and in the paper) are *fluid* — they treat
traffic as infinitely divisible.  Two corrections connect the models:

* **Service quantization** — a store-and-forward server finishes a
  packet before starting the next one; relative to the fluid bound, the
  *last bit* of a packet can leave up to one packet transmission time
  ``L / C`` later at each hop.
* **Arrival quantization** — a packetized source releases whole packets
  at once, so its arrival curve is the fluid constraint plus up to one
  packet: ``b(I) + L``.

The corrected end-to-end bound for an ``m``-hop path is therefore

``d_packet <= d_fluid(with inflated arrival curves) + m * L / C``

with the conservative variant implemented here inflating only the slack
term (arrival inflation is optional; for cell-scale ``L`` both terms are
tiny).  These corrections are exactly the "slack" the integration tests
grant the packet-level simulator; this module makes them part of the
public API so users can certify *packet* deadlines, not just fluid
ones.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.base import DelayReport, FlowDelay
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.network.topology import Network
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "packetization_slack",
    "packetized_arrival_curve",
    "packetize_report",
]


def packetization_slack(n_hops: int, max_packet: float,
                        capacity: float) -> float:
    """Per-path service-quantization slack ``m * L / C``."""
    if n_hops < 0:
        raise ValueError(f"n_hops must be >= 0, got {n_hops}")
    check_nonnegative("max_packet", max_packet)
    check_positive("capacity", capacity)
    return n_hops * max_packet / capacity


def packetized_arrival_curve(fluid: PiecewiseLinearCurve,
                             max_packet: float) -> PiecewiseLinearCurve:
    """The packet-release envelope ``b(I) + L`` of a fluid constraint."""
    check_nonnegative("max_packet", max_packet)
    return fluid + float(max_packet)


def packetize_report(report: DelayReport, network: Network,
                     max_packet: float) -> DelayReport:
    """Convert a fluid :class:`DelayReport` into packet-level bounds.

    Each flow's bound gains ``L / C_j`` per traversed server ``j``
    (attached to the matching contribution so the breakdown stays
    consistent).  Works uniformly for decomposition, integrated and
    feedback reports because contributions are keyed by server blocks.
    """
    check_nonnegative("max_packet", max_packet)
    new_delays: dict[str, FlowDelay] = {}
    for name, fd in report.delays.items():
        flow = network.flow(name)
        slack_total = sum(
            max_packet / network.server(sid).capacity
            for sid in flow.path)
        if fd.contributions:
            parts = []
            for element, delay in fd.contributions:
                servers = element if isinstance(element, tuple) \
                    else (element,)
                extra = sum(max_packet / network.server(s).capacity
                            for s in servers if s in flow.path)
                parts.append((element, delay + extra))
            new_delays[name] = FlowDelay(
                flow=name,
                total=fd.total + slack_total,
                contributions=tuple(parts),
            )
        else:
            new_delays[name] = replace(fd, total=fd.total + slack_total)
    meta = dict(report.meta)
    meta["max_packet"] = float(max_packet)
    meta["fluid_algorithm"] = report.algorithm
    return DelayReport(algorithm=f"{report.algorithm}+packetized",
                       delays=new_delays, meta=meta)
