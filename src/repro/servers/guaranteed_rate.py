"""Guaranteed-rate (GR) server models.

The paper contrasts FIFO with guaranteed-rate disciplines (fair queueing,
virtual clock, …) for which tight per-flow service curves *do* exist —
the rate-latency family (Stiliadis & Varma's latency-rate servers).  This
module provides those curves so examples and tests can show the
service-curve method working well where it is supposed to (GR servers)
and poorly where the paper shows it fails (FIFO servers).
"""

from __future__ import annotations

from typing import Mapping

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import AnalysisError
from repro.servers.base import LocalAnalysis
from repro.servers.fifo import fifo_busy_period
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "rate_latency_curve",
    "wfq_service_curve",
    "gr_delay_bounds",
    "gr_local_analysis",
]


def rate_latency_curve(rate: float, latency: float) -> PiecewiseLinearCurve:
    """The rate-latency service curve ``R [t - T]^+``."""
    check_positive("rate", rate)
    check_nonnegative("latency", latency)
    return PiecewiseLinearCurve.rate_latency(rate, latency)


def wfq_service_curve(reserved_rate: float, capacity: float,
                      max_packet: float = 0.0) -> PiecewiseLinearCurve:
    """Per-flow service curve of a WFQ/PGPS server.

    Parekh–Gallager: a flow with reserved rate ``r`` at a PGPS server of
    capacity ``C`` and maximum packet size ``L`` receives the rate-latency
    curve with rate ``r`` and latency ``L/r + L/C`` (0 in the fluid
    limit).
    """
    check_positive("reserved_rate", reserved_rate)
    check_positive("capacity", capacity)
    check_nonnegative("max_packet", max_packet)
    if reserved_rate > capacity:
        raise AnalysisError(
            f"reserved rate {reserved_rate:g} exceeds capacity {capacity:g}")
    latency = (max_packet / reserved_rate + max_packet / capacity
               if max_packet > 0 else 0.0)
    return rate_latency_curve(reserved_rate, latency)


def gr_delay_bounds(curves_by_flow: Mapping[str, PiecewiseLinearCurve],
                    reserved_rates: Mapping[str, float],
                    capacity: float,
                    max_packet: float = 0.0) -> dict[str, float]:
    """Per-flow delay bounds at a guaranteed-rate server.

    Each flow's bound is the horizontal deviation between its own
    constraint curve and its private rate-latency service curve — flows
    are isolated from each other, which is exactly why service-curve
    analysis is effective for GR disciplines (paper §1.2).
    """
    check_positive("capacity", capacity)
    total = sum(reserved_rates[name] for name in curves_by_flow)
    if total > capacity * (1 + 1e-12):
        raise AnalysisError(
            f"sum of reserved rates {total:g} exceeds capacity {capacity:g}")
    bounds = {}
    for name, curve in curves_by_flow.items():
        beta = wfq_service_curve(reserved_rates[name], capacity, max_packet)
        bounds[name] = curve.horizontal_deviation(beta)
    return bounds


def gr_local_analysis(curves_by_flow: Mapping[str, PiecewiseLinearCurve],
                      reserved_rates: Mapping[str, float],
                      capacity: float,
                      max_packet: float = 0.0) -> LocalAnalysis:
    """Complete local analysis of one guaranteed-rate server."""
    bounds = gr_delay_bounds(curves_by_flow, reserved_rates, capacity,
                             max_packet)
    agg = PiecewiseLinearCurve.zero()
    for c in curves_by_flow.values():
        agg = agg + c
    agg = agg.simplified()
    line = PiecewiseLinearCurve.line(capacity)
    return LocalAnalysis(
        delay_by_flow=bounds,
        backlog=agg.vertical_deviation(line),
        busy_period=fifo_busy_period(agg, capacity),
        aggregate=agg,
    )
