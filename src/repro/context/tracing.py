"""Structured span tracing for analyses.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
meaningful unit of work (an admission test, one analyzer attempt, one
per-server step, one Theorem-1 block evaluation) — with wall-clock
timings and free-form attributes.  The whole trace exports as plain
JSON (schema in ``docs/OBSERVABILITY.md``) so a slow bound can be
explained after the fact: *which* server's step, under *which*
analyzer, spent the time.

Spans survive failure: when a cooperative deadline expires mid-sweep,
the exception propagates through every open span, each of which is
closed with ``status="aborted"`` — the partial trace is flushed, not
lost, which is exactly what a timeout post-mortem needs.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterator

__all__ = ["Span", "Tracer"]

#: Default bound on recorded spans; beyond it new spans are counted but
#: dropped so a long admission loop cannot exhaust memory.
DEFAULT_MAX_SPANS = 100_000


def _json_safe(value):
    """Coerce an attribute value to something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class Span:
    """One timed unit of work.

    Attributes
    ----------
    name:
        Span kind ("admission_test", "analyze", "server_step", …).
    start_s:
        Start time relative to the tracer's epoch (seconds).
    duration_s:
        Wall-clock duration; 0.0 until the span closes.
    status:
        "ok", "aborted" (an exception — e.g. a deadline — unwound
        through the span) or "open" (still running / never closed).
    attrs:
        Free-form attributes (server id, algorithm, cache verdict …).
    children:
        Nested spans, in start order.
    """

    name: str
    start_s: float
    duration_s: float = 0.0
    status: str = "open"
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready representation of this span and its subtree."""
        d: dict = {
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
        }
        if self.attrs:
            d["attrs"] = {k: _json_safe(v) for k, v in self.attrs.items()}
        if self.children:
            d["children"] = [c.as_dict() for c in self.children]
        return d


class Tracer:
    """Records a forest of nested spans with one shared epoch.

    Parameters
    ----------
    max_spans:
        Bound on recorded spans; spans opened beyond it are still timed
        as no-ops but dropped (``dropped`` counts them).
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._epoch = perf_counter()
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        self._max_spans = max_spans
        self._n_spans = 0
        self.dropped = 0

    # ------------------------------------------------------------------

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans recorded so far."""
        return tuple(self._roots)

    @property
    def n_spans(self) -> int:
        """Total spans recorded (excludes dropped ones)."""
        return self._n_spans

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs) -> None:
        """Merge *attrs* into the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span | None]:
        """Open a child span for the duration of the block.

        Yields the :class:`Span` (or None when over ``max_spans``).
        An exception unwinding through the block closes the span with
        ``status="aborted"`` and an ``error`` attribute, then
        propagates — partial traces stay exportable.
        """
        if self._n_spans >= self._max_spans:
            self.dropped += 1
            yield None
            return
        now = perf_counter() - self._epoch
        sp = Span(name=name, start_s=now, attrs=dict(attrs))
        self._n_spans += 1
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self._roots.append(sp)
        self._stack.append(sp)
        try:
            yield sp
            sp.status = "ok"
        except BaseException as exc:
            sp.status = "aborted"
            sp.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            sp.duration_s = (perf_counter() - self._epoch) - sp.start_s
            # flush_open may already have closed us (timeout export)
            if self._stack and self._stack[-1] is sp:
                self._stack.pop()

    def flush_open(self, reason: str = "flushed while open") -> int:
        """Close every still-open span (e.g. before an emergency export).

        Returns the number of spans closed.  Normally unnecessary —
        :meth:`span` closes its span even on exceptions — but callers
        exporting from inside an open span (a timeout handler) use this
        to make the trace self-consistent.
        """
        n = 0
        now = perf_counter() - self._epoch
        while self._stack:
            sp = self._stack.pop()
            sp.duration_s = now - sp.start_s
            sp.status = "aborted"
            sp.attrs.setdefault("error", reason)
            n += 1
        return n

    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready snapshot of the whole trace."""
        return {
            "n_spans": self._n_spans,
            "dropped_spans": self.dropped,
            "spans": [sp.as_dict() for sp in self._roots],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The trace as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def write(self, path: str | Path) -> Path:
        """Write the trace (plus open-span flush) to *path* as JSON."""
        self.flush_open("flushed at export")
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path
