"""Metrics registry: named counters and timers for one analysis run.

:class:`MetricsRegistry` is the single accounting substrate of the
execution layer — the incremental engine's :class:`~repro.engine.stats.
EngineStats`, the report generator's per-section timings and the sweep
progress line all read and write the same counter namespace instead of
keeping private ``perf_counter`` bookkeeping.

The curve kernels (:mod:`repro.curves.piecewise`,
:mod:`repro.curves.exact`, :mod:`repro.curves.numeric`) are too
low-level to thread an explicit context through every call, so this
module also provides a *thread-local active registry*:
:func:`kernel_count` is a cheap no-op until an
:class:`~repro.context.AnalysisContext` activates its registry around an
analysis, at which point every curve operation is counted.  The
inactive-path cost is one thread-local attribute read and a ``None``
check — negligible next to the numpy work each kernel performs.

Exact-kernel counters: ``curve.exact_convolve`` /
``curve.exact_deconvolve`` count the general (mixed-convexity) exact
paths; ``curve.fallbacks`` counts only the ``kernel="auto"`` grid
fallback on a diverging deconvolution and is 0 on a pure exact run —
see ``docs/KERNELS.md`` and ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "MetricsRegistry",
    "QuantileReservoir",
    "kernel_count",
    "active_registry",
    "activate_registry",
]


class MetricsRegistry:
    """Named counters and accumulating timers.

    Counters are plain floats (``inc``/``add``); timers accumulate
    wall-clock seconds and an invocation count under
    ``<name>.s`` / ``<name>.n``.  The registry is deliberately schema
    free: layers agree on dotted names (``engine.hits``,
    ``curve.convolve``, ``sweep.done`` …) documented in
    ``docs/OBSERVABILITY.md``.

    All mutators and views are thread-safe: the service layer shares
    one registry between its request thread and breaker/latency
    bookkeeping, and the load harness hammers a shared registry from
    worker threads — an unlocked read-modify-write ``inc`` silently
    loses counts under that contention.
    """

    __slots__ = ("_counters", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._lock = threading.Lock()

    # -- counters ------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add *n* (default 1) to counter *name*."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + n

    #: Alias — ``add`` reads better for accumulating measured values.
    add = inc

    def get(self, name: str, default: float = 0.0) -> float:
        """Current value of counter *name*."""
        with self._lock:
            return self._counters.get(name, default)

    def set(self, name: str, value: float) -> None:
        """Overwrite counter *name* (used by gauges like ``sweep.total``)."""
        with self._lock:
            self._counters[name] = float(value)

    # -- timers --------------------------------------------------------

    @contextmanager
    def timed(self, name: str):
        """Time a block; accumulates ``<name>.s`` and ``<name>.n``."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.add(name + ".s", perf_counter() - t0)
            self.inc(name + ".n")

    def timer_s(self, name: str) -> float:
        """Accumulated seconds of timer *name*."""
        return self.get(name + ".s")

    # -- views ---------------------------------------------------------

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Plain-dict snapshot, optionally filtered by name *prefix*."""
        with self._lock:
            if not prefix:
                return dict(self._counters)
            return {k: v for k, v in self._counters.items()
                    if k.startswith(prefix)}

    def merge_into(self, other: "MetricsRegistry") -> None:
        """Add every counter of this registry into *other*.

        Snapshots under this registry's lock, then adds into *other*
        under its own — never both locks at once, so two registries
        merging into each other concurrently cannot deadlock.
        """
        for name, value in self.as_dict().items():
            other.add(name, value)

    def reset(self, prefix: str = "") -> None:
        """Zero every counter, or only those matching *prefix*."""
        with self._lock:
            if not prefix:
                self._counters.clear()
            else:
                for k in [k for k in self._counters
                          if k.startswith(prefix)]:
                    del self._counters[k]

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._counters)} counters)"


class QuantileReservoir:
    """Streaming latency reservoir with exact small-sample quantiles.

    Keeps every observation up to *capacity* (quantiles are then
    **exact**), after which it degrades to seeded Algorithm-R reservoir
    sampling — uniformly representative, deterministic for a given
    seed, and bounded in memory.  ``max``, ``mean`` and ``count`` stay
    exact regardless of sampling.

    The EWMA the admission service sheds on reacts in O(1) but hides
    the tail; this reservoir is the complementary view: p50/p95/p99
    that a load test (and the ``repro serve`` shutdown summary) can
    report honestly.

    All methods are thread-safe: the load harness's worker threads
    observe into one shared reservoir while the driver reads summaries,
    and an unlocked ``observe`` can lose observations (``_count`` /
    ``_sum`` read-modify-writes interleave) or corrupt the Algorithm-R
    swap.
    """

    __slots__ = ("_capacity", "_samples", "_rng", "_count",
                 "_sum", "_max", "_lock")

    def __init__(self, capacity: int = 65536, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._samples: list[float] = []
        self._rng = random.Random(seed)
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (seconds, bytes, anything ordered)."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if len(self._samples) < self._capacity:
                self._samples.append(value)
            else:
                j = self._rng.randrange(self._count)
                if j < self._capacity:
                    self._samples[j] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def exact(self) -> bool:
        """True while no observation has been dropped (quantiles exact)."""
        with self._lock:
            return self._count <= self._capacity

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else float("nan")

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else float("nan")

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile ``q`` in [0, 1] over retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return float("nan")
        ordered = sorted(samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[rank] if q > 0 else ordered[0]

    def summary(self) -> dict[str, float]:
        """The standard report block: count/mean/p50/p95/p99/max.

        Snapshots count/sum/max and the sample list under one lock
        acquisition, so the block is internally consistent even while
        other threads keep observing.
        """
        with self._lock:
            ordered = sorted(self._samples)
            count = self._count
            mean = self._sum / count if count else float("nan")
            peak = self._max if count else float("nan")

        def at(q: float) -> float:
            if not ordered:
                return float("nan")
            rank = min(len(ordered) - 1,
                       max(0, int(q * len(ordered) + 0.5) - 1))
            return ordered[rank]

        return {
            "count": float(count),
            "mean": mean,
            "p50": at(0.50),
            "p95": at(0.95),
            "p99": at(0.99),
            "max": peak,
        }

    def gauge_into(self, metrics: "MetricsRegistry | None",
                   prefix: str) -> dict[str, float]:
        """Publish the summary as ``<prefix>.<stat>`` gauges; returns it."""
        stats = self.summary()
        if metrics is not None:
            for key, value in stats.items():
                metrics.set(f"{prefix}.{key}", value)
        return stats


# ----------------------------------------------------------------------
# thread-local active registry (the curve kernels' counting hook)
# ----------------------------------------------------------------------

_ACTIVE = threading.local()


def active_registry() -> MetricsRegistry | None:
    """The registry currently activated on this thread, if any."""
    return getattr(_ACTIVE, "reg", None)


def kernel_count(name: str, n: float = 1.0) -> None:
    """Count one low-level kernel operation.

    No-op (one attribute read) unless a registry is active on this
    thread; the curve kernels call this unconditionally.
    """
    reg = getattr(_ACTIVE, "reg", None)
    if reg is not None:
        reg.inc(name, n)


@contextmanager
def activate_registry(reg: MetricsRegistry | None):
    """Make *reg* the active registry on this thread for the block.

    Nested activations stack (the innermost wins); activating ``None``
    temporarily disables counting.
    """
    prev = getattr(_ACTIVE, "reg", None)
    _ACTIVE.reg = reg
    try:
        yield reg
    finally:
        _ACTIVE.reg = prev
