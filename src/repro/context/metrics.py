"""Metrics registry: named counters and timers for one analysis run.

:class:`MetricsRegistry` is the single accounting substrate of the
execution layer — the incremental engine's :class:`~repro.engine.stats.
EngineStats`, the report generator's per-section timings and the sweep
progress line all read and write the same counter namespace instead of
keeping private ``perf_counter`` bookkeeping.

The curve kernels (:mod:`repro.curves.piecewise`,
:mod:`repro.curves.numeric`) are too low-level to thread an explicit
context through every call, so this module also provides a *thread-local
active registry*: :func:`kernel_count` is a cheap no-op until an
:class:`~repro.context.AnalysisContext` activates its registry around an
analysis, at which point every curve operation is counted.  The
inactive-path cost is one thread-local attribute read and a ``None``
check — negligible next to the numpy work each kernel performs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "MetricsRegistry",
    "kernel_count",
    "active_registry",
    "activate_registry",
]


class MetricsRegistry:
    """Named counters and accumulating timers.

    Counters are plain floats (``inc``/``add``); timers accumulate
    wall-clock seconds and an invocation count under
    ``<name>.s`` / ``<name>.n``.  The registry is deliberately schema
    free: layers agree on dotted names (``engine.hits``,
    ``curve.convolve``, ``sweep.done`` …) documented in
    ``docs/OBSERVABILITY.md``.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}

    # -- counters ------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add *n* (default 1) to counter *name*."""
        self._counters[name] = self._counters.get(name, 0.0) + n

    #: Alias — ``add`` reads better for accumulating measured values.
    add = inc

    def get(self, name: str, default: float = 0.0) -> float:
        """Current value of counter *name*."""
        return self._counters.get(name, default)

    def set(self, name: str, value: float) -> None:
        """Overwrite counter *name* (used by gauges like ``sweep.total``)."""
        self._counters[name] = float(value)

    # -- timers --------------------------------------------------------

    @contextmanager
    def timed(self, name: str):
        """Time a block; accumulates ``<name>.s`` and ``<name>.n``."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.add(name + ".s", perf_counter() - t0)
            self.inc(name + ".n")

    def timer_s(self, name: str) -> float:
        """Accumulated seconds of timer *name*."""
        return self.get(name + ".s")

    # -- views ---------------------------------------------------------

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Plain-dict snapshot, optionally filtered by name *prefix*."""
        if not prefix:
            return dict(self._counters)
        return {k: v for k, v in self._counters.items()
                if k.startswith(prefix)}

    def merge_into(self, other: "MetricsRegistry") -> None:
        """Add every counter of this registry into *other*."""
        for name, value in self._counters.items():
            other.add(name, value)

    def reset(self, prefix: str = "") -> None:
        """Zero every counter, or only those matching *prefix*."""
        if not prefix:
            self._counters.clear()
        else:
            for k in [k for k in self._counters if k.startswith(prefix)]:
                del self._counters[k]

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._counters)} counters)"


# ----------------------------------------------------------------------
# thread-local active registry (the curve kernels' counting hook)
# ----------------------------------------------------------------------

_ACTIVE = threading.local()


def active_registry() -> MetricsRegistry | None:
    """The registry currently activated on this thread, if any."""
    return getattr(_ACTIVE, "reg", None)


def kernel_count(name: str, n: float = 1.0) -> None:
    """Count one low-level kernel operation.

    No-op (one attribute read) unless a registry is active on this
    thread; the curve kernels call this unconditionally.
    """
    reg = getattr(_ACTIVE, "reg", None)
    if reg is not None:
        reg.inc(name, n)


@contextmanager
def activate_registry(reg: MetricsRegistry | None):
    """Make *reg* the active registry on this thread for the block.

    Nested activations stack (the innermost wins); activating ``None``
    temporarily disables counting.
    """
    prev = getattr(_ACTIVE, "reg", None)
    _ACTIVE.reg = reg
    try:
        yield reg
    finally:
        _ACTIVE.reg = prev
