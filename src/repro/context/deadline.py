"""Cooperative wall-clock deadlines.

A :class:`Deadline` is a start time plus a budget.  It enforces nothing
by itself: code under a deadline calls :meth:`check` at natural
boundaries (per-server steps, per-block evaluations, per-scenario
retests) and gets an :class:`~repro.errors.AnalysisTimeoutError` once
the budget is exhausted — on any thread, with no signal handlers and no
leaked workers, unlike the ``SIGALRM``-or-thread design this replaces
as the primary mechanism (:mod:`repro.resilience.budget` keeps the
signal path as an opt-in backstop for non-cooperative code).

Deadlines are also *cancellable*: :meth:`cancel` makes every subsequent
:meth:`check` raise, which is how an abandoned thread-fallback
computation is told to stop instead of running to completion.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Callable

from repro.errors import AnalysisTimeoutError

__all__ = ["Deadline"]


def _sigalrm_usable() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


class Deadline:
    """A wall-clock budget checked cooperatively.

    Parameters
    ----------
    budget:
        Wall-clock limit in seconds; must be > 0.
    description:
        Label used in timeout messages ("integrated admission test").
    clock:
        Monotonic time source (injectable for tests); defaults to
        :func:`time.perf_counter`.  The deadline starts at construction.
    """

    __slots__ = ("budget", "description", "_clock", "_start", "_cancelled")

    def __init__(self, budget: float, description: str = "analysis", *,
                 clock: Callable[[], float] = perf_counter) -> None:
        if not budget > 0:
            raise ValueError(f"budget must be > 0, got {budget}")
        self.budget = float(budget)
        self.description = description
        self._clock = clock
        self._start = clock()
        self._cancelled = False

    # ------------------------------------------------------------------

    def restart(self) -> None:
        """Reset the clock (and any cancellation) to a fresh budget."""
        self._start = self._clock()
        self._cancelled = False

    def cancel(self) -> None:
        """Mark the deadline cancelled: every later check raises."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True after :meth:`cancel`."""
        return self._cancelled

    def elapsed(self) -> float:
        """Seconds since the deadline (re)started."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left in the budget (may be negative)."""
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        """True when the budget is spent or the deadline was cancelled."""
        return self._cancelled or self.elapsed() >= self.budget

    def check(self, what: str | None = None) -> None:
        """Raise :class:`AnalysisTimeoutError` when expired or cancelled.

        *what* optionally names the phase that noticed ("propagation",
        "block evaluation") for the error message.
        """
        if self._cancelled:
            raise AnalysisTimeoutError(
                f"{self.description} was cancelled"
                + (f" during {what}" if what else ""),
                budget=self.budget, elapsed=self.elapsed())
        elapsed = self.elapsed()
        if elapsed >= self.budget:
            raise AnalysisTimeoutError(
                f"{self.description} exceeded its {self.budget:g}s budget"
                + (f" during {what}" if what else ""),
                budget=self.budget, elapsed=elapsed)

    # ------------------------------------------------------------------
    # opt-in signal backstop
    # ------------------------------------------------------------------

    @contextmanager
    def signal_backstop(self):
        """Arm ``SIGALRM`` for the remaining budget (opt-in backstop).

        Cooperative checks are the primary mechanism; this guards code
        that never checkpoints (third-party analyzers, tight numeric
        loops).  No-op off the POSIX main thread and when the budget is
        already spent (the next :meth:`check` handles that).  An outer
        pending timer (e.g. a test-suite hang guard) is re-armed with
        its remaining time on exit, mirroring the behavior of
        :func:`repro.resilience.budget.call_with_budget`.
        """
        remaining = self.remaining()
        if not _sigalrm_usable() or remaining <= 0:
            yield self
            return

        def on_alarm(signum, frame):
            raise AnalysisTimeoutError(
                f"{self.description} exceeded its {self.budget:g}s "
                f"budget (signal backstop)",
                budget=self.budget, elapsed=self.elapsed())

        t0 = perf_counter()
        prev_handler = signal.signal(signal.SIGALRM, on_alarm)
        prev_delay, prev_interval = signal.setitimer(
            signal.ITIMER_REAL, remaining)
        try:
            yield self
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, prev_handler)
            if prev_delay:
                left = max(prev_delay - (perf_counter() - t0), 1e-3)
                signal.setitimer(signal.ITIMER_REAL, left, prev_interval)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self._cancelled
                 else f"{self.remaining():.3f}s left")
        return f"Deadline({self.description!r}, {self.budget:g}s, {state})"
