"""The :class:`AnalysisContext` execution layer.

One object carries everything that *controls* or *observes* an analysis
without being part of its mathematical input:

* a cooperative :class:`~repro.context.deadline.Deadline`, checked at
  every server-step / block boundary (an online admission test that has
  not answered within budget is a failed test);
* a :class:`~repro.context.tracing.Tracer` of structured spans
  (admission test → analyzer attempt → per-server step / per-block
  Theorem-1 evaluation), exportable as JSON;
* a :class:`~repro.context.metrics.MetricsRegistry` of counters and
  timers (curve-kernel op counts, engine cache hits, sweep progress);
* optional *step interceptors* — the incremental engine's memoizing
  replacements for the pure per-server / per-block functions, formerly
  the ``step=`` / ``block_step=`` keyword hooks plumbed through every
  layer.

Analyses receive the context explicitly (``analyze(net, ctx=...)``) and
route their per-unit work through :meth:`AnalysisContext.run_server_step`
/ :meth:`AnalysisContext.run_block_step`.  The default everywhere is the
:data:`NULL_CONTEXT` singleton, whose hot-path methods collapse to a
single extra call — untraced analysis stays allocation-light and
bit-identical to the pre-context code path.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Callable, Iterator

from repro.context.deadline import Deadline
from repro.context.metrics import MetricsRegistry, activate_registry
from repro.context.tracing import Tracer
from repro.curves.kernels import use_kernel

__all__ = ["AnalysisContext", "NullContext", "NULL_CONTEXT"]

#: Shared no-op context manager (avoids one allocation per use).
_NULL_CM = nullcontext()

#: Interceptor signatures (mirror the engine's memoizing wrappers):
#: ``step(sid, server_input) -> ServerStep`` and
#: ``block(block_ids, block_input) -> BlockOutcome``.  An interceptor
#: MUST be extensionally equal to the pure function it replaces.
StepInterceptor = Callable[[object, object], object]
BlockInterceptor = Callable[[tuple, object], object]


class AnalysisContext:
    """Execution context threaded through an analysis call chain.

    All attributes are optional; a context with none set behaves like
    :data:`NULL_CONTEXT` (modulo a few ``None`` checks per unit).
    Contexts are cheap value-like objects: the ``with_*`` builders
    return shallow copies sharing the tracer/metrics/deadline, so a
    caller can hand the engine a derived context carrying interceptors
    without disturbing its own.
    """

    __slots__ = ("deadline", "tracer", "metrics", "kernel",
                 "step_interceptor", "block_interceptor")

    def __init__(self, *, deadline: Deadline | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 kernel: str | None = None,
                 step_interceptor: StepInterceptor | None = None,
                 block_interceptor: BlockInterceptor | None = None) -> None:
        self.deadline = deadline
        self.tracer = tracer
        self.metrics = metrics
        self.kernel = kernel
        self.step_interceptor = step_interceptor
        self.block_interceptor = block_interceptor

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    @classmethod
    def tracing(cls, *, deadline: Deadline | None = None,
                max_spans: int | None = None) -> "AnalysisContext":
        """A fully instrumented context (fresh tracer + registry)."""
        tracer = Tracer(max_spans) if max_spans else Tracer()
        return cls(deadline=deadline, tracer=tracer,
                   metrics=MetricsRegistry())

    def with_deadline(self, deadline: Deadline | None) -> "AnalysisContext":
        """Copy of this context with *deadline* swapped in."""
        return AnalysisContext(
            deadline=deadline, tracer=self.tracer, metrics=self.metrics,
            kernel=self.kernel,
            step_interceptor=self.step_interceptor,
            block_interceptor=self.block_interceptor)

    def with_kernel(self, kernel: str | None) -> "AnalysisContext":
        """Copy of this context with the curve *kernel* swapped in.

        ``None`` defers to the ambient selection
        (:func:`repro.curves.kernels.current_kernel`); otherwise every
        analysis run under this context activates the named kernel for
        its scope — see ``docs/KERNELS.md``.
        """
        return AnalysisContext(
            deadline=self.deadline, tracer=self.tracer,
            metrics=self.metrics, kernel=kernel,
            step_interceptor=self.step_interceptor,
            block_interceptor=self.block_interceptor)

    def with_interceptors(self, step: StepInterceptor | None = None,
                          block: BlockInterceptor | None = None,
                          ) -> "AnalysisContext":
        """Copy with the per-unit interceptors replaced.

        The incremental engine derives such a context per query; the
        observability attributes (deadline/tracer/metrics/kernel) are
        shared so interception composes with tracing and budgets.
        """
        return AnalysisContext(
            deadline=self.deadline, tracer=self.tracer,
            metrics=self.metrics, kernel=self.kernel,
            step_interceptor=step, block_interceptor=block)

    # ------------------------------------------------------------------
    # control & observation primitives
    # ------------------------------------------------------------------

    def checkpoint(self, what: str | None = None) -> None:
        """Cooperative deadline check (cheap no-op without a deadline)."""
        dl = self.deadline
        if dl is not None:
            dl.check(what)

    def count(self, name: str, n: float = 1.0) -> None:
        """Increment a registry counter (no-op without metrics)."""
        m = self.metrics
        if m is not None:
            m.inc(name, n)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op untraced)."""
        t = self.tracer
        if t is not None:
            t.annotate(**attrs)

    def span(self, name: str, **attrs):
        """Context manager: a traced span, or a shared no-op."""
        t = self.tracer
        if t is None:
            return _NULL_CM
        return t.span(name, **attrs)

    def timed(self, name: str):
        """Context manager: a registry timer, or a shared no-op."""
        m = self.metrics
        if m is None:
            return _NULL_CM
        return m.timed(name)

    @contextmanager
    def analysis_scope(self, algorithm: str, **attrs) -> Iterator[None]:
        """Wrap one full analyzer run: root span, metrics, curve kernel.

        Every :class:`~repro.analysis.base.Analyzer` opens this scope at
        the top of ``analyze`` so curve-kernel op counters land in this
        context's registry, the context's curve-kernel selection (if
        any) governs every operation of the run, and the analysis
        appears as one span.
        """
        self.checkpoint(f"{algorithm} analysis start")
        if self.tracer is None and self.metrics is None \
                and self.kernel is None:
            yield
            return
        with use_kernel(self.kernel):
            if self.tracer is not None:
                with self.tracer.span("analyze", algorithm=algorithm,
                                      **attrs):
                    with activate_registry(self.metrics):
                        yield
            elif self.metrics is not None:
                with activate_registry(self.metrics):
                    yield
            else:
                yield

    # ------------------------------------------------------------------
    # per-unit execution (the former step=/block_step= hooks)
    # ------------------------------------------------------------------

    def run_server_step(self, sid, si, compute):
        """Run one per-server propagation step under this context.

        *compute* is the pure fallback
        (:func:`repro.analysis.propagation.server_step`); the engine's
        memoizing :attr:`step_interceptor`, when installed, replaces it
        and must be extensionally equal.
        """
        dl = self.deadline
        if dl is not None:
            dl.check("propagation")
        fn = self.step_interceptor
        if self.tracer is None:
            out = compute(si) if fn is None else fn(sid, si)
        else:
            with self.tracer.span("server_step", server=str(sid),
                                  n_flows=len(si.flows)):
                out = compute(si) if fn is None else fn(sid, si)
        if self.metrics is not None:
            self.metrics.inc("analysis.server_steps")
        return out

    def run_block_step(self, block: tuple, bi, compute):
        """Run one per-block joint evaluation under this context.

        *compute* is the pure fallback
        (:func:`repro.core.integrated.evaluate_block`); the engine's
        :attr:`block_interceptor` replaces it when installed.
        """
        dl = self.deadline
        if dl is not None:
            dl.check("block evaluation")
        fn = self.block_interceptor
        if self.tracer is None:
            out = compute(bi) if fn is None else fn(block, bi)
        else:
            with self.tracer.span("block", kind=bi.kind,
                                  servers=str(tuple(block)),
                                  n_flows=len(bi.flows)):
                out = compute(bi) if fn is None else fn(block, bi)
        if self.metrics is not None:
            self.metrics.inc("analysis.block_steps")
        return out

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def export(self, **meta) -> dict:
        """JSON-ready snapshot: spans, counters and caller metadata."""
        out: dict = {"trace_version": 1}
        if meta:
            out["meta"] = meta
        if self.tracer is not None:
            out.update(self.tracer.as_dict())
        if self.metrics is not None:
            out["counters"] = self.metrics.as_dict()
        return out

    def write_trace(self, path: str | Path, **meta) -> Path:
        """Flush open spans and write :meth:`export` to *path* as JSON."""
        import json

        if self.tracer is not None:
            self.tracer.flush_open("flushed at export")
        path = Path(path)
        path.write_text(json.dumps(self.export(**meta), indent=2),
                        encoding="utf-8")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [name for name, val in (
            ("deadline", self.deadline), ("tracer", self.tracer),
            ("metrics", self.metrics), ("kernel", self.kernel),
            ("step", self.step_interceptor),
            ("block", self.block_interceptor)) if val is not None]
        return f"AnalysisContext({', '.join(parts) or 'empty'})"


class NullContext(AnalysisContext):
    """The no-op context: every hot-path method collapses to nothing.

    Used as the default ``ctx`` everywhere so untraced analyses pay one
    extra method call per unit and allocate nothing.  ``with_*``
    builders return real :class:`AnalysisContext` objects, so deriving
    from the null context (as the engine does) works transparently.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()

    def checkpoint(self, what: str | None = None) -> None:
        pass

    def count(self, name: str, n: float = 1.0) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def span(self, name: str, **attrs):
        return _NULL_CM

    def timed(self, name: str):
        return _NULL_CM

    def analysis_scope(self, algorithm: str, **attrs):
        return _NULL_CM

    def run_server_step(self, sid, si, compute):
        return compute(si)

    def run_block_step(self, block: tuple, bi, compute):
        return compute(bi)


#: Shared default instance — do not mutate.
NULL_CONTEXT = NullContext()
