"""Execution context for analyses: deadlines, tracing, metrics.

See ``docs/OBSERVABILITY.md`` for the lifecycle, the span schema and
the JSON trace format.
"""

from repro.context.context import NULL_CONTEXT, AnalysisContext, NullContext
from repro.context.deadline import Deadline
from repro.context.metrics import (
    MetricsRegistry,
    QuantileReservoir,
    activate_registry,
    active_registry,
    kernel_count,
)
from repro.context.tracing import Span, Tracer

__all__ = [
    "AnalysisContext",
    "NullContext",
    "NULL_CONTEXT",
    "Deadline",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "QuantileReservoir",
    "kernel_count",
    "active_registry",
    "activate_registry",
]
