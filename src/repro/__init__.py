"""repro — integrated end-to-end delay analysis for high speed networks.

A production-quality reproduction of C. Li, R. Bettati, W. Zhao,
*"New Delay Analysis in High Speed Networks"*, ICPP 1999: deterministic
worst-case delay bounds for feed-forward FIFO (and static-priority)
networks, with the paper's three analyses —

* :class:`repro.analysis.DecomposedAnalysis` (Cruz decomposition),
* :class:`repro.analysis.ServiceCurveAnalysis` (induced service curves),
* :class:`repro.core.IntegratedAnalysis` (the paper's contribution) —

plus the min-plus curve algebra, a packet-level validation simulator,
admission control, and a harness that regenerates the paper's figures.

Quickstart::

    from repro import build_tandem, IntegratedAnalysis, CONNECTION0
    net = build_tandem(n_hops=4, utilization=0.8)
    bound = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
"""

from repro.analysis import (
    Analyzer,
    DecomposedAnalysis,
    DelayReport,
    FeedbackAnalysis,
    ServiceCurveAnalysis,
    compare_analyzers,
    relative_improvement,
)
from repro.admission import (
    AdmissionController,
    AdmissionDecision,
    ConnectionRequest,
)
from repro.core import (
    IntegratedAnalysis,
    PairAlongPath,
    SingletonPartition,
    TwoServerSubsystem,
    theorem1_bound,
)
from repro.curves import PiecewiseLinearCurve, TokenBucket
from repro.errors import (
    AnalysisError,
    AnalysisTimeoutError,
    InstabilityError,
    ReproError,
    ResilienceError,
    TopologyError,
)
from repro.network import (
    CONNECTION0,
    Discipline,
    Flow,
    Network,
    ServerSpec,
    build_tandem,
)
from repro.resilience import (
    BurstInflation,
    CompositeScenario,
    FaultScenario,
    ServerDegradation,
    ServerFailure,
    SurvivabilityReport,
    call_with_budget,
    render_survivability,
    survivability,
)
from repro.sim import NetworkSimulator, simulate_greedy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analyses
    "Analyzer",
    "DelayReport",
    "DecomposedAnalysis",
    "FeedbackAnalysis",
    "ServiceCurveAnalysis",
    "IntegratedAnalysis",
    "TwoServerSubsystem",
    "theorem1_bound",
    "PairAlongPath",
    "SingletonPartition",
    "compare_analyzers",
    "relative_improvement",
    # model
    "PiecewiseLinearCurve",
    "TokenBucket",
    "Flow",
    "Network",
    "ServerSpec",
    "Discipline",
    "build_tandem",
    "CONNECTION0",
    # applications
    "AdmissionController",
    "ConnectionRequest",
    "AdmissionDecision",
    "NetworkSimulator",
    "simulate_greedy",
    # resilience
    "FaultScenario",
    "ServerDegradation",
    "ServerFailure",
    "BurstInflation",
    "CompositeScenario",
    "SurvivabilityReport",
    "survivability",
    "render_survivability",
    "call_with_budget",
    # errors
    "ReproError",
    "InstabilityError",
    "TopologyError",
    "AnalysisError",
    "AnalysisTimeoutError",
    "ResilienceError",
]
