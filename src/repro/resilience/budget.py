"""Wall-clock budgets for analyses.

Admission control is an *online* service: a test that has not answered
within its budget is operationally a failed test, whatever it would
eventually have returned.  :func:`call_with_budget` runs a callable
under a wall-clock limit and raises
:class:`repro.errors.AnalysisTimeoutError` (with structured ``budget``
and ``elapsed`` attributes) when the limit is exceeded.

The primary mechanism is the **cooperative**
:class:`~repro.context.Deadline`: a callable that accepts an
:class:`~repro.context.AnalysisContext` argument is invoked in the
caller's thread with a deadline-bearing context, and every
``ctx.checkpoint()`` — analyses check at server-step and block
boundaries — raises once the budget is spent.  This works on any
thread, installs no signal handlers, and leaks no workers.

For legacy zero-argument callables the old enforcement survives:
``SIGALRM`` on POSIX main threads, a worker thread elsewhere.  The
thread fallback no longer abandons its computation blind — it cancels
the deadline it handed the worker, so a context-aware callable stops at
its next checkpoint instead of running to completion, and shuts the
executor down with ``cancel_futures=True`` so queued work never starts.
"""

from __future__ import annotations

import inspect
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import perf_counter
from typing import Callable, TypeVar

from repro.context import AnalysisContext, Deadline
from repro.errors import AnalysisTimeoutError
from repro.utils.validation import check_positive

__all__ = ["call_with_budget"]

T = TypeVar("T")

#: Accepted ``mechanism`` values.
_MECHANISMS = ("auto", "cooperative", "signal", "thread")


def _sigalrm_usable() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def _context_mode(fn: Callable) -> str | None:
    """How *fn* expects the context: "positional", "keyword", or None.

    A callable is context-aware when it has a *required* positional
    parameter or any parameter named ``ctx`` (keyword-only ``ctx`` is
    passed by name).  Defaulted positionals do NOT count: the legacy
    ``lambda a=analyzer: a.analyze(net)`` closure idiom must keep
    running as a zero-argument callable.
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins, odd callables
        return None
    for param in sig.parameters.values():
        if (param.kind in (param.POSITIONAL_ONLY,
                           param.POSITIONAL_OR_KEYWORD)
                and (param.default is param.empty
                     or param.name == "ctx")):
            return "positional"
        if param.kind == param.KEYWORD_ONLY and param.name == "ctx":
            return "keyword"
    return None


def _bind_context(fn: Callable[..., T], mode: str,
                  ctx: AnalysisContext) -> Callable[[], T]:
    if mode == "keyword":
        return lambda: fn(ctx=ctx)
    return lambda: fn(ctx)


def call_with_budget(fn: Callable[..., T], budget: float, *,
                     description: str = "analysis",
                     ctx: AnalysisContext | None = None,
                     mechanism: str = "auto") -> T:
    """Run *fn* with a wall-clock *budget* in seconds.

    Returns *fn*'s result, or raises
    :class:`repro.errors.AnalysisTimeoutError` once *budget* seconds
    have elapsed.  Exceptions raised by *fn* propagate unchanged.

    Parameters
    ----------
    fn:
        Either a callable accepting one positional argument — it
        receives an :class:`~repro.context.AnalysisContext` carrying a
        fresh :class:`~repro.context.Deadline` and is expected to
        checkpoint cooperatively — or a legacy zero-argument callable
        (close over the arguments), enforced preemptively.
    budget:
        Wall-clock limit in seconds; must be > 0.
    description:
        Label used in the timeout message.
    ctx:
        Optional base context for context-aware callables; the deadline
        is swapped into a derived copy, so tracing/metrics flow through
        while the caller's own deadline is untouched.
    mechanism:
        ``"auto"`` (default) picks ``"cooperative"`` for context-aware
        callables, else ``"signal"`` where usable, else ``"thread"``.
        Explicit values force one path: ``"cooperative"`` requires a
        context-aware *fn*; ``"signal"`` requires a POSIX main thread;
        ``"thread"`` runs *fn* in a worker and, on timeout, cancels the
        worker's deadline (observed at its next checkpoint) before
        abandoning it.
    """
    check_positive("budget", budget)
    if mechanism not in _MECHANISMS:
        raise ValueError(f"mechanism must be one of {_MECHANISMS}, "
                         f"got {mechanism!r}")
    mode = _context_mode(fn)
    if mechanism == "auto":
        if mode is not None:
            mechanism = "cooperative"
        elif _sigalrm_usable():
            mechanism = "signal"
        else:
            mechanism = "thread"

    if mechanism == "cooperative":
        if mode is None:
            raise ValueError(
                "mechanism='cooperative' needs a callable accepting a "
                "context argument; got a zero-argument callable")
        deadline = Deadline(budget, description)
        base = ctx if ctx is not None else AnalysisContext()
        return _bind_context(fn, mode, base.with_deadline(deadline))()
    if mechanism == "signal":
        if not _sigalrm_usable():
            raise ValueError("mechanism='signal' needs SIGALRM on the "
                             "main thread")
        return _call_with_alarm(fn, budget, description, ctx, mode)
    return _call_in_thread(fn, budget, description, ctx, mode)


def _call_with_alarm(fn: Callable[..., T], budget: float,
                     description: str, ctx: AnalysisContext | None,
                     mode: str | None) -> T:
    deadline = Deadline(budget, description)
    with deadline.signal_backstop():
        if mode is not None:
            base = ctx if ctx is not None else AnalysisContext()
            return _bind_context(fn, mode, base.with_deadline(deadline))()
        return fn()


def _call_in_thread(fn: Callable[..., T], budget: float,
                    description: str, ctx: AnalysisContext | None,
                    mode: str | None) -> T:
    start = perf_counter()
    deadline = Deadline(budget, description)
    if mode is not None:
        base = ctx if ctx is not None else AnalysisContext()
        call = _bind_context(fn, mode, base.with_deadline(deadline))
    else:
        call = fn
    pool = ThreadPoolExecutor(max_workers=1,
                              thread_name_prefix="repro-budget")
    future = pool.submit(call)
    try:
        return future.result(timeout=budget)
    except FutureTimeoutError:
        # Tell the abandoned computation to stop: a context-aware
        # callable raises at its next checkpoint instead of running to
        # completion.  Zero-argument callables cannot observe this but
        # are pure, so the leak is bounded by their own runtime.
        deadline.cancel()
        raise AnalysisTimeoutError(
            f"{description} exceeded its {budget:g}s budget",
            budget=budget, elapsed=perf_counter() - start) from None
    finally:
        # never join the (possibly still running) worker; shut down
        # without waiting and drop anything still queued
        pool.shutdown(wait=False, cancel_futures=True)
