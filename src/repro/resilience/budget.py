"""Wall-clock budgets for analyses.

Admission control is an *online* service: a test that has not answered
within its budget is operationally a failed test, whatever it would
eventually have returned.  :func:`call_with_budget` runs a callable
under a wall-clock limit and raises
:class:`repro.errors.AnalysisTimeoutError` (with structured ``budget``
and ``elapsed`` attributes) when the limit is exceeded, letting the
admission controller fall back to a cheaper analyzer.

On POSIX main threads the limit is enforced with ``SIGALRM`` — the
computation is genuinely interrupted.  Elsewhere (worker threads,
non-POSIX platforms) a thread-based fallback is used: the caller gets
its timeout on schedule, but the abandoned computation runs to
completion in the background.  Analyses are pure, so an abandoned run
has no side effects.
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import perf_counter
from typing import Callable, TypeVar

from repro.errors import AnalysisTimeoutError
from repro.utils.validation import check_positive

__all__ = ["call_with_budget"]

T = TypeVar("T")


def _sigalrm_usable() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def call_with_budget(fn: Callable[[], T], budget: float, *,
                     description: str = "analysis") -> T:
    """Run ``fn()`` with a wall-clock *budget* in seconds.

    Returns ``fn()``'s result, or raises
    :class:`repro.errors.AnalysisTimeoutError` once *budget* seconds
    have elapsed.  Exceptions raised by *fn* propagate unchanged.

    Parameters
    ----------
    fn:
        Zero-argument callable (close over the arguments).
    budget:
        Wall-clock limit in seconds; must be > 0.
    description:
        Label used in the timeout message.
    """
    check_positive("budget", budget)
    if _sigalrm_usable():
        return _call_with_alarm(fn, budget, description)
    return _call_in_thread(fn, budget, description)


def _call_with_alarm(fn: Callable[[], T], budget: float,
                     description: str) -> T:
    start = perf_counter()

    def on_alarm(signum, frame):
        raise AnalysisTimeoutError(
            f"{description} exceeded its {budget:g}s budget",
            budget=budget, elapsed=perf_counter() - start)

    prev_handler = signal.signal(signal.SIGALRM, on_alarm)
    prev_delay, prev_interval = signal.setitimer(
        signal.ITIMER_REAL, budget)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, prev_handler)
        if prev_delay:
            # an outer timer (e.g. the test suite's hang guard) was
            # pending: re-arm it with whatever time it has left
            remaining = max(prev_delay - (perf_counter() - start), 1e-3)
            signal.setitimer(signal.ITIMER_REAL, remaining,
                             prev_interval)


def _call_in_thread(fn: Callable[[], T], budget: float,
                    description: str) -> T:
    start = perf_counter()
    pool = ThreadPoolExecutor(max_workers=1,
                              thread_name_prefix="repro-budget")
    future = pool.submit(fn)
    try:
        return future.result(timeout=budget)
    except FutureTimeoutError:
        raise AnalysisTimeoutError(
            f"{description} exceeded its {budget:g}s budget",
            budget=budget, elapsed=perf_counter() - start) from None
    finally:
        # never join the (possibly still running) worker; analyses are
        # pure so the abandoned computation is harmless
        pool.shutdown(wait=False, cancel_futures=True)
