"""Circuit breakers: stop hammering an analyzer that keeps failing.

A long-lived admission service cannot afford to spend its whole
analysis budget re-timing-out against a wedged analyzer on every
request.  A :class:`CircuitBreaker` wraps one analyzer (one *rung* of
the admission fallback chain) with the classic three-state protocol:

* **closed** — requests flow through; consecutive failures are counted
  and ``failure_threshold`` of them trip the breaker;
* **open** — requests are refused instantly (the chain falls through to
  the next rung) until ``reset_timeout`` seconds have passed;
* **half-open** — after the cooldown one trial request is let through;
  success closes the breaker, failure re-opens it (with the cooldown
  restarting).  A probe whose verdict never arrives (the caller died
  outside the success/failure reporting path) expires after another
  ``reset_timeout``, releasing the probe slot instead of wedging the
  rung shut forever.

Breakers are time-driven, so the clock is injectable for deterministic
tests, and every transition/refusal is exported through the
:class:`~repro.context.MetricsRegistry` under ``breaker.<name>.*`` —
the same counter namespace the rest of the execution layer uses (see
``docs/OBSERVABILITY.md``).

Thread-safety: state transitions happen under a lock so a service
serving concurrent admission queries sees consistent counts; the
protected *call* itself runs outside the lock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.context.metrics import MetricsRegistry
from repro.errors import CircuitOpenError, ResilienceError

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric gauge values for the ``breaker.<name>.state`` metric.
_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Parameters
    ----------
    name:
        Label used in error messages and metric names (typically the
        protected analyzer's ``name``).
    failure_threshold:
        Consecutive failures (in closed state) that trip the breaker.
    reset_timeout:
        Seconds the breaker stays open before letting a probe through.
    clock:
        Monotonic time source; injectable for tests.
    metrics:
        Optional registry receiving ``breaker.<name>.*`` counters.
    """

    def __init__(self, name: str, *, failure_threshold: int = 3,
                 reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: MetricsRegistry | None = None) -> None:
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got {failure_threshold}",
                scenario=f"breaker({name})")
        if not reset_timeout > 0:
            raise ResilienceError(
                f"reset_timeout must be > 0, got {reset_timeout}",
                scenario=f"breaker({name})")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._probe_started = 0.0

    # ------------------------------------------------------------------

    def _count(self, what: str, n: float = 1.0) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"breaker.{self.name}.{what}", n)

    def _gauge_state(self) -> None:
        if self._metrics is not None:
            self._metrics.set(f"breaker.{self.name}.state",
                              _STATE_GAUGE[self._state])

    def _maybe_half_open(self) -> None:
        """Open → half-open once the cooldown elapsed (lock held).

        Also expires a stale half-open probe: if the probe's verdict
        never arrived within ``reset_timeout`` (its caller crashed
        outside the record_success/record_failure path), the slot is
        released so the rung is not wedged shut forever.
        """
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._state = HALF_OPEN
            self._probing = False
            self._gauge_state()
        elif (self._state == HALF_OPEN and self._probing
                and self._clock() - self._probe_started
                >= self.reset_timeout):
            self._probing = False
            self._count("probe_timeouts")

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (evaluates the open→half-open timeout)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def allow(self) -> bool:
        """May a request pass right now?

        In half-open state only the *first* caller after the cooldown
        is admitted as the probe; concurrent callers are refused until
        the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                self._probe_started = self._clock()
                self._count("probes")
                return True
            self._count("rejections")
            return False

    def record_success(self) -> None:
        """Report a successful protected call."""
        with self._lock:
            self._maybe_half_open()
            if self._state != CLOSED:
                self._count("closes")
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probing = False
            self._count("successes")
            self._gauge_state()

    def release_probe(self) -> None:
        """Abandon an in-flight probe without a health verdict.

        For callers whose protected call ended in something that says
        nothing about the analyzer's health (``KeyboardInterrupt``,
        ``SystemExit``): the probe slot is freed so the next request
        can probe, but no success/failure is recorded.
        """
        with self._lock:
            if self._probing:
                self._probing = False
                self._count("probe_aborts")

    def record_failure(self) -> None:
        """Report a failed protected call."""
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures += 1
            self._count("failures")
            if self._state == HALF_OPEN:
                self._trip()
            elif (self._state == CLOSED and self._consecutive_failures
                    >= self.failure_threshold):
                self._trip()
            self._gauge_state()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probing = False
        self._count("opens")

    def trip(self) -> None:
        """Force the breaker open (operator override, tests)."""
        with self._lock:
            self._trip()
            self._gauge_state()

    def reset(self) -> None:
        """Force the breaker closed and zero the failure count."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probing = False
            self._gauge_state()

    # ------------------------------------------------------------------

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` under this breaker.

        Raises :class:`~repro.errors.CircuitOpenError` without calling
        *fn* when the breaker refuses; otherwise records success or
        failure (any exception counts as failure and propagates).
        """
        if not self.allow():
            with self._lock:
                retry = max(0.0, self.reset_timeout
                            - (self._clock() - self._opened_at))
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is open "
                f"(retry in {retry:.3g}s)",
                breaker=self.name, retry_after=retry)
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def as_dict(self) -> dict:
        """JSON-ready snapshot for traces and status lines."""
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker({self.name!r}, state={self.state!r}, "
                f"failures={self.consecutive_failures})")
