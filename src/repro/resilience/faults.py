"""Composable fault models: transform a healthy network into a faulted one.

The paper's admission guarantees are derived for a frozen, healthy
network; operationally the interesting question is which guarantees
*survive* a fault.  A :class:`FaultScenario` is a pure transformation
``Network -> Network`` — scenarios never mutate, so the same scenario
can be applied to many networks (and many scenarios to one network)
without interference, mirroring how :mod:`repro.sim.adversary` derives
stress schedules from the network rather than patching it.

Three primitive scenarios cover the classic fault classes:

* :class:`ServerDegradation` — a server keeps running at a fraction of
  its nominal rate (link flaps, head-of-line pathologies, CPU
  contention on a software switch);
* :class:`ServerFailure` — a server disappears entirely; flows routed
  through it are severed (survivability analysis may reroute them);
* :class:`BurstInflation` — sources misbehave within their policing by
  bursting larger than provisioned (mis-sized token buckets).

:class:`CompositeScenario` sequences primitives into compound events
("rack loses power *and* the failover link degrades").
"""

from __future__ import annotations

import abc
from typing import Hashable, Iterable, Sequence

from repro.curves.token_bucket import TokenBucket
from repro.errors import ResilienceError, TopologyError
from repro.network.flow import Flow
from repro.network.topology import Network, ServerSpec

__all__ = [
    "FaultScenario",
    "ServerDegradation",
    "ServerFailure",
    "BurstInflation",
    "CompositeScenario",
]

ServerId = Hashable


class FaultScenario(abc.ABC):
    """A pure ``Network -> Network`` fault transformation."""

    @abc.abstractmethod
    def apply(self, network: Network) -> Network:
        """The faulted counterpart of *network*.

        Raises :class:`repro.errors.ResilienceError` when the scenario
        does not fit the network (unknown server or flow).
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable description of the fault."""

    def failed_servers(self, network: Network) -> frozenset[ServerId]:
        """Servers this scenario removes from *network* (default none).

        Survivability analysis uses this set to attempt rerouting
        severed flows around the failure.
        """
        return frozenset()

    def __str__(self) -> str:
        return self.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"


class ServerDegradation(FaultScenario):
    """A server survives but serves at ``factor`` of its nominal rate.

    Parameters
    ----------
    server_id:
        The degraded server.
    factor:
        Remaining capacity fraction in ``(0, 1]``; ``0.5`` halves the
        service rate.
    """

    def __init__(self, server_id: ServerId, factor: float) -> None:
        if not (0.0 < factor <= 1.0):
            raise ResilienceError(
                f"degradation factor must be in (0, 1], got {factor}",
                scenario=f"degrade({server_id!r})")
        self.server_id = server_id
        self.factor = float(factor)

    def describe(self) -> str:
        return f"server {self.server_id!r} at {self.factor:.0%} capacity"

    def apply(self, network: Network) -> Network:
        try:
            spec = network.server(self.server_id)
        except TopologyError as exc:
            raise ResilienceError(str(exc),
                                  scenario=self.describe()) from exc
        degraded = ServerSpec(spec.server_id,
                              spec.capacity * self.factor,
                              spec.discipline)
        return network.replace_server(degraded)


class ServerFailure(FaultScenario):
    """A server fails outright; flows routed through it are severed."""

    def __init__(self, server_id: ServerId) -> None:
        self.server_id = server_id

    def describe(self) -> str:
        return f"server {self.server_id!r} failed"

    def failed_servers(self, network: Network) -> frozenset[ServerId]:
        return frozenset({self.server_id})

    def severed_flows(self, network: Network) -> tuple[str, ...]:
        """Names of flows the failure severs, in deterministic order."""
        return tuple(f.name for f in network.iter_flows()
                     if f.traverses(self.server_id))

    def apply(self, network: Network) -> Network:
        try:
            return network.without_server(self.server_id)
        except TopologyError as exc:
            raise ResilienceError(str(exc),
                                  scenario=self.describe()) from exc


class BurstInflation(FaultScenario):
    """Sources burst ``factor`` times their provisioned sigma.

    Parameters
    ----------
    factor:
        Burst multiplier, must be > 0 (values above 1 model misbehaving
        sources; below 1 models conservative ones).
    flows:
        Names of affected flows; ``None`` inflates every source.
    """

    def __init__(self, factor: float,
                 flows: Sequence[str] | None = None) -> None:
        if not factor > 0:
            raise ResilienceError(
                f"burst factor must be > 0, got {factor}",
                scenario="burst inflation")
        self.factor = float(factor)
        self.flows = tuple(flows) if flows is not None else None

    def describe(self) -> str:
        who = ("all sources" if self.flows is None
               else ", ".join(self.flows))
        return f"burst x{self.factor:g} on {who}"

    def apply(self, network: Network) -> Network:
        names = (tuple(network.flows) if self.flows is None
                 else self.flows)
        result = network
        for name in names:
            try:
                flow = result.flow(name)
            except TopologyError as exc:
                raise ResilienceError(str(exc),
                                      scenario=self.describe()) from exc
            b = flow.bucket
            inflated = TokenBucket(b.sigma * self.factor, b.rho, b.peak)
            result = result.replace_flow(
                Flow(flow.name, inflated, flow.path,
                     deadline=flow.deadline, priority=flow.priority))
        return result


class CompositeScenario(FaultScenario):
    """Several faults applied in sequence (a compound event)."""

    def __init__(self, scenarios: Iterable[FaultScenario]) -> None:
        self.scenarios = tuple(scenarios)
        if not self.scenarios:
            raise ResilienceError("composite scenario needs at least "
                                  "one component", scenario="composite")

    def describe(self) -> str:
        return " + ".join(s.describe() for s in self.scenarios)

    def failed_servers(self, network: Network) -> frozenset[ServerId]:
        failed: frozenset[ServerId] = frozenset()
        for s in self.scenarios:
            failed |= s.failed_servers(network)
        return failed

    def apply(self, network: Network) -> Network:
        for s in self.scenarios:
            network = s.apply(network)
        return network
