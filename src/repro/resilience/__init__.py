"""Resilience subsystem (system S14): fault injection and survivability.

Answers the operational question the paper's admission story leads to:
*which deadline guarantees survive a fault?*  Fault scenarios are pure
``Network -> Network`` transformations; the survivability analysis
re-runs any analyzer over the faulted counterparts (rerouting severed
flows where the topology allows) and the budget helper turns wall-clock
time into a first-class analysis resource.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.budget import call_with_budget
from repro.resilience.faults import (
    BurstInflation,
    CompositeScenario,
    FaultScenario,
    ServerDegradation,
    ServerFailure,
)
from repro.resilience.survivability import (
    MET,
    SEVERED,
    VIOLATED,
    FlowVerdict,
    ScenarioOutcome,
    SurvivabilityReport,
    render_survivability,
    survivability,
)

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FaultScenario",
    "ServerDegradation",
    "ServerFailure",
    "BurstInflation",
    "CompositeScenario",
    "call_with_budget",
    "MET",
    "VIOLATED",
    "SEVERED",
    "FlowVerdict",
    "ScenarioOutcome",
    "SurvivabilityReport",
    "survivability",
    "render_survivability",
]
