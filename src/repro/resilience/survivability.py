"""Survivability analysis: which deadline guarantees survive a fault?

For a network and a set of :class:`~repro.resilience.faults.FaultScenario`,
re-run an end-to-end analysis on every faulted counterpart and report a
per-flow verdict:

* ``met`` — the flow still meets its deadline under the fault;
* ``violated`` — the flow's bound exceeds its deadline (or no finite
  bound exists because the fault overloaded a server);
* ``severed`` — a failed server cut the flow's path and no alternate
  route exists.

When a scenario fails servers outright, severed flows are first
*rerouted and retested*: if the union server graph (minus the failed
servers) still connects the flow's entry to its exit, the flow is
re-added along the shortest such path and judged on its rerouted bound.
This answers the operational question behind the paper's admission story
— not just "is the bound tight?" but "does the guarantee survive?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.analysis.base import Analyzer, DelayReport
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.errors import (
    AnalysisError,
    AnalysisTimeoutError,
    InstabilityError,
    TopologyError,
)
from repro.network.flow import Flow
from repro.network.topology import Network
from repro.resilience.faults import FaultScenario

__all__ = [
    "MET",
    "VIOLATED",
    "SEVERED",
    "FlowVerdict",
    "ScenarioOutcome",
    "SurvivabilityReport",
    "survivability",
    "render_survivability",
]

#: Verdict statuses.
MET = "met"
VIOLATED = "violated"
SEVERED = "severed"


@dataclass(frozen=True)
class FlowVerdict:
    """One flow's fate under one fault scenario.

    Attributes
    ----------
    flow:
        Flow name.
    status:
        One of :data:`MET`, :data:`VIOLATED`, :data:`SEVERED`.
    bound:
        End-to-end bound under the fault (``inf`` when severed or no
        finite bound exists).
    deadline:
        The flow's deadline (``inf`` = best-effort).
    baseline:
        The flow's bound in the healthy network, for comparison.
    rerouted:
        True when the verdict is for a rerouted path around a failure.
    detail:
        Extra context ("no finite bound (overloaded)", the reroute…).
    """

    flow: str
    status: str
    bound: float
    deadline: float
    baseline: float
    rerouted: bool = False
    detail: str = ""


@dataclass(frozen=True)
class ScenarioOutcome:
    """All verdicts for one scenario."""

    scenario: str
    verdicts: tuple[FlowVerdict, ...]
    error: str | None = None

    def _count(self, status: str) -> int:
        return sum(1 for v in self.verdicts if v.status == status)

    @property
    def n_met(self) -> int:
        return self._count(MET)

    @property
    def n_violated(self) -> int:
        return self._count(VIOLATED)

    @property
    def n_severed(self) -> int:
        return self._count(SEVERED)

    @property
    def survives(self) -> bool:
        """True when every flow still meets its deadline."""
        return all(v.status == MET for v in self.verdicts)


@dataclass(frozen=True)
class SurvivabilityReport:
    """Survivability verdicts for every (scenario, flow) pair."""

    algorithm: str
    outcomes: tuple[ScenarioOutcome, ...]

    @property
    def survives(self) -> bool:
        """True when every scenario leaves every deadline intact."""
        return all(o.survives for o in self.outcomes)

    def worst_flows(self) -> tuple[str, ...]:
        """Flows that lose their guarantee under at least one scenario."""
        bad = {v.flow for o in self.outcomes for v in o.verdicts
               if v.status != MET}
        return tuple(sorted(bad))


# ----------------------------------------------------------------------


def _reroute_path(network: Network, flow: Flow,
                  failed: frozenset) -> tuple | None:
    """Shortest alternate path for *flow* avoiding *failed* servers.

    Routes over the union server graph induced by all flows (the
    observable topology); returns None when entry or exit failed or no
    alternate route exists.
    """
    src, dst = flow.path[0], flow.path[-1]
    if src in failed or dst in failed:
        return None
    graph = network.server_graph
    graph.remove_nodes_from(failed)
    try:
        return tuple(nx.shortest_path(graph, src, dst))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None


def _verdict(flow: Flow, report: DelayReport, baseline: float,
             rerouted: bool, detail: str = "") -> FlowVerdict:
    bound = report.delay_of(flow.name)
    status = MET if bound <= flow.deadline else VIOLATED
    return FlowVerdict(flow.name, status, bound, flow.deadline,
                       baseline, rerouted=rerouted, detail=detail)


def survivability(network: Network,
                  scenarios: Iterable[FaultScenario],
                  analyzer: Analyzer,
                  reroute: bool = True, *,
                  ctx: AnalysisContext = NULL_CONTEXT,
                  ) -> SurvivabilityReport:
    """Re-analyze *network* under every scenario and judge every flow.

    Parameters
    ----------
    network:
        The healthy network (flows' deadlines drive the verdicts;
        ``inf`` deadlines can be violated only by severing).
    scenarios:
        Fault scenarios to evaluate, one outcome each.
    analyzer:
        End-to-end analysis used for the healthy baseline and every
        faulted retest.
    reroute:
        Attempt to reroute severed flows around failed servers before
        declaring them severed.
    ctx:
        Execution context: the baseline and every scenario retest get a
        span, deadlines are checked between scenarios, and per-scenario
        verdict counts land in the registry.

    Returns
    -------
    SurvivabilityReport
        One :class:`ScenarioOutcome` per scenario, in input order.
    """
    with ctx.span("survivability_baseline", analyzer=analyzer.name):
        baseline = analyzer.run(network, ctx)
    outcomes = []
    for scenario in scenarios:
        ctx.checkpoint("survivability scenario")
        with ctx.span("scenario", scenario=scenario.describe()):
            outcome = _evaluate_scenario(network, scenario, analyzer,
                                         baseline, reroute, ctx)
            ctx.annotate(met=outcome.n_met, violated=outcome.n_violated,
                         severed=outcome.n_severed,
                         survives=outcome.survives)
        ctx.count("survivability.scenarios")
        if not outcome.survives:
            ctx.count("survivability.degraded")
        outcomes.append(outcome)
    return SurvivabilityReport(algorithm=analyzer.name,
                               outcomes=tuple(outcomes))


def _evaluate_scenario(network: Network, scenario: FaultScenario,
                       analyzer: Analyzer, baseline: DelayReport,
                       reroute: bool,
                       ctx: AnalysisContext = NULL_CONTEXT,
                       ) -> ScenarioOutcome:
    faulted = scenario.apply(network)
    failed = scenario.failed_servers(network)

    rerouted: dict[str, tuple] = {}
    severed = [f for f in network.iter_flows()
               if f.name not in faulted.flows]
    if reroute and failed:
        for flow in severed:
            path = _reroute_path(network, flow, failed)
            if path is None:
                continue
            try:
                faulted = faulted.with_flow(
                    Flow(flow.name, flow.bucket, path,
                         deadline=flow.deadline, priority=flow.priority))
            except TopologyError:
                continue  # reroute would create a cycle: stay severed
            rerouted[flow.name] = path

    error: str | None = None
    report: DelayReport | None = None
    try:
        faulted.check_stability()
        report = analyzer.run(faulted, ctx)
    except AnalysisTimeoutError:
        # the caller's deadline expired: abort the whole sweep rather
        # than recording a misleading "violated" verdict
        raise
    except (InstabilityError, AnalysisError) as exc:
        error = f"{type(exc).__name__}: {exc}"

    verdicts = []
    for flow in network.iter_flows():
        base = baseline.delay_of(flow.name)
        if flow.name not in faulted.flows:
            verdicts.append(FlowVerdict(
                flow.name, SEVERED, math.inf, flow.deadline, base,
                detail="no alternate path around the failure"))
        elif report is None:
            verdicts.append(FlowVerdict(
                flow.name, VIOLATED, math.inf, flow.deadline, base,
                rerouted=flow.name in rerouted,
                detail=f"no finite bound ({error})"))
        else:
            path = rerouted.get(flow.name)
            detail = (f"rerouted via {list(path)}" if path else "")
            verdicts.append(_verdict(
                faulted.flow(flow.name), report, base,
                rerouted=path is not None, detail=detail))
    return ScenarioOutcome(scenario.describe(), tuple(verdicts),
                           error=error)


# ----------------------------------------------------------------------


def render_survivability(report: SurvivabilityReport,
                         verbose: bool = False) -> str:
    """Human-readable table of a survivability report."""
    width = max([len("scenario")]
                + [len(o.scenario) for o in report.outcomes])
    lines = [f"survivability ({report.algorithm} analyzer, "
             f"{len(report.outcomes)} scenarios)",
             f"{'scenario':<{width}}  met  viol  sev  verdict"]
    for o in report.outcomes:
        verdict = "SURVIVES" if o.survives else "DEGRADED"
        lines.append(f"{o.scenario:<{width}}  {o.n_met:3d}  "
                     f"{o.n_violated:4d}  {o.n_severed:3d}  {verdict}")
        for v in o.verdicts:
            if v.status == MET and not verbose:
                continue
            extra = f" [{v.detail}]" if v.detail else ""
            if v.status == SEVERED:
                lines.append(f"  - {v.flow}: severed{extra}")
            else:
                lines.append(
                    f"  - {v.flow}: {v.status} "
                    f"(bound {v.bound:.4g}, deadline {v.deadline:.4g},"
                    f" healthy {v.baseline:.4g}){extra}")
    return "\n".join(lines)
