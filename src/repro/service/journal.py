"""Write-ahead journal for admission decisions.

One journal directory holds two files:

``journal.jsonl``
    Append-only records, one JSON object per line, fsync'd before the
    caller proceeds (:class:`~repro.utils.durable.DurableAppender`).
    Record ops: ``base`` (the initial network, written once when a
    fresh journal is opened), ``admit`` (the journaled request plus the
    decision's bound as an exact ``float.hex`` string, the answering
    analyzer and the degradation level) and ``release``.
``snapshot.json``
    Periodic full snapshot — network, admitted set, per-flow bounds —
    written atomically (tmp + fsync + ``os.replace`` + directory
    fsync); immediately after a snapshot lands the journal is rotated
    down to records newer than it.

The write-ahead contract: an admission is journaled *before* the
in-memory controller commits it, so after a crash the journal is a
superset of the acknowledged state and replay reconstructs exactly the
decisions that were answered.  A crash mid-append leaves a truncated
final line; readers drop it (the decision was never acknowledged) and
resuming repairs it — the appender truncates the torn tail before its
first write, so the next record lands on a fresh line instead of being
concatenated onto the partial one (which would lose it).

Sequence numbers are strictly increasing across rotations, so a
recovered service keeps journaling where the dead one stopped.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.admission.requests import ConnectionRequest
from repro.errors import JournalError
from repro.network.serialization import network_from_dict, network_to_dict
from repro.network.topology import Network
from repro.utils.durable import DurableAppender, atomic_write_text, iter_jsonl

__all__ = [
    "Journal",
    "load_journal",
    "request_to_record",
    "request_from_record",
    "JOURNAL_VERSION",
]

JOURNAL_VERSION = 1

JOURNAL_FILE = "journal.jsonl"
SNAPSHOT_FILE = "snapshot.json"


def request_to_record(request: ConnectionRequest) -> dict:
    """JSON-ready dict that round-trips a :class:`ConnectionRequest`."""
    b = request.bucket
    return {
        "name": request.name,
        "sigma": b.sigma,
        "rho": b.rho,
        "peak": None if math.isinf(b.peak) else b.peak,
        "path": list(request.path),
        "deadline": request.deadline,
        "priority": request.priority,
    }


def request_from_record(rec: dict) -> ConnectionRequest:
    """Inverse of :func:`request_to_record`."""
    from repro.curves.token_bucket import TokenBucket

    try:
        peak = rec.get("peak")
        return ConnectionRequest(
            rec["name"],
            TokenBucket(float(rec["sigma"]), float(rec["rho"]),
                        math.inf if peak is None else float(peak)),
            tuple(rec["path"]),
            float(rec["deadline"]),
            priority=int(rec.get("priority", 0)))
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(
            f"malformed request record: {exc}") from exc


class Journal:
    """The service's write-ahead journal over one directory.

    Parameters
    ----------
    directory:
        Journal home; created if missing.
    resume:
        Continue an existing journal (sequence numbers pick up after
        the highest on disk).  Without it, a directory that already
        contains journal state raises :class:`JournalError` instead of
        silently clobbering the previous service's history.
    """

    def __init__(self, directory: str | Path, *,
                 resume: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._journal_path = self.directory / JOURNAL_FILE
        self._snapshot_path = self.directory / SNAPSHOT_FILE
        existing = (self._journal_path.exists()
                    or self._snapshot_path.exists())
        if existing and not resume:
            raise JournalError(
                f"{self.directory} already holds journal state; pass "
                "resume=True (repro recover) to continue it or choose "
                "a fresh directory")
        self._seq = 0
        if resume and existing:
            snapshot, records, _ = load_journal(self.directory)
            if snapshot is not None:
                self._seq = int(snapshot.get("seq", 0))
            for rec in records:
                self._seq = max(self._seq, int(rec.get("seq", 0)))
        self._appender = DurableAppender(self._journal_path)

    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently journaled record."""
        return self._seq

    @property
    def closed(self) -> bool:
        return self._appender.closed

    def _append(self, record: dict) -> int:
        self._seq += 1
        record = {"v": JOURNAL_VERSION, "seq": self._seq, **record}
        self._appender.append(json.dumps(record, sort_keys=True))
        return self._seq

    # ------------------------------------------------------------------
    # record writers
    # ------------------------------------------------------------------

    def write_base(self, network: Network, *, analyzer: str,
                   kernel: str = "") -> int:
        """Journal the service's initial network (fresh journals only).

        *kernel* records the curve kernel every journaled bound was
        produced under, so recovery re-verifies history with the same
        arithmetic — a journal written under the grid backend must not
        be re-checked bit-identically under the exact kernel.  Empty
        means "journal predates kernel recording" (pre-PR-9 journals).
        """
        return self._append({
            "op": "base",
            "network": network_to_dict(network),
            "analyzer": analyzer,
            "kernel": kernel,
        })

    def write_admit(self, request: ConnectionRequest, bound: float, *,
                    analyzer: str, verify_analyzer: str | None,
                    degradation: str) -> int:
        """Durably record an admission *before* it is committed.

        ``bound`` is stored both human-readable and as ``float.hex``
        so recovery can demand bit-identical re-analysis.
        """
        return self._append({
            "op": "admit",
            "request": request_to_record(request),
            "bound": bound,
            "bound_hex": float(bound).hex(),
            "analyzer": analyzer,
            "verify_analyzer": verify_analyzer,
            "degradation": degradation,
        })

    def write_release(self, flow: str) -> int:
        """Durably record a release before it is applied."""
        return self._append({"op": "release", "flow": flow})

    # ------------------------------------------------------------------
    # snapshot + rotation
    # ------------------------------------------------------------------

    def snapshot(self, network: Network, admitted: list[str], *,
                 analyzer: str,
                 bounds: dict[str, float] | None = None,
                 kernel: str = "") -> None:
        """Write a full-state snapshot and rotate the journal.

        The snapshot lands atomically first; only then is the journal
        truncated (atomically, via the same tmp+replace dance on a new
        empty file), so a crash between the two steps merely leaves
        already-snapshotted records in the journal — replay is
        idempotent about those.
        """
        state = {
            "v": JOURNAL_VERSION,
            "seq": self._seq,
            "network": network_to_dict(network),
            "admitted": list(admitted),
            "analyzer": analyzer,
            "kernel": kernel,
            "bounds_hex": (None if bounds is None else
                           {k: float(v).hex() for k, v in bounds.items()}),
        }
        atomic_write_text(self._snapshot_path,
                          json.dumps(state, sort_keys=True, indent=1))
        # rotate: close the live appender, atomically empty the file,
        # reopen.  Crash-safe at every point (see docstring).
        self._appender.close()
        atomic_write_text(self._journal_path, "")
        self._appender = DurableAppender(self._journal_path)

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(directory: str | Path,
                 ) -> tuple[dict | None, list[dict], int]:
    """Read ``(snapshot, records, corrupt_lines)`` from a journal dir.

    * ``snapshot`` is the parsed ``snapshot.json`` or ``None``;
    * ``records`` are the parsed journal lines (file order) *newer*
      than the snapshot's sequence number — older ones were rotated
      into the snapshot and replaying them again would be redundant;
    * ``corrupt_lines`` counts unparseable journal lines.  A corrupt
      *final* line is the expected signature of a crash mid-append and
      is silently tolerated; corruption elsewhere is reported through
      the count but still skipped (the WAL contract: a record that
      cannot be parsed was never acknowledged).

    Raises :class:`JournalError` when the directory holds no journal
    state at all, or the snapshot itself cannot be parsed (the journal
    alone cannot reconstruct state without its base/snapshot).
    """
    directory = Path(directory)
    journal_path = directory / JOURNAL_FILE
    snapshot_path = directory / SNAPSHOT_FILE
    if not journal_path.exists() and not snapshot_path.exists():
        raise JournalError(f"no journal state in {directory}")

    snapshot: dict | None = None
    if snapshot_path.exists():
        try:
            snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise JournalError(
                f"corrupt snapshot {snapshot_path}: {exc}") from exc
        if not isinstance(snapshot, dict):
            raise JournalError(f"corrupt snapshot {snapshot_path}: "
                               "not a JSON object")
    floor = int(snapshot.get("seq", 0)) if snapshot is not None else 0

    records: list[dict] = []
    corrupt = 0
    if journal_path.exists():
        for rec, ok in iter_jsonl(journal_path):
            if not ok:
                corrupt += 1
                continue
            if int(rec.get("seq", 0)) > floor:
                records.append(rec)
    return snapshot, records, corrupt
