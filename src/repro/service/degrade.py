"""Conservative closed-form bounds: the last degradation rung.

When every real analyzer in the admission chain is unavailable (open
circuit breakers, blown budgets, repeated crashes) the service still
has to answer.  :class:`ConservativeAnalysis` produces sound but loose
end-to-end bounds from pure arithmetic — no curve kernels, no grids,
no convolution — so it can neither hang nor run out of budget:

* At each server the entire competing aggregate is summed into one
  token bucket (total burst ``sigma_tot``, total rate ``rho_tot``).
* The server's local delay bound is its **busy-period length**
  ``sigma_tot / (capacity - rho_tot)`` — the time a work-conserving
  server needs to drain the worst-case backlog.  Any packet of any flow
  leaves within the busy period regardless of scheduling order, so the
  bound holds for FIFO, static-priority and guaranteed-rate servers
  alike (it is the classic order-free bound, strictly looser than every
  analyzer in this package).
* Bursts inflate downstream exactly as in Algorithm Decomposed:
  a flow entering server *k* carries ``sigma + rho * (delay so far)``.
  Servers are processed in topological order, so every upstream delay
  is final before it is consumed.

The analysis is ``O(servers x flows)`` and allocation-light; on the
paper's 32-server tandem it answers in microseconds.  Its looseness is
the price of availability — decisions it produces are tagged
``closed_form`` so operators can tell exactly which admissions were
made under full degradation (see ``docs/OPERATIONS.md``).
"""

from __future__ import annotations

from repro.analysis.base import Analyzer, DelayReport, FlowDelay
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.errors import AnalysisError
from repro.network.topology import Network

__all__ = ["ConservativeAnalysis", "conservative_bounds"]


def conservative_bounds(network: Network) -> dict[str, FlowDelay]:
    """Per-flow conservative end-to-end bounds (see module docstring).

    Raises :class:`~repro.errors.AnalysisError` on cyclic networks —
    the burst-inflation recursion needs a topological order.
    """
    if not network.is_feedforward:
        raise AnalysisError(
            "conservative closed-form bounds need a feed-forward "
            "network (cyclic server graph has no topological order)")
    # delay accumulated by each flow over the servers processed so far
    acc: dict[str, float] = {f.name: 0.0 for f in network.iter_flows()}
    contributions: dict[str, list[tuple[object, float]]] = {
        name: [] for name in acc}
    for sid in network.topological_servers():
        spec = network.server(sid)
        flows = network.flows_at(sid)
        if not flows:
            continue
        sigma_tot = sum(f.bucket.sigma + f.bucket.rho * acc[f.name]
                        for f in flows)
        rho_tot = sum(f.bucket.rho for f in flows)
        # check_stability() guarantees rho_tot < capacity
        local = sigma_tot / (spec.capacity - rho_tot)
        for f in flows:
            acc[f.name] += local
            contributions[f.name].append((sid, local))
    return {
        name: FlowDelay(name, total, tuple(contributions[name]))
        for name, total in acc.items()
    }


class ConservativeAnalysis(Analyzer):
    """Analyzer facade over :func:`conservative_bounds`.

    Plugs into the admission fallback chain like any other analyzer, so
    the degraded service reuses the controller's transactional
    admission logic unchanged.  Bounds are *sound upper bounds* but
    markedly looser than Decomposed/Integrated — admission under this
    analyzer rejects connections the network could serve.
    """

    name = "conservative"

    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        network.check_stability()
        with ctx.analysis_scope(self.name):
            ctx.checkpoint("conservative bounds")
            delays = conservative_bounds(network)
            ctx.count("analysis.conservative_runs")
        return DelayReport(self.name, delays,
                           meta={"note": "order-free busy-period bounds; "
                                         "sound but loose"})
