"""Crash recovery: replay snapshot + journal into an identical service.

Recovery is two separable steps:

1. :func:`recover_state` — pure structural replay.  Start from the
   snapshot (or the journal's ``base`` record), apply every ``admit``
   and ``release`` in sequence order.  Replay is **idempotent**: an
   admit whose flow already exists and a release whose flow is already
   gone are counted as skips, not errors — both legitimately occur when
   a crash lands between a snapshot and the journal rotation, or when a
   double-release was journaled.
2. :func:`verify_recovery` — differential re-verification.  Every
   replayed admission's bound is *re-analyzed* on the reconstructed
   candidate network with the analyzer that originally answered (cold
   equivalent for engine answers) and compared **bit-identically**
   (``float.hex``) against the journaled value; the final network is
   additionally checked against the snapshot's per-flow bounds when the
   snapshot is the newest state.  Any mismatch means the journal and
   the code disagree about history — the recovered controller must not
   be trusted to re-admit traffic.

``repro recover`` drives both and :func:`recover_service` rebuilds a
live :class:`~repro.service.AdmissionService` that continues journaling
where the dead process stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.admission.controller import AdmissionController
from repro.analysis.base import Analyzer
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.errors import AnalysisError, JournalError, RecoveryError
from repro.network.serialization import network_from_dict
from repro.network.topology import Network
from repro.service.degrade import ConservativeAnalysis
from repro.service.journal import load_journal, request_from_record

__all__ = [
    "RecoveredState",
    "RecoveryReport",
    "recover_state",
    "recover_service",
    "verify_recovery",
    "resolve_analyzer",
]


def resolve_analyzer(name: str) -> Analyzer:
    """Build the analyzer a journal record names.

    Engine answers are journaled with their cold-equivalent name
    (``incremental+integrated`` verifies as ``integrated`` — the engine
    is bit-identical to its wrapped analyzer by construction), and the
    degraded rung's ``conservative`` resolves to
    :class:`~repro.service.degrade.ConservativeAnalysis`.
    """
    if name.startswith("incremental+"):
        name = name[len("incremental+"):]
    if name == "conservative":
        return ConservativeAnalysis()
    from repro.analysis.decomposed import DecomposedAnalysis
    from repro.analysis.feedback import FeedbackAnalysis
    from repro.analysis.service_curve import ServiceCurveAnalysis
    from repro.core.integrated import IntegratedAnalysis

    registry = {
        "decomposed": DecomposedAnalysis,
        "service_curve": ServiceCurveAnalysis,
        "integrated": IntegratedAnalysis,
        "feedback": FeedbackAnalysis,
    }
    try:
        return registry[name]()
    except KeyError:
        raise RecoveryError(
            f"journal names unknown analyzer {name!r}") from None


@dataclass(frozen=True)
class RecoveredState:
    """Result of a structural journal replay."""

    network: Network
    admitted: tuple[str, ...]
    analyzer_name: str
    kernel: str  #: curve kernel the journal was recorded under ("" = legacy)
    last_seq: int
    snapshot_seq: int  #: 0 when no snapshot existed
    replayed: int      #: records applied
    skipped: int       #: idempotent skips (duplicate admit / release)
    corrupt_lines: int
    records: tuple[dict, ...] = field(repr=False)


def recover_state(directory: str | Path) -> RecoveredState:
    """Structurally replay a journal directory (no re-analysis).

    Raises :class:`~repro.errors.RecoveryError` when the journal has
    neither snapshot nor base record, or a record is structurally
    impossible (e.g. admit onto an unknown server).
    """
    snapshot, records, corrupt = load_journal(directory)

    if snapshot is not None:
        try:
            network = network_from_dict(snapshot["network"])
            admitted = list(snapshot.get("admitted", []))
            analyzer_name = str(snapshot.get("analyzer", "integrated"))
            kernel = str(snapshot.get("kernel", ""))
            snapshot_seq = int(snapshot.get("seq", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise RecoveryError(f"malformed snapshot: {exc}") from exc
    else:
        if not records or records[0].get("op") != "base":
            raise RecoveryError(
                "journal has no snapshot and no base record; "
                "state cannot be reconstructed")
        base = records[0]
        try:
            network = network_from_dict(base["network"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RecoveryError(f"malformed base record: {exc}") from exc
        analyzer_name = str(base.get("analyzer", "integrated"))
        kernel = str(base.get("kernel", ""))
        admitted = []
        snapshot_seq = 0
        records = records[1:]

    last_seq = snapshot_seq
    replayed = skipped = 0
    for rec in records:
        op = rec.get("op")
        seq = int(rec.get("seq", 0))
        last_seq = max(last_seq, seq)
        if op == "base":
            # a resumed journal may re-journal nothing; a second base
            # record is meaningless mid-history
            raise RecoveryError(
                f"unexpected base record mid-journal (seq {seq})")
        if op == "admit":
            try:
                request = request_from_record(rec["request"])
            except (KeyError, JournalError) as exc:
                raise RecoveryError(
                    f"unreplayable admit record (seq {seq}): "
                    f"{exc}") from exc
            if request.name in network.flows:
                skipped += 1  # idempotent: already applied
                if request.name not in admitted:
                    admitted.append(request.name)
                continue
            flow = AdmissionController._flow_from_request(request)
            network = network.with_flow(flow)
            admitted.append(request.name)
            replayed += 1
        elif op == "release":
            name = rec.get("flow")
            if name not in network.flows:
                skipped += 1  # idempotent: double release
                if name in admitted:
                    admitted.remove(name)
                continue
            network = network.without_flow(name)
            if name in admitted:
                admitted.remove(name)
            replayed += 1
        else:
            raise RecoveryError(
                f"unknown journal op {op!r} (seq {seq})")

    return RecoveredState(
        network=network, admitted=tuple(admitted),
        analyzer_name=analyzer_name, kernel=kernel, last_seq=last_seq,
        snapshot_seq=snapshot_seq, replayed=replayed, skipped=skipped,
        corrupt_lines=corrupt, records=tuple(records))


# ----------------------------------------------------------------------
# bit-identical verification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of the differential recovery verification."""

    checked: int
    mismatches: tuple[str, ...]
    final_bounds: dict[str, float]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = [f"re-verified {self.checked} journaled bound(s): "
                 + ("all bit-identical" if self.ok
                    else f"{len(self.mismatches)} MISMATCH(ES)")]
        lines += [f"  MISMATCH {m}" for m in self.mismatches]
        return "\n".join(lines)


def verify_recovery(directory: str | Path, *,
                    kernel: str | None = None,
                    store=None,
                    ctx: AnalysisContext = NULL_CONTEXT) -> RecoveryReport:
    """Re-analyze every journaled admission and demand bit-identity.

    Replays the journal a second time, re-running the recorded
    ``verify_analyzer`` on each reconstructed candidate network and
    comparing ``float.hex`` representations.  Also re-checks the
    snapshot's per-flow bounds when no newer records exist.  Analysis
    failures during verification are reported as mismatches (history
    claims a bound existed; we cannot reproduce it).

    *store* (a :class:`~repro.store.AnalysisStore`) accelerates the
    replay: each verification analyzer runs behind an incremental
    engine consulting the store before re-deriving per-hop results.
    The ``float.hex`` comparison is unchanged — every bound, however
    served, is still checked bit-for-bit against the journal, so a
    stale or corrupted store can only slow verification down (miss →
    recompute), never let a wrong bound through.

    Re-analysis runs under the **journaled curve kernel**: bounds
    recorded under the grid backend cannot be reproduced bit-for-bit
    by the exact kernel (or vice versa).  Passing *kernel* asserts the
    caller's expectation — a mismatch with a kernel-recording journal
    raises :class:`~repro.errors.RecoveryError` instead of failing
    every bound comparison; journals predating kernel recording verify
    under *kernel* (or the ambient selection) as before.
    """
    snapshot, records, _ = load_journal(directory)
    state = recover_state(directory)
    if kernel is not None and state.kernel and kernel != state.kernel:
        raise RecoveryError(
            f"journal {Path(directory)} was recorded under curve kernel "
            f"{state.kernel!r}; verifying under {kernel!r} would compare "
            "bounds across kernels — rerun without --kernel or with "
            f"--kernel {state.kernel}")
    effective = state.kernel or kernel
    if effective:
        ctx = (ctx.with_kernel(effective)
               if isinstance(ctx, AnalysisContext) and ctx.kernel is None
               else ctx)
        if not isinstance(ctx, AnalysisContext):
            ctx = AnalysisContext(kernel=effective)

    analyzers: dict[str, Analyzer] = {}

    def analyzer_for(name: str) -> Analyzer:
        if name not in analyzers:
            resolved = resolve_analyzer(name)
            if store is not None:
                from repro.engine import IncrementalEngine
                engine = IncrementalEngine(resolved, store=store)
                if engine.supports_incremental:
                    resolved = engine
            analyzers[name] = resolved
        return analyzers[name]

    mismatches: list[str] = []
    checked = 0

    # -- step-by-step: each admit's bound on its candidate network -----
    if snapshot is not None:
        network = network_from_dict(snapshot["network"])
    else:
        network = network_from_dict(records[0]["network"])
        records = records[1:]
    for rec in records:
        op = rec.get("op")
        seq = int(rec.get("seq", 0))
        if op == "admit":
            request = request_from_record(rec["request"])
            flow = AdmissionController._flow_from_request(request)
            if request.name in network.flows:
                continue  # idempotent skip: no journaled bound to check
            network = network.with_flow(flow)
            expected_hex = rec.get("bound_hex")
            verify_name = rec.get("verify_analyzer") or rec.get("analyzer")
            if expected_hex is None or verify_name is None:
                continue
            ctx.checkpoint(f"verify admit seq {seq}")
            try:
                report = analyzer_for(verify_name).run(network, ctx)
                got = report.delay_of(request.name)
            except (AnalysisError, KeyError) as exc:
                mismatches.append(
                    f"seq {seq} flow {request.name!r}: re-analysis with "
                    f"{verify_name!r} failed: {exc}")
                continue
            checked += 1
            if float(got).hex() != expected_hex:
                mismatches.append(
                    f"seq {seq} flow {request.name!r} ({verify_name}): "
                    f"journaled {float.fromhex(expected_hex)!r} != "
                    f"re-analyzed {got!r}")
        elif op == "release":
            name = rec.get("flow")
            if name in network.flows:
                network = network.without_flow(name)

    # -- snapshot bounds, when the snapshot is the newest state --------
    final_bounds: dict[str, float] = {}
    if (snapshot is not None and snapshot.get("bounds_hex")
            and state.last_seq == state.snapshot_seq):
        verify_name = str(snapshot.get("analyzer", "integrated"))
        try:
            report = analyzer_for(verify_name).run(state.network, ctx)
        except AnalysisError as exc:
            mismatches.append(
                f"snapshot re-analysis with {verify_name!r} failed: {exc}")
        else:
            for fname, expected_hex in snapshot["bounds_hex"].items():
                try:
                    got = report.delay_of(fname)
                except KeyError:
                    mismatches.append(
                        f"snapshot flow {fname!r} missing from "
                        "re-analysis")
                    continue
                checked += 1
                final_bounds[fname] = got
                if float(got).hex() != expected_hex:
                    mismatches.append(
                        f"snapshot flow {fname!r} ({verify_name}): "
                        f"journaled {float.fromhex(expected_hex)!r} != "
                        f"re-analyzed {got!r}")

    return RecoveryReport(checked=checked, mismatches=tuple(mismatches),
                          final_bounds=final_bounds)


def recover_service(directory: str | Path, *,
                    analyzer: Analyzer | None = None,
                    verify: bool = True,
                    kernel: str | None = None,
                    store=None,
                    ctx: AnalysisContext = NULL_CONTEXT,
                    **service_kwargs):
    """Rebuild a live :class:`~repro.service.AdmissionService`.

    Replays the journal, optionally runs :func:`verify_recovery`
    (raising :class:`~repro.errors.RecoveryError` on any bound
    mismatch), and returns a service whose journal *resumes* the
    directory — sequence numbers continue, nothing is clobbered.

    *analyzer* overrides the journaled primary analyzer; *kernel*
    asserts the curve kernel and must match the journaled one when the
    journal records it (:class:`~repro.errors.RecoveryError`
    otherwise) — the resumed service is pinned to the journaled kernel
    so new records stay comparable with history.  *store* warm-boots
    recovery: verification consults it before re-deriving per-hop
    results (bit-identity still enforced per bound) and the resumed
    service keeps it as its persistent cache tier.  Extra keyword
    arguments are forwarded to the service constructor.
    """
    from repro.service.service import AdmissionService

    state = recover_state(directory)
    if kernel is not None and state.kernel and kernel != state.kernel:
        raise RecoveryError(
            f"journal {Path(directory)} was recorded under curve kernel "
            f"{state.kernel!r}; resuming under {kernel!r} would mix "
            "bounds from two kernels in one journal — rerun without "
            f"--kernel or with --kernel {state.kernel}")
    if verify:
        report = verify_recovery(directory, kernel=kernel, store=store,
                                 ctx=ctx)
        if not report.ok:
            raise RecoveryError(
                "recovered state failed bound verification:\n"
                + report.render())
    primary = analyzer if analyzer is not None else resolve_analyzer(
        state.analyzer_name)
    return AdmissionService(
        state.network, primary, journal_dir=directory, resume=True,
        admitted=state.admitted, kernel=state.kernel or kernel,
        store=store, ctx=ctx, **service_kwargs)
