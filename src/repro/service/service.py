"""The durable admission service: controller + journal + breakers.

:class:`AdmissionService` wraps an
:class:`~repro.admission.AdmissionController` for long-lived operation:

**Write-ahead durability.**  Every positive admission is journaled and
fsync'd *before* the in-memory commit, every release likewise; periodic
snapshots bound replay time.  A SIGKILL at any instant loses at most
the decision currently being answered — never an acknowledged one.

**Circuit breakers.**  Each analyzer rung gets a
:class:`~repro.resilience.CircuitBreaker`; consecutive
:class:`~repro.errors.AnalysisTimeoutError`/analysis failures open it
and the chain stops paying for that rung until its cooldown probe
succeeds.  Breaker counters land in the service's
:class:`~repro.context.MetricsRegistry` (``breaker.<name>.*``).

**Graceful degradation.**  The chain ends in the conservative
closed-form analyzer, which cannot hang; under explicit or latency-
triggered overload the service *sheds load* by gating the chain down to
the incremental engine's cache (shed level 1; without an engine the
primary rung is kept, as there is no cache to serve from) and then to
the conservative bounds alone (shed level 2).  Every decision carries a
``degradation`` tag — ``normal``, ``cached``, ``degraded`` (a looser
fallback analyzer answered), ``closed_form``, or ``unavailable``
(failed closed) — so operators can audit exactly which admissions were
made under duress.

**Graceful shutdown.**  :meth:`close` checkpoints and flushes;
:meth:`graceful_shutdown` arms SIGTERM/SIGINT to do the same (the
``repro serve`` loop runs inside it).
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterable, Iterator, Sequence

from repro.admission.controller import AdmissionController
from repro.admission.requests import AdmissionDecision, ConnectionRequest
from repro.analysis.base import Analyzer
from repro.context import NULL_CONTEXT, AnalysisContext, QuantileReservoir
from repro.curves.kernels import current_kernel
from repro.errors import (
    AdmissionError,
    ServiceError,
)
from repro.network.topology import Network
from repro.resilience.breaker import CircuitBreaker
from repro.service.degrade import ConservativeAnalysis
from repro.service.journal import Journal

__all__ = [
    "AdmissionService",
    "ServiceDecision",
    "DEGRADATION_NORMAL",
    "DEGRADATION_CACHED",
    "DEGRADATION_DEGRADED",
    "DEGRADATION_CLOSED_FORM",
    "DEGRADATION_UNAVAILABLE",
]

DEGRADATION_NORMAL = "normal"
DEGRADATION_CACHED = "cached"
DEGRADATION_DEGRADED = "degraded"
DEGRADATION_CLOSED_FORM = "closed_form"
DEGRADATION_UNAVAILABLE = "unavailable"


@dataclass(frozen=True)
class ServiceDecision:
    """An :class:`AdmissionDecision` plus its service-level context.

    Attributes
    ----------
    decision:
        The controller's decision (reason, bound, candidate network).
    degradation:
        Which degradation level answered (see module docstring).
    seq:
        Journal sequence number of the decision's record; ``None`` for
        rejections (only state *changes* are journaled).
    """

    decision: AdmissionDecision
    degradation: str
    seq: int | None = None

    @property
    def admitted(self) -> bool:
        return self.decision.admitted

    @property
    def reason(self) -> str:
        return self.decision.reason

    @property
    def analyzer(self) -> str:
        return self.decision.analyzer

    @property
    def bound(self) -> float:
        return self.decision.new_flow_bound


class AdmissionService:
    """Durable, degradation-aware admission service.

    Parameters
    ----------
    network:
        Initial network (or the recovered one when ``resume=True``).
    analyzer:
        Primary delay analysis.
    journal_dir:
        Directory for the write-ahead journal; must be fresh unless
        *resume* is set (see :class:`~repro.service.journal.Journal`).
    resume:
        Continue an existing journal instead of starting one — used by
        :func:`~repro.service.recovery.recover_service`.
    admitted:
        Names of already-admitted connections (recovery seeding).
    fallbacks:
        Extra analyzers between the primary and the conservative rung;
        decisions they answer are tagged ``degraded``.
    conservative:
        Append the closed-form :class:`ConservativeAnalysis` as the
        final, breaker-less rung (default True).
    incremental:
        Run the primary behind an incremental engine (default True) —
        both the steady-state fast path and shed level 1's cache.
    analysis_budget:
        Per-attempt wall-clock budget (seconds) forwarded to the
        controller; blown budgets feed the breakers.
    breaker_threshold / breaker_reset_s:
        Circuit-breaker tuning shared by every protected rung.
    snapshot_every:
        Journaled operations between automatic snapshots.
    shed_latency_s:
        Optional latency SLO driving *automatic* load shedding: an
        exponentially-weighted decision latency above it raises the
        shed level (above ``4x`` it jumps to closed-form-only), and
        recovery below half of it clears the automatic shed.
    store:
        Optional persistent :class:`~repro.store.AnalysisStore`
        forwarded to the controller: the incremental engine probes it
        on memory misses and persists fresh results, so a restarted
        service warm-boots from prior runs' analyses instead of
        recomputing them.  The service flushes it on :meth:`close` but
        never closes it — the handle belongs to the caller.
    ctx:
        Execution context; breaker and ``service.*`` counters land in
        its metrics registry.
    clock:
        Monotonic time source for the breakers (injectable in tests).
    """

    def __init__(self, network: Network, analyzer: Analyzer, *,
                 journal_dir: str | Path,
                 resume: bool = False,
                 admitted: Iterable[str] = (),
                 fallbacks: Sequence[Analyzer] = (),
                 conservative: bool = True,
                 incremental: bool = True,
                 analysis_budget: float | None = None,
                 signal_backstop: bool = False,
                 breaker_threshold: int = 3,
                 breaker_reset_s: float = 30.0,
                 snapshot_every: int = 64,
                 shed_latency_s: float | None = None,
                 kernel: str | None = None,
                 store=None,
                 ctx: AnalysisContext = NULL_CONTEXT,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if snapshot_every < 1:
            raise ServiceError(
                f"snapshot_every must be >= 1, got {snapshot_every}")
        if shed_latency_s is not None and not shed_latency_s > 0:
            raise ServiceError(
                f"shed_latency_s must be > 0, got {shed_latency_s}")
        if kernel is not None and getattr(ctx, "kernel", None) is None:
            # pin every analysis this service runs to the named kernel
            ctx = (ctx.with_kernel(kernel)
                   if isinstance(ctx, AnalysisContext)
                   else AnalysisContext(kernel=kernel))
        self._ctx = ctx
        self._clock = clock
        self._snapshot_every = int(snapshot_every)
        self._shed_latency = shed_latency_s
        self._manual_shed = 0
        self._auto_shed = 0
        self._latency_ewma: float | None = None
        self._latency_reservoir = QuantileReservoir()
        self._ops_since_snapshot = 0
        self._closed = False
        self._shutdown_requested = False

        self._conservative = ConservativeAnalysis() if conservative else None
        chain_fallbacks = list(fallbacks)
        if self._conservative is not None:
            chain_fallbacks.append(self._conservative)

        self._store = store
        controller_kwargs = dict(
            fallbacks=tuple(chain_fallbacks),
            analysis_budget=analysis_budget,
            signal_backstop=signal_backstop,
            context=ctx,
            incremental=incremental,
            analyzer_gate=self._gate,
            analyzer_listener=self._listen,
            store=store,
        )
        admitted = list(admitted)
        if admitted:
            self._controller = AdmissionController.from_state(
                network, admitted, analyzer, **controller_kwargs)
        else:
            self._controller = AdmissionController(
                network, analyzer, **controller_kwargs)

        chain = self._controller.chain
        self._engine = self._controller.engine
        # degradation level each rung answers at, and the cold analyzer
        # name recovery should re-verify its bounds with
        self._levels: dict[str, str] = {}
        self._verify_names: dict[str, str] = {}
        primary_rungs = 2 if self._engine is not None else 1
        for i, a in enumerate(chain):
            if a is self._conservative:
                self._levels[a.name] = DEGRADATION_CLOSED_FORM
                self._verify_names[a.name] = a.name
            elif i < primary_rungs:
                self._levels[a.name] = DEGRADATION_NORMAL
                self._verify_names[a.name] = (
                    self._engine.analyzer.name
                    if a is self._engine else a.name)
            else:
                self._levels[a.name] = DEGRADATION_DEGRADED
                self._verify_names[a.name] = a.name
        #: cold-equivalent name of the primary (journal base/snapshots)
        self._primary_name = self._verify_names[chain[0].name]
        #: the rung shed level 1 keeps: the engine's cache when there
        #: is one, otherwise the primary itself (a non-incremental
        #: service has no cache to answer from, and gating the primary
        #: too would silently turn level 1 into level 2)
        self._shed1_rung = (self._engine if self._engine is not None
                            else chain[0])

        self._breakers: dict[int, CircuitBreaker] = {}
        for a in chain:
            if a is self._conservative:
                continue  # pure arithmetic: cannot hang, never tripped
            self._breakers[id(a)] = CircuitBreaker(
                a.name, failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset_s, clock=clock,
                metrics=ctx.metrics)

        #: effective curve kernel for the service's lifetime; recorded
        #: in the journal so recovery re-verifies under the same
        #: arithmetic (ctx selection wins over the ambient default)
        self._kernel = kernel or (ctx.kernel if ctx.kernel is not None
                                  else current_kernel())
        self._journal = Journal(journal_dir, resume=resume)
        if not resume:
            self._journal.write_base(self._controller.network,
                                     analyzer=self._primary_name,
                                     kernel=self._kernel)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def controller(self) -> AdmissionController:
        return self._controller

    @property
    def network(self) -> Network:
        return self._controller.network

    @property
    def admitted(self) -> tuple[str, ...]:
        return self._controller.admitted

    @property
    def journal(self) -> Journal:
        return self._journal

    @property
    def store(self):
        """The persistent analysis store in effect, when any."""
        return self._controller.store

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def shutdown_requested(self) -> bool:
        """Set by the :meth:`graceful_shutdown` signal handlers."""
        return self._shutdown_requested

    @property
    def breakers(self) -> dict[str, CircuitBreaker]:
        """Live breakers keyed by analyzer name."""
        return {b.name: b for b in self._breakers.values()}

    def breaker_states(self) -> dict[str, str]:
        return {name: b.state for name, b in self.breakers.items()}

    @property
    def shed_level(self) -> int:
        """Effective load-shedding level (0 = none, 1 = cache, 2 = CF)."""
        return max(self._manual_shed, self._auto_shed)

    def set_shed_level(self, level: int) -> None:
        """Operator override for load shedding (0, 1 or 2).

        Level 1 keeps only the cache rung — the incremental engine
        when the service runs one, otherwise the primary analyzer
        itself (``incremental=False`` has no cache to fall back on).
        Level 2 keeps only the conservative closed-form rung.
        """
        if level not in (0, 1, 2):
            raise ServiceError(f"shed level must be 0, 1 or 2, got {level}")
        self._manual_shed = level
        self._gauge_shed()

    # ------------------------------------------------------------------
    # chain hooks (wired into the controller)
    # ------------------------------------------------------------------

    def _gate(self, analyzer: Analyzer) -> bool:
        if analyzer is self._conservative:
            return True  # the rung of last resort is never gated
        shed = self.shed_level
        if shed >= 2:
            return False
        if shed >= 1 and analyzer is not self._shed1_rung:
            return False
        breaker = self._breakers.get(id(analyzer))
        return breaker.allow() if breaker is not None else True

    def _listen(self, analyzer: Analyzer,
                exc: BaseException | None) -> None:
        breaker = self._breakers.get(id(analyzer))
        if breaker is None:
            return
        if exc is None:
            breaker.record_success()
        elif isinstance(exc, Exception):
            breaker.record_failure()
        else:
            # KeyboardInterrupt/SystemExit say nothing about the
            # analyzer's health — just free any in-flight probe slot.
            breaker.release_probe()

    # ------------------------------------------------------------------
    # degradation bookkeeping
    # ------------------------------------------------------------------

    def _level_of(self, decision: AdmissionDecision) -> str:
        if not decision.analyzer:
            return DEGRADATION_UNAVAILABLE
        level = self._levels.get(decision.analyzer, DEGRADATION_DEGRADED)
        if (level == DEGRADATION_NORMAL and self.shed_level >= 1
                and self._engine is not None
                and decision.analyzer == self._engine.name):
            return DEGRADATION_CACHED
        return level

    def _gauge_shed(self) -> None:
        if self._ctx.metrics is not None:
            self._ctx.metrics.set("service.shed_level",
                                  float(self.shed_level))

    def latency_quantiles(self) -> dict[str, float]:
        """Exact decision-latency percentiles over the service's life.

        Returns ``{count, mean, p50, p95, p99, max}`` in seconds from
        the streaming reservoir (exact until the reservoir's capacity,
        seeded-uniform after) and publishes each as a
        ``service.latency.<stat>`` gauge in the metrics registry.  The
        EWMA that drives shedding reacts faster but hides the tail;
        this is the honest view the shutdown summary and the load
        harness report.
        """
        return self._latency_reservoir.gauge_into(
            self._ctx.metrics, "service.latency")

    def _note_latency(self, elapsed: float) -> None:
        self._latency_reservoir.observe(elapsed)
        ewma = self._latency_ewma
        self._latency_ewma = (elapsed if ewma is None
                              else 0.7 * ewma + 0.3 * elapsed)
        if self._shed_latency is None:
            return
        if self._latency_ewma > 4.0 * self._shed_latency:
            self._auto_shed = 2
        elif self._latency_ewma > self._shed_latency:
            self._auto_shed = max(self._auto_shed, 1)
        elif self._latency_ewma < 0.5 * self._shed_latency:
            self._auto_shed = 0
        self._gauge_shed()

    # ------------------------------------------------------------------
    # the serving surface
    # ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    def test(self, request: ConnectionRequest, *,
             ctx: AnalysisContext | None = None) -> ServiceDecision:
        """Evaluate a request without committing or journaling it."""
        self._require_open()
        c = ctx if ctx is not None else self._ctx
        t0 = perf_counter()
        decision = self._controller.test(request, ctx=c)
        self._note_latency(perf_counter() - t0)
        level = self._level_of(decision)
        self._ctx.count(f"service.degradation.{level}")
        return ServiceDecision(decision, level)

    def admit(self, request: ConnectionRequest, *,
              ctx: AnalysisContext | None = None) -> ServiceDecision:
        """Test, journal (durably), then commit a connection request.

        Write-ahead ordering: the fsync'd journal record precedes the
        in-memory commit, so a crash at any point either loses the
        decision entirely (never acknowledged) or leaves it replayable.
        """
        self._require_open()
        c = ctx if ctx is not None else self._ctx
        t0 = perf_counter()
        decision = self._controller.test(request, ctx=c)
        self._note_latency(perf_counter() - t0)
        level = self._level_of(decision)
        self._ctx.count("service.requests")
        self._ctx.count(f"service.degradation.{level}")
        seq = None
        if decision.admitted:
            seq = self._journal.write_admit(
                request, decision.new_flow_bound,
                analyzer=decision.analyzer,
                verify_analyzer=self._verify_names.get(decision.analyzer),
                degradation=level)
            self._controller.commit(request, decision)
            self._ctx.count("service.admitted")
            self._ops_since_snapshot += 1
            self._maybe_snapshot()
        else:
            self._ctx.count("service.rejected")
        return ServiceDecision(decision, level, seq)

    def admit_batch(self, requests: Iterable[ConnectionRequest], *,
                    workers: int = 1,
                    ctx: AnalysisContext | None = None,
                    ) -> list[ServiceDecision]:
        """Admit a batch; semantically ``[self.admit(r) for r in ...]``.

        With ``workers > 1`` the admission *tests* of independent
        component groups run concurrently (see
        :mod:`repro.admission.batch`); the durable side is untouched —
        journal records and in-memory commits happen here, serially, in
        request order, each record fsync'd *before* its commit, so the
        write-ahead crash contract and replay idempotency are exactly
        those of per-request :meth:`admit`.  Decisions are bit-identical
        to the serial loop; whenever the planner cannot guarantee that
        (degraded chain, non-decomposed primary, pathological batch)
        requests fall back to :meth:`admit` individually.

        Latency accounting: the batch's wall time is spread evenly over
        its requests for the shedding EWMA and the reservoir.
        """
        requests = list(requests)
        self._require_open()
        c = ctx if ctx is not None else self._ctx
        planned = None
        if workers > 1 and len(requests) > 1:
            from repro.admission.batch import plan_batch
            t0 = perf_counter()
            planned = plan_batch(self._controller, requests,
                                 workers=workers, ctx=c)
            if planned is not None:
                per_request = (perf_counter() - t0) / len(requests)
        if planned is None:
            return [self.admit(r, ctx=c) for r in requests]
        out: list[ServiceDecision] = []
        for request, (kind, decision) in zip(requests, planned):
            if kind == "serial":
                out.append(self.admit(request, ctx=c))
                continue
            self._note_latency(per_request)
            c.count("admission.requests")
            c.count("admission.admitted" if decision.admitted
                    else "admission.rejected")
            level = self._level_of(decision)
            self._ctx.count("service.requests")
            self._ctx.count(f"service.degradation.{level}")
            seq = None
            if decision.admitted:
                seq = self._journal.write_admit(
                    request, decision.new_flow_bound,
                    analyzer=decision.analyzer,
                    verify_analyzer=self._verify_names.get(
                        decision.analyzer),
                    degradation=level)
                self._controller.commit(request, decision)
                self._ctx.count("service.admitted")
                self._ops_since_snapshot += 1
                self._maybe_snapshot()
            else:
                self._ctx.count("service.rejected")
            out.append(ServiceDecision(decision, level, seq))
        return out

    def release(self, name: str, *, missing_ok: bool = False,
                ) -> int | None:
        """Journal and apply a release; returns the journal seq.

        With ``missing_ok`` a release of an unknown/already-released
        connection is a no-op returning ``None`` (mirrors the
        idempotent replay semantics); otherwise it raises the typed
        :class:`~repro.errors.AdmissionError`.
        """
        self._require_open()
        if name not in self._controller.admitted:
            if missing_ok:
                return None
            raise AdmissionError(
                f"connection {name!r} was not admitted by this service",
                flow=name)
        seq = self._journal.write_release(name)
        self._controller.release(name)
        self._ctx.count("service.released")
        self._ops_since_snapshot += 1
        self._maybe_snapshot()
        return seq

    # ------------------------------------------------------------------
    # snapshots & shutdown
    # ------------------------------------------------------------------

    def _current_bounds(self) -> dict[str, float] | None:
        """Per-flow bounds from the primary rung, or None when down.

        Best effort: snapshot bounds are advisory (recovery re-derives
        them), so *any* primary failure — including analyzer bugs —
        degrades to a bound-less snapshot rather than failing a
        checkpoint or the graceful-shutdown path.
        """
        if not self.network.flows:
            return {}
        chain = self._controller.chain
        try:
            report = chain[0].run(self.network, self._ctx)
            return {f.name: report.delay_of(f.name)
                    for f in self.network.iter_flows()}
        except Exception:
            return None

    def _maybe_snapshot(self) -> None:
        if self._ops_since_snapshot >= self._snapshot_every:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Force a snapshot + journal rotation now."""
        self._require_open()
        self._journal.snapshot(
            self.network, list(self._controller.admitted),
            analyzer=self._primary_name, bounds=self._current_bounds(),
            kernel=self._kernel)
        self._ops_since_snapshot = 0
        self._ctx.count("service.snapshots")

    def close(self) -> None:
        """Graceful shutdown: final checkpoint, flush, close journal.

        Idempotent; after closing every serving method raises
        :class:`~repro.errors.ServiceError`.
        """
        if self._closed:
            return
        try:
            if not self._journal.closed:
                self.checkpoint()
        finally:
            store = self.store
            if (store is not None and not store.closed
                    and not store.read_only):
                try:
                    store.flush()
                except Exception:
                    pass  # persistence is best-effort, shutdown is not
            self._journal.close()
            self._closed = True
            self._ctx.count("service.shutdowns")
            if self._latency_reservoir.count:
                self.latency_quantiles()  # final service.latency.* gauges

    def __enter__(self) -> "AdmissionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @contextmanager
    def graceful_shutdown(self,
                          signals: Sequence[int] = (signal.SIGTERM,
                                                    signal.SIGINT),
                          ) -> Iterator["AdmissionService"]:
        """Arm SIGTERM/SIGINT for graceful shutdown around a serve loop.

        The handler only sets :attr:`shutdown_requested` — the serve
        loop is expected to poll it between admissions, so the journal
        is never interrupted mid-fsync.  On exit (normal, signalled or
        raising) the previous handlers are restored and :meth:`close`
        runs (final checkpoint + flush).  Off the main thread, where
        signal handlers cannot be installed, the context degrades to
        just the close-on-exit guarantee.
        """
        previous: dict[int, object] = {}

        def _handler(signum, frame) -> None:
            self._shutdown_requested = True

        try:
            for sig in signals:
                try:
                    previous[sig] = signal.signal(sig, _handler)
                except ValueError:  # not on the main thread
                    break
            yield self
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)
            self.close()
