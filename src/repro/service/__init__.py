"""Durable admission service (system S17): journal, recovery, breakers.

Everything the in-process :class:`~repro.admission.AdmissionController`
deliberately does *not* do lives here:

* :mod:`repro.service.journal` — a write-ahead JSONL journal (fsync'd
  appends, atomic snapshot rotation) recording every admit/release;
* :mod:`repro.service.recovery` — crash recovery that replays
  snapshot + journal into an identical controller and re-verifies the
  journaled delay bounds bit-identically;
* :mod:`repro.service.degrade` — the conservative closed-form analyzer
  answering as the last degradation rung when everything else is down;
* :mod:`repro.service.service` — :class:`AdmissionService`, tying the
  controller, per-analyzer circuit breakers
  (:class:`~repro.resilience.CircuitBreaker`), load-shedding and the
  journal together, with a graceful SIGTERM/SIGINT shutdown path.

CLI: ``repro serve`` runs a journaled admission stream, ``repro
recover`` rebuilds and verifies state after a crash.  Operational
details (journal format, breaker tuning, degradation semantics) are in
``docs/OPERATIONS.md``.
"""

from repro.service.degrade import ConservativeAnalysis
from repro.service.journal import (
    Journal,
    load_journal,
    request_from_record,
    request_to_record,
)
from repro.service.recovery import (
    RecoveredState,
    RecoveryReport,
    recover_service,
    recover_state,
    verify_recovery,
)
from repro.service.service import (
    DEGRADATION_CACHED,
    DEGRADATION_CLOSED_FORM,
    DEGRADATION_DEGRADED,
    DEGRADATION_NORMAL,
    DEGRADATION_UNAVAILABLE,
    AdmissionService,
    ServiceDecision,
)

__all__ = [
    "AdmissionService",
    "ServiceDecision",
    "ConservativeAnalysis",
    "Journal",
    "load_journal",
    "request_to_record",
    "request_from_record",
    "RecoveredState",
    "RecoveryReport",
    "recover_state",
    "recover_service",
    "verify_recovery",
    "DEGRADATION_NORMAL",
    "DEGRADATION_CACHED",
    "DEGRADATION_DEGRADED",
    "DEGRADATION_CLOSED_FORM",
    "DEGRADATION_UNAVAILABLE",
]
