"""Two-server subsystem analysis: the production integrated kernel.

Combines the two sound kernels —

* :func:`repro.core.theorem1.theorem1_bound` (joint busy-period /
  line-rate-capped propagation), and
* :func:`repro.core.fifo_family.family_pair_bound` (FIFO leftover
  service-curve family, "pay bursts only once")

— by taking the elementwise minimum for the through connections, which
is itself a valid upper bound.  Exposes per-class delays and the output
traffic characterization used by Algorithm Integrated's Step 3.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.core.fifo_family import FamilyResult, family_pair_bound
from repro.core.theorem1 import Theorem1Result, theorem1_bound
from repro.servers.fifo import capped_output_curve

__all__ = ["SubsystemResult", "TwoServerSubsystem"]


@dataclass(frozen=True)
class SubsystemResult:
    """Delay bounds and diagnostics for one analyzed subsystem.

    Attributes
    ----------
    delay_through:
        Bound for S12 connections (min over kernels).
    delay_server1 / delay_server2:
        Bounds for S1 / S2 connections.
    winning_kernel:
        "theorem1", "family", or "tie" — which kernel produced the
        through bound (diagnostics for the ablation benchmarks).
    theorem1 / family:
        The raw per-kernel results.
    """

    delay_through: float
    delay_server1: float
    delay_server2: float
    winning_kernel: str
    theorem1: Theorem1Result
    family: FamilyResult


class TwoServerSubsystem:
    """A subsystem of two FIFO servers in tandem (paper Figure 1).

    Parameters
    ----------
    through_curves:
        Constraint curve per S12 connection at server 1's input.
    cross1_curves:
        Constraint curve per S1 connection at server 1's input.
    cross2_curves:
        Constraint curve per S2 connection at server 2's input.
    c1, c2:
        Server capacities.
    use_family_kernel:
        Disable to fall back to the Theorem-1 kernel only (ablation).
    """

    def __init__(self,
                 through_curves: Mapping[str, PiecewiseLinearCurve],
                 cross1_curves: Mapping[str, PiecewiseLinearCurve],
                 cross2_curves: Mapping[str, PiecewiseLinearCurve],
                 c1: float, c2: float,
                 use_family_kernel: bool = True) -> None:
        self.through_curves = dict(through_curves)
        self.cross1_curves = dict(cross1_curves)
        self.cross2_curves = dict(cross2_curves)
        self.c1 = float(c1)
        self.c2 = float(c2)
        self.use_family_kernel = bool(use_family_kernel)

    # ------------------------------------------------------------------

    @staticmethod
    def _aggregate(curves: Mapping[str, PiecewiseLinearCurve],
                   ) -> PiecewiseLinearCurve:
        total = PiecewiseLinearCurve.zero()
        for c in curves.values():
            total = total + c
        return total.simplified()

    def analyze(self) -> SubsystemResult:
        """Compute all per-class delay bounds for this subsystem."""
        f12 = self._aggregate(self.through_curves)
        f1 = self._aggregate(self.cross1_curves)
        f2 = self._aggregate(self.cross2_curves)

        th = theorem1_bound(f12, f1, f2, self.c1, self.c2)

        has_through = bool(self.through_curves)
        if self.use_family_kernel and has_through and \
                math.isfinite(th.delay_through):
            fam = family_pair_bound(f12, f1, f2, self.c1, self.c2)
        else:
            fam = FamilyResult(math.inf, 0.0, 0.0)

        d_through = min(th.delay_through, fam.delay_through)
        if fam.delay_through < th.delay_through:
            winner = "family"
        elif math.isclose(fam.delay_through, th.delay_through,
                          rel_tol=1e-9, abs_tol=1e-12):
            winner = "tie"
        else:
            winner = "theorem1"

        return SubsystemResult(
            delay_through=d_through,
            delay_server1=th.delay_server1,
            delay_server2=th.delay_server2,
            winning_kernel=winner,
            theorem1=th,
            family=fam,
        )

    # ------------------------------------------------------------------

    def output_curves(self, result: SubsystemResult,
                      ) -> dict[str, PiecewiseLinearCurve]:
        """Constraint curves of every connection when leaving the
        subsystem (Algorithm Integrated, Step 3.2).

        Each connection's entry curve is inflated by the *class* delay
        bound it experienced and intersected with the line rate of the
        server it exits from.
        """
        out: dict[str, PiecewiseLinearCurve] = {}
        for name, curve in self.through_curves.items():
            out[name] = capped_output_curve(
                curve, result.delay_through, self.c2)
        for name, curve in self.cross1_curves.items():
            out[name] = capped_output_curve(
                curve, result.delay_server1, self.c1)
        for name, curve in self.cross2_curves.items():
            out[name] = capped_output_curve(
                curve, result.delay_server2, self.c2)
        return out
