"""Algorithm Integrated — the paper's contribution (Figure 2).

End-to-end delay analysis of feed-forward FIFO networks:

1. partition the network into subnetworks of at most two servers
   (:mod:`repro.core.partition`);
2. order the subnetworks topologically;
3. for each subnetwork, jointly bound the delay of connections that
   traverse both servers (:mod:`repro.core.subsystem`) and characterize
   the traffic leaving the subnetwork;
4. sum the per-subnetwork delays along each connection's path.

Static-priority pairs whose through connections share one priority
class use the SP pair kernel (:mod:`repro.core.sp_subsystem` — the
extension the paper's §5 announces); every other non-FIFO block falls
back to singleton analysis, keeping the algorithm sound for arbitrary
mixed networks.

The per-block computation is factored into the pure function
:func:`evaluate_block`: it consumes a :class:`BlockInput` (server
parameters plus every incident flow's exact entry curve and role) and
returns a :class:`BlockOutcome` (per-flow class delays and output
curves).  Identical inputs produce bit-identical outcomes, which is
what lets the incremental engine (:mod:`repro.engine`) memoize blocks
content-addressed: every block runs through
:meth:`repro.context.AnalysisContext.run_block_step`, whose optional
block interceptor is exactly that memoizing wrapper (and which also
carries the cooperative deadline and per-block tracing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.analysis.base import Analyzer, DelayReport, FlowDelay
from repro.analysis.propagation import _local_analysis
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.core.partition import PairAlongPath, PartitionStrategy
from repro.core.subsystem import TwoServerSubsystem
from repro.curves.kernels import current_kernel, use_kernel
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import AnalysisError
from repro.network.topology import Discipline, Network
from repro.servers.fifo import capped_output_curve

__all__ = [
    "IntegratedAnalysis",
    "FlowAtBlock",
    "BlockInput",
    "BlockOutcome",
    "evaluate_block",
]

ServerId = Hashable

#: Roles a flow can play inside a block.  "through" traverses both
#: servers of a pair (j then k); "cross1"/"cross2" enter only j / only
#: k; "local" is the single role at singleton blocks.
_EXIT_INDEX = {"through": -1, "cross1": 0, "cross2": -1, "local": 0}


@dataclass(frozen=True)
class FlowAtBlock:
    """One flow as seen by a block's joint analysis.

    ``curve`` is the exact constraint curve at the flow's entry server
    *within* the block (server j for through/cross1/local, server k for
    cross2).  ``has_next`` says whether the flow continues past the
    block (an output curve is needed).
    """

    name: str
    role: str
    curve: PiecewiseLinearCurve
    has_next: bool
    priority: int
    rho: float


@dataclass(frozen=True)
class BlockInput:
    """Everything that determines one block's joint analysis.

    Deliberately free of server *ids* — two blocks with identical
    parameters, flow sets and entry curves produce identical outcomes
    regardless of where they sit in the network, so the incremental
    engine can share cache entries between them.
    """

    kind: str                       # "fifo_pair" | "sp_pair" | "singleton"
    capacities: tuple[float, ...]   # one per block server, in block order
    disciplines: tuple[str, ...]
    use_family_kernel: bool
    flows: tuple[FlowAtBlock, ...]
    #: Curve kernel the block evaluates under (captured at build time);
    #: part of the engine's content key so exact/grid never alias.
    kernel: str = "exact"


@dataclass(frozen=True)
class BlockOutcome:
    """Result of one block's joint analysis.

    Attributes
    ----------
    delays:
        ``(flow name, class delay)`` in block flow order — the block's
        contribution to each flow's end-to-end bound.
    out_curves:
        ``(flow name, curve)`` for every flow with ``has_next`` — the
        constraint curve at the flow's next server, already simplified.
    kernel:
        Which kernel produced the through bound ("theorem1" / "family" /
        "tie" / "sp_theorem1"), None for singleton blocks.
    """

    delays: tuple[tuple[str, float], ...]
    out_curves: tuple[tuple[str, PiecewiseLinearCurve], ...]
    kernel: str | None


def _evaluate_singleton(bi: BlockInput) -> BlockOutcome:
    curves = {fa.name: fa.curve for fa in bi.flows}
    la = _local_analysis(
        bi.capacities[0], bi.disciplines[0], curves,
        {fa.name: fa.priority for fa in bi.flows},
        {fa.name: fa.rho for fa in bi.flows})
    delays: list[tuple[str, float]] = []
    outs: list[tuple[str, PiecewiseLinearCurve]] = []
    for fa in bi.flows:
        d = la.delay_by_flow[fa.name]
        delays.append((fa.name, d))
        if fa.has_next:
            outs.append((fa.name, capped_output_curve(
                fa.curve, d, bi.capacities[0]).simplified()))
    return BlockOutcome(tuple(delays), tuple(outs), None)


def _evaluate_fifo_pair(bi: BlockInput) -> BlockOutcome:
    c1, c2 = bi.capacities
    through = {fa.name: fa.curve for fa in bi.flows
               if fa.role == "through"}
    cross1 = {fa.name: fa.curve for fa in bi.flows
              if fa.role == "cross1"}
    cross2 = {fa.name: fa.curve for fa in bi.flows
              if fa.role == "cross2"}

    sub = TwoServerSubsystem(
        through, cross1, cross2, c1, c2,
        use_family_kernel=bi.use_family_kernel)
    res = sub.analyze()
    outputs = sub.output_curves(res)

    class_delay = {"through": res.delay_through,
                   "cross1": res.delay_server1,
                   "cross2": res.delay_server2}
    delays = tuple((fa.name, class_delay[fa.role]) for fa in bi.flows)
    outs = tuple((fa.name, outputs[fa.name].simplified())
                 for fa in bi.flows if fa.has_next)
    return BlockOutcome(delays, outs, res.winning_kernel)


def _evaluate_sp_pair(bi: BlockInput) -> BlockOutcome:
    from repro.core.sp_subsystem import sp_pair_bound

    c1, c2 = bi.capacities
    through = {fa.name: fa.curve for fa in bi.flows
               if fa.role == "through"}
    cross1 = {fa.name: fa.curve for fa in bi.flows
              if fa.role == "cross1"}
    cross2 = {fa.name: fa.curve for fa in bi.flows
              if fa.role == "cross2"}
    priorities = {fa.name: fa.priority for fa in bi.flows}

    res = sp_pair_bound(through, cross1, cross2, priorities, c1, c2)

    delays: list[tuple[str, float]] = []
    outs: list[tuple[str, PiecewiseLinearCurve]] = []
    for fa in bi.flows:
        if fa.role == "through":
            d = res.delay_through
            out_cap = c2
        elif fa.role == "cross1":
            d = res.delay1_by_flow[fa.name]
            out_cap = c1
        else:
            d = res.delay2_by_flow[fa.name]
            out_cap = c2
        delays.append((fa.name, d))
        if fa.has_next:
            outs.append((fa.name, capped_output_curve(
                fa.curve, d, out_cap).simplified()))
    return BlockOutcome(tuple(delays), tuple(outs), "sp_theorem1")


def evaluate_block(bi: BlockInput) -> BlockOutcome:
    """Joint analysis of one block as a pure function of its input.

    Deterministic: identical :class:`BlockInput` values (bit-identical
    curves included) produce bit-identical outcomes — the contract the
    incremental engine's content-addressed cache relies on.  The block
    activates ``bi.kernel`` itself, so a replayed block does not depend
    on the caller's ambient kernel.
    """
    with use_kernel(bi.kernel):
        if bi.kind == "singleton":
            return _evaluate_singleton(bi)
        if bi.kind == "fifo_pair":
            return _evaluate_fifo_pair(bi)
        if bi.kind == "sp_pair":
            return _evaluate_sp_pair(bi)
    raise AnalysisError(f"unknown block kind {bi.kind!r}")


class IntegratedAnalysis(Analyzer):
    """End-to-end bounds via two-server subsystem integration.

    Parameters
    ----------
    strategy:
        Partitioning strategy; default pairs consecutive servers along
        the longest connection's path (the paper's evaluation setup).
    use_family_kernel:
        Enable the theta-family kernel in addition to the Theorem-1
        kernel (the through bound is the minimum of both).  Disable for
        the ABL2/ABL1 ablations.
    """

    name = "integrated"

    def __init__(self, strategy: PartitionStrategy | None = None,
                 use_family_kernel: bool = True) -> None:
        self.strategy = strategy if strategy is not None else PairAlongPath()
        self.use_family_kernel = bool(use_family_kernel)

    # ------------------------------------------------------------------

    def _pair_is_fifo(self, network: Network, block) -> bool:
        return all(
            network.server(s).discipline == Discipline.FIFO for s in block)

    def _sp_pair_applicable(self, network: Network, block) -> bool:
        """True when both servers are static-priority and the through
        connections share one priority class (the condition for the
        SP pair bound, see :mod:`repro.core.sp_subsystem`)."""
        j, k = block
        if any(network.server(s).discipline != Discipline.STATIC_PRIORITY
               for s in block):
            return False
        through_prios = {f.priority for f in network.flows_at(j)
                         if f.next_hop(j) == k}
        return len(through_prios) == 1

    def effective_blocks(self, network: Network,
                         partition) -> list[tuple[str, tuple]]:
        """Resolve the partition into ``(kind, block)`` work units.

        Paired blocks that are neither all-FIFO nor SP-applicable fall
        back to per-server singleton analysis (soundness for arbitrary
        mixed networks), exactly like the pre-refactor control flow.
        """
        units: list[tuple[str, tuple]] = []
        for block in partition:
            if len(block) == 2 and self._pair_is_fifo(network, block):
                units.append(("fifo_pair", tuple(block)))
            elif len(block) == 2 and \
                    self._sp_pair_applicable(network, block):
                units.append(("sp_pair", tuple(block)))
            else:
                units.extend(("singleton", (sid,)) for sid in block)
        return units

    def build_block_input(self, network: Network, kind: str, block: tuple,
                          curve_at) -> BlockInput:
        """Assemble the :class:`BlockInput` for one work unit."""
        flows: list[FlowAtBlock] = []
        if kind == "singleton":
            sid = block[0]
            for f in network.flows_at(sid):
                flows.append(FlowAtBlock(
                    f.name, "local", curve_at[(f.name, sid)],
                    f.next_hop(sid) is not None, f.priority,
                    f.bucket.rho))
        else:
            j, k = block
            through: set[str] = set()
            for f in network.flows_at(j):
                if f.next_hop(j) == k:
                    through.add(f.name)
                    flows.append(FlowAtBlock(
                        f.name, "through", curve_at[(f.name, j)],
                        f.next_hop(k) is not None, f.priority,
                        f.bucket.rho))
                else:
                    flows.append(FlowAtBlock(
                        f.name, "cross1", curve_at[(f.name, j)],
                        f.next_hop(j) is not None, f.priority,
                        f.bucket.rho))
            for f in network.flows_at(k):
                if f.name not in through:
                    flows.append(FlowAtBlock(
                        f.name, "cross2", curve_at[(f.name, k)],
                        f.next_hop(k) is not None, f.priority,
                        f.bucket.rho))
        return BlockInput(
            kind=kind,
            capacities=tuple(network.server(s).capacity for s in block),
            disciplines=tuple(network.server(s).discipline for s in block),
            use_family_kernel=self.use_family_kernel,
            flows=tuple(flows),
            kernel=current_kernel())

    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Analyze *network* under *ctx*: the cooperative deadline is
        checked at every block boundary, each block gets a span, and a
        block interceptor installed on the context (the incremental
        engine's memoizing wrapper, extensionally equal to
        :func:`evaluate_block`) transparently replaces the per-block
        computation."""
        network.check_stability()
        with ctx.analysis_scope(self.name):
            return self._analyze(network, ctx)

    def _analyze(self, network: Network, ctx: AnalysisContext) -> DelayReport:
        partition = self.strategy.partition(network)

        curve_at: dict[tuple[str, ServerId], PiecewiseLinearCurve] = {}
        for f in network.iter_flows():
            curve_at[(f.name, f.path[0])] = f.bucket.constraint_curve()

        # accumulated (element, delay) contributions per flow
        contribs: dict[str, list[tuple[object, float]]] = {
            f.name: [] for f in network.iter_flows()}
        kernel_wins: dict[tuple, str] = {}

        for kind, block in self.effective_blocks(network, partition):
            if kind == "singleton" and not network.flows_at(block[0]):
                continue
            bi = self.build_block_input(network, kind, block, curve_at)
            outcome = ctx.run_block_step(block, bi, evaluate_block)
            self._apply_outcome(network, block, bi, outcome, curve_at,
                                contribs, kernel_wins)

        delays = {}
        for f in network.iter_flows():
            parts = tuple(contribs[f.name])
            delays[f.name] = FlowDelay(
                flow=f.name,
                total=sum(d for _, d in parts),
                contributions=parts,
            )
        meta = {
            "partition": tuple(partition.blocks),
            "n_pairs": partition.n_pairs,
            "kernel_wins": kernel_wins,
            "use_family_kernel": self.use_family_kernel,
        }
        return DelayReport(algorithm=self.name, delays=delays, meta=meta)

    # ------------------------------------------------------------------

    @staticmethod
    def _apply_outcome(network: Network, block: tuple, bi: BlockInput,
                       outcome: BlockOutcome, curve_at, contribs,
                       kernel_wins) -> None:
        """Fold one block's outcome into the sweep state."""
        role_of = {fa.name: fa.role for fa in bi.flows}
        for name, d in outcome.delays:
            role = role_of[name]
            if role == "through":
                element: tuple = tuple(block)
            else:
                element = (block[_EXIT_INDEX[role]],)
            contribs[name].append((element, d))
        for name, curve in outcome.out_curves:
            exit_sid = block[_EXIT_INDEX[role_of[name]]]
            nxt = network.flow(name).next_hop(exit_sid)
            curve_at[(name, nxt)] = curve
        if outcome.kernel is not None and len(block) == 2:
            kernel_wins[tuple(block)] = outcome.kernel
