"""Algorithm Integrated — the paper's contribution (Figure 2).

End-to-end delay analysis of feed-forward FIFO networks:

1. partition the network into subnetworks of at most two servers
   (:mod:`repro.core.partition`);
2. order the subnetworks topologically;
3. for each subnetwork, jointly bound the delay of connections that
   traverse both servers (:mod:`repro.core.subsystem`) and characterize
   the traffic leaving the subnetwork;
4. sum the per-subnetwork delays along each connection's path.

Static-priority pairs whose through connections share one priority
class use the SP pair kernel (:mod:`repro.core.sp_subsystem` — the
extension the paper's §5 announces); every other non-FIFO block falls
back to singleton analysis, keeping the algorithm sound for arbitrary
mixed networks.
"""

from __future__ import annotations

from typing import Hashable

from repro.analysis.base import Analyzer, DelayReport, FlowDelay
from repro.analysis.propagation import analyze_server
from repro.core.partition import PairAlongPath, PartitionStrategy
from repro.core.subsystem import TwoServerSubsystem
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.network.topology import Discipline, Network
from repro.servers.fifo import capped_output_curve

__all__ = ["IntegratedAnalysis"]

ServerId = Hashable


class IntegratedAnalysis(Analyzer):
    """End-to-end bounds via two-server subsystem integration.

    Parameters
    ----------
    strategy:
        Partitioning strategy; default pairs consecutive servers along
        the longest connection's path (the paper's evaluation setup).
    use_family_kernel:
        Enable the theta-family kernel in addition to the Theorem-1
        kernel (the through bound is the minimum of both).  Disable for
        the ABL2/ABL1 ablations.
    """

    name = "integrated"

    def __init__(self, strategy: PartitionStrategy | None = None,
                 use_family_kernel: bool = True) -> None:
        self.strategy = strategy if strategy is not None else PairAlongPath()
        self.use_family_kernel = bool(use_family_kernel)

    # ------------------------------------------------------------------

    def _pair_is_fifo(self, network: Network, block) -> bool:
        return all(
            network.server(s).discipline == Discipline.FIFO for s in block)

    def _sp_pair_applicable(self, network: Network, block) -> bool:
        """True when both servers are static-priority and the through
        connections share one priority class (the condition for the
        SP pair bound, see :mod:`repro.core.sp_subsystem`)."""
        j, k = block
        if any(network.server(s).discipline != Discipline.STATIC_PRIORITY
               for s in block):
            return False
        through_prios = {f.priority for f in network.flows_at(j)
                         if f.next_hop(j) == k}
        return len(through_prios) == 1

    def analyze(self, network: Network) -> DelayReport:
        network.check_stability()
        partition = self.strategy.partition(network)

        curve_at: dict[tuple[str, ServerId], PiecewiseLinearCurve] = {}
        for f in network.iter_flows():
            curve_at[(f.name, f.path[0])] = f.bucket.constraint_curve()

        # accumulated (element, delay) contributions per flow
        contribs: dict[str, list[tuple[object, float]]] = {
            f.name: [] for f in network.iter_flows()}
        kernel_wins: dict[tuple, str] = {}

        for block in partition:
            if len(block) == 2 and self._pair_is_fifo(network, block):
                self._process_pair(network, block, curve_at, contribs,
                                   kernel_wins)
            elif len(block) == 2 and \
                    self._sp_pair_applicable(network, block):
                self._process_sp_pair(network, block, curve_at,
                                      contribs, kernel_wins)
            else:
                for sid in block:
                    self._process_singleton(network, sid, curve_at,
                                            contribs)

        delays = {}
        for f in network.iter_flows():
            parts = tuple(contribs[f.name])
            delays[f.name] = FlowDelay(
                flow=f.name,
                total=sum(d for _, d in parts),
                contributions=parts,
            )
        meta = {
            "partition": tuple(partition.blocks),
            "n_pairs": partition.n_pairs,
            "kernel_wins": kernel_wins,
            "use_family_kernel": self.use_family_kernel,
        }
        return DelayReport(algorithm=self.name, delays=delays, meta=meta)

    # ------------------------------------------------------------------

    def _process_singleton(self, network: Network, sid: ServerId,
                           curve_at, contribs) -> None:
        flows_here = network.flows_at(sid)
        if not flows_here:
            return
        curves = {f.name: curve_at[(f.name, sid)] for f in flows_here}
        la = analyze_server(network, sid, curves)
        capacity = network.server(sid).capacity
        for f in flows_here:
            d = la.delay_by_flow[f.name]
            contribs[f.name].append(((sid,), d))
            nxt = f.next_hop(sid)
            if nxt is not None:
                curve_at[(f.name, nxt)] = capped_output_curve(
                    curves[f.name], d, capacity).simplified()

    def _process_pair(self, network: Network, block, curve_at, contribs,
                      kernel_wins) -> None:
        j, k = block
        cj = network.server(j).capacity
        ck = network.server(k).capacity

        through: dict[str, PiecewiseLinearCurve] = {}
        cross1: dict[str, PiecewiseLinearCurve] = {}
        cross2: dict[str, PiecewiseLinearCurve] = {}
        for f in network.flows_at(j):
            if f.next_hop(j) == k:
                through[f.name] = curve_at[(f.name, j)]
            else:
                cross1[f.name] = curve_at[(f.name, j)]
        for f in network.flows_at(k):
            if f.name not in through:
                cross2[f.name] = curve_at[(f.name, k)]

        sub = TwoServerSubsystem(
            through, cross1, cross2, cj, ck,
            use_family_kernel=self.use_family_kernel)
        res = sub.analyze()
        kernel_wins[(j, k)] = res.winning_kernel
        outputs = sub.output_curves(res)

        for f in network.flows_at(j):
            if f.name in through:
                contribs[f.name].append(((j, k), res.delay_through))
                nxt = f.next_hop(k)
            else:
                contribs[f.name].append(((j,), res.delay_server1))
                nxt = f.next_hop(j)
            if nxt is not None:
                curve_at[(f.name, nxt)] = outputs[f.name].simplified()
        for f in network.flows_at(k):
            if f.name in through:
                continue
            contribs[f.name].append(((k,), res.delay_server2))
            nxt = f.next_hop(k)
            if nxt is not None:
                curve_at[(f.name, nxt)] = outputs[f.name].simplified()

    def _process_sp_pair(self, network: Network, block, curve_at,
                         contribs, kernel_wins) -> None:
        from repro.core.sp_subsystem import sp_pair_bound
        from repro.servers.fifo import capped_output_curve

        j, k = block
        cj = network.server(j).capacity
        ck = network.server(k).capacity
        through: dict[str, PiecewiseLinearCurve] = {}
        cross1: dict[str, PiecewiseLinearCurve] = {}
        cross2: dict[str, PiecewiseLinearCurve] = {}
        priorities: dict[str, int] = {}
        for f in network.flows_at(j):
            priorities[f.name] = f.priority
            if f.next_hop(j) == k:
                through[f.name] = curve_at[(f.name, j)]
            else:
                cross1[f.name] = curve_at[(f.name, j)]
        for f in network.flows_at(k):
            priorities[f.name] = f.priority
            if f.name not in through:
                cross2[f.name] = curve_at[(f.name, k)]

        res = sp_pair_bound(through, cross1, cross2, priorities, cj, ck)
        kernel_wins[(j, k)] = "sp_theorem1"

        for f in network.flows_at(j):
            if f.name in through:
                contribs[f.name].append(((j, k), res.delay_through))
                nxt = f.next_hop(k)
                if nxt is not None:
                    curve_at[(f.name, nxt)] = capped_output_curve(
                        through[f.name], res.delay_through,
                        ck).simplified()
            else:
                d = res.delay1_by_flow[f.name]
                contribs[f.name].append(((j,), d))
                nxt = f.next_hop(j)
                if nxt is not None:
                    curve_at[(f.name, nxt)] = capped_output_curve(
                        cross1[f.name], d, cj).simplified()
        for f in network.flows_at(k):
            if f.name in through:
                continue
            d = res.delay2_by_flow[f.name]
            contribs[f.name].append(((k,), d))
            nxt = f.next_hop(k)
            if nxt is not None:
                curve_at[(f.name, nxt)] = capped_output_curve(
                    cross2[f.name], d, ck).simplified()
