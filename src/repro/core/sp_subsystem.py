"""Integrated two-server analysis for static-priority pairs (paper §5).

The paper's conclusion announces the extension of the integrated
approach to static-priority servers.  The line-rate-cap argument behind
the Theorem-1 kernel carries over per priority class, under one
condition that the driver checks: the *through* connections of the pair
must all belong to a single priority class (cross connections may use
any priorities).

Soundness sketch (mirroring ``core/theorem1.py``):

* At server 1, class ``p`` traffic is served FIFO *within the class*,
  and every class-``p`` bit is delayed at most ``d1_p`` (the SP local
  bound).  Hence through bits of class ``p`` departing server 1 over an
  interval of length ``s`` entered the network within a window of
  ``s + d1_p`` — the class-window constraint ``F12(s + d1_p)``.
* Server 1 is work-conserving at rate ``C1`` regardless of discipline,
  so the same departures are also limited by ``C1 * s``.
* Server 2's SP analysis then runs with the through class's arrival
  curve replaced by ``min(C1 * I, F12(I + d1_p))``.

The pair bound for the through class is ``d1_p + d2_p(capped)``; every
other (cross) class receives its ordinary SP local bounds at the server
it visits, with the *capped* through curve at server 2 (sound for all
classes, since the cap is a valid arrival constraint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import AnalysisError
from repro.servers.fifo import capped_output_curve
from repro.servers.static_priority import sp_delay_bounds
from repro.utils.validation import check_positive

__all__ = ["SpSubsystemResult", "sp_pair_bound"]


@dataclass(frozen=True)
class SpSubsystemResult:
    """Integrated bounds for one static-priority server pair.

    Attributes
    ----------
    delay_through:
        Bound for the through class (S12 connections).
    delay1_by_flow / delay2_by_flow:
        Per-connection local bounds at servers 1 / 2 (cross classes).
    through_at_2:
        The capped through-class constraint at server 2's input.
    """

    delay_through: float
    delay1_by_flow: Mapping[str, float]
    delay2_by_flow: Mapping[str, float]
    through_at_2: PiecewiseLinearCurve


def sp_pair_bound(through_curves: Mapping[str, PiecewiseLinearCurve],
                  cross1_curves: Mapping[str, PiecewiseLinearCurve],
                  cross2_curves: Mapping[str, PiecewiseLinearCurve],
                  priority_by_flow: Mapping[str, int],
                  c1: float, c2: float) -> SpSubsystemResult:
    """Integrated analysis of a static-priority server pair.

    Parameters
    ----------
    through_curves:
        Constraint per through connection at server 1's input; all must
        share one priority level (AnalysisError otherwise).
    cross1_curves / cross2_curves:
        Constraints of server-1-only / server-2-only connections at
        their entry points (any priorities).
    priority_by_flow:
        Priority level per connection name (lower = more urgent).
    c1, c2:
        Server rates.
    """
    check_positive("c1", c1)
    check_positive("c2", c2)
    if not through_curves:
        raise AnalysisError("sp_pair_bound needs at least one through "
                            "connection; use singleton analysis otherwise")
    through_levels = {priority_by_flow[n] for n in through_curves}
    if len(through_levels) != 1:
        raise AnalysisError(
            "the integrated SP pair bound requires all through "
            f"connections in one priority class, got {through_levels}")

    # server 1: ordinary SP analysis over through + cross1
    curves1 = dict(through_curves) | dict(cross1_curves)
    prios1 = {n: priority_by_flow[n] for n in curves1}
    d1 = sp_delay_bounds(curves1, prios1, c1)
    d1_through = max(d1[n] for n in through_curves)

    # through aggregate, capped at server 1's line rate
    f12 = PiecewiseLinearCurve.zero()
    for c in through_curves.values():
        f12 = f12 + c
    through_at_2 = capped_output_curve(f12.simplified(), d1_through, c1)

    # server 2: SP analysis with the capped through class + cross2
    through_name = "__through_class__"
    curves2: dict[str, PiecewiseLinearCurve] = {
        through_name: through_at_2}
    prios2 = {through_name: next(iter(through_levels))}
    for n, c in cross2_curves.items():
        curves2[n] = c
        prios2[n] = priority_by_flow[n]
    d2 = sp_delay_bounds(curves2, prios2, c2)

    return SpSubsystemResult(
        delay_through=d1_through + d2[through_name],
        delay1_by_flow={n: d1[n] for n in cross1_curves},
        delay2_by_flow={n: d2[n] for n in cross2_curves},
        through_at_2=through_at_2,
    )
