"""FIFO leftover-service-curve family for a two-server subsystem.

The second integrated kernel: the rigorous min-plus counterpart of the
paper's server integration, based on the FIFO residual-service family
(Cruz [10]; Le Boudec & Thiran, Prop. 6.2.1).  For a FIFO server of rate
``C`` whose *cross* traffic is bounded by the affine curve
``sigma_x + rho_x t``, the through traffic is guaranteed, for every
parameter ``theta >= 0``, the service curve

``beta_theta(t) = [C t - sigma_x - rho_x (t - theta)]^+ * 1{t > theta}``

Composing one family member per server and minimizing the horizontal
deviation over ``(theta1, theta2)`` yields an end-to-end bound that
"pays the through burst only once" across the pair — the same
integration principle as Theorem 1, reached through the service-curve
formalism.  Taking the *minimum* of this bound and the Theorem-1 bound
is sound (both are valid upper bounds).

The composition has the closed form (derived in the module tests by
brute force):

``(beta1_t1 ⊗ beta2_t2)(t) = 0`` for ``t <= t1 + t2`` and otherwise
``min( beta1(t - t2), beta2(t - t1) )``

so the delay bound for through curve ``F12`` is computed exactly — no
grids — from the levels at which each branch crosses ``F12``.

General concave cross curves are soundly reduced to their affine upper
envelope first (:func:`affine_envelope`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.utils.validation import check_positive

__all__ = ["FamilyResult", "affine_envelope", "family_pair_bound",
           "family_delay_for_thetas"]


@dataclass(frozen=True)
class FamilyResult:
    """Outcome of the theta-family optimization for one subsystem."""

    delay_through: float
    theta1: float
    theta2: float


def affine_envelope(curve: PiecewiseLinearCurve) -> tuple[float, float]:
    """Smallest affine upper bound ``(sigma, rho)`` with ``rho`` equal to
    the curve's long-term rate.

    For a concave curve this is tight at infinity; for a general curve
    the burst term is the vertical deviation from the ``rho t`` line.
    """
    rho = curve.long_term_rate()
    line = PiecewiseLinearCurve.line(rho)
    sigma = curve.vertical_deviation(line)
    if not math.isfinite(sigma):
        raise ValueError("curve has no affine envelope at its long-term "
                         "rate (increasing slopes?)")
    return max(0.0, sigma), rho


def _effective_start(theta: float, rate: float, a: float) -> float:
    """First instant a gated leftover curve can be positive.

    ``beta(t) = [R t - a]^+ . 1{t > theta}`` is identically 0 up to
    ``S = max(theta, a / R)`` — for ``theta`` below the latency ``a/R``
    the positive part, not the gate, is what holds the curve at zero.
    """
    if rate <= 0:
        return math.inf
    return max(theta, a / rate if a > 0 else 0.0)


def _branch_inverse(v: float, start: float, gate_shift: float,
                    rate: float, a: float) -> float:
    """First time the (shifted) gated branch reaches level ``v``.

    The branch is ``beta(t - gate_shift)`` with ``beta`` zero up to
    ``start`` and ``R t - a`` afterwards; its jump value at ``start`` is
    ``J = [R*start - a]^+`` (0 when the curve is continuous there).
    """
    if v <= 0:
        return 0.0
    if rate <= 0:
        return math.inf
    jump = max(0.0, rate * start - a)
    if v <= jump:
        return gate_shift + start
    return gate_shift + (a + v) / rate


def family_delay_for_thetas(f12: PiecewiseLinearCurve,
                            sigma1: float, rho1: float,
                            sigma2: float, rho2: float,
                            c1: float, c2: float,
                            theta1: float, theta2: float) -> float:
    """Exact delay bound for one ``(theta1, theta2)`` family member.

    ``sigma_i, rho_i`` describe the affine cross-traffic envelope at
    server ``i``; ``f12`` is the through-aggregate constraint curve.
    """
    r1 = c1 - rho1
    r2 = c2 - rho2
    if r1 <= 0 or r2 <= 0 or f12.long_term_rate() >= min(r1, r2):
        return math.inf
    a1 = sigma1 - rho1 * theta1
    a2 = sigma2 - rho2 * theta2
    # The composition (beta1 ⊗ beta2)(t) = min(beta1(t - S2),
    # beta2(t - S1)) for t > S1 + S2 (0 before), where S_i is each
    # curve's effective start (gate or latency, whichever is later).
    s1 = _effective_start(theta1, r1, a1)
    s2 = _effective_start(theta2, r2, a2)
    gate = s1 + s2

    def tau(v: float) -> float:
        if v <= 0:
            return 0.0
        t_a = _branch_inverse(v, s1, s2, r1, a1)
        t_b = _branch_inverse(v, s2, s1, r2, a2)
        return max(gate, t_a, t_b)

    # Candidate maximizers of tau(F12(t)) - t: the through curve's
    # breakpoints plus the pre-images of the branch jump levels (where
    # tau kinks).
    jump1 = max(0.0, r1 * s1 - a1)
    jump2 = max(0.0, r2 * s2 - a2)
    levels = [lv for lv in (jump1, jump2) if lv > 0]
    cands = list(f12.x) + [0.0]
    if levels:
        inv = np.atleast_1d(f12.pseudo_inverse(np.asarray(levels)))
        cands.extend(float(t) for t in inv if math.isfinite(t))
    best = 0.0
    for t in cands:
        if t < 0:
            continue
        best = max(best, tau(float(f12(t))) - t)
    return best


def family_pair_bound(f12: PiecewiseLinearCurve,
                      f1: PiecewiseLinearCurve,
                      f2: PiecewiseLinearCurve,
                      c1: float, c2: float,
                      coarse: int = 25,
                      refine: bool = True) -> FamilyResult:
    """Best theta-family bound for a two-server subsystem.

    Parameters
    ----------
    f12, f1, f2:
        Through / server-1-cross / server-2-cross constraint sums
        (same conventions as :func:`repro.core.theorem1.theorem1_bound`).
    c1, c2:
        Server capacities.
    coarse:
        Grid points per theta axis for the initial sweep.
    refine:
        Run a Nelder–Mead polish from the best grid point.
    """
    check_positive("c1", c1)
    check_positive("c2", c2)
    sigma1, rho1 = affine_envelope(f1)
    sigma2, rho2 = affine_envelope(f2)
    if c1 - rho1 <= 0 or c2 - rho2 <= 0:
        return FamilyResult(math.inf, 0.0, 0.0)

    sig12, _ = affine_envelope(f12)
    # The interesting theta range: up to the time scale where jumps
    # exceed every relevant through level ~ (sig12 + sigma_x)/C.  The
    # range is kept proportional to the problem's own burst scale so the
    # optimization is invariant under joint rescaling of all bursts.
    scale1 = sigma1 + sig12
    scale2 = sigma2 + sig12
    tmax1 = 2.0 * scale1 / c1 if scale1 > 0 else 1.0 / c1
    tmax2 = 2.0 * scale2 / c2 if scale2 > 0 else 1.0 / c2

    def objective(t1: float, t2: float) -> float:
        if t1 < 0 or t2 < 0:
            return math.inf
        return family_delay_for_thetas(
            f12, sigma1, rho1, sigma2, rho2, c1, c2, t1, t2)

    best = (math.inf, 0.0, 0.0)
    for t1 in np.linspace(0.0, tmax1, coarse):
        for t2 in np.linspace(0.0, tmax2, coarse):
            d = objective(float(t1), float(t2))
            if d < best[0]:
                best = (d, float(t1), float(t2))

    if refine and math.isfinite(best[0]):
        res = optimize.minimize(
            lambda th: objective(max(th[0], 0.0), max(th[1], 0.0)),
            x0=np.array([best[1], best[2]]),
            method="Nelder-Mead",
            options={"xatol": 1e-9, "fatol": 1e-12, "maxiter": 400},
        )
        if res.fun < best[0]:
            best = (float(res.fun), float(max(res.x[0], 0.0)),
                    float(max(res.x[1], 0.0)))

    return FamilyResult(delay_through=best[0], theta1=best[1],
                        theta2=best[2])
