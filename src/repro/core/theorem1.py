"""The integrated two-server delay bound (reconstruction of Theorem 1).

Setting (paper Figure 1): two FIFO servers in tandem with rates ``C1``,
``C2``; three connection sets with constraint-function sums

* ``F12`` — connections traversing both servers (bounded at entry),
* ``F1``  — connections traversing server 1 only,
* ``F2``  — connections joining at server 2 only.

**Joint busy-period argument.**  Fix a tagged through bit: it arrives at
server 1 at time ``a``, leaves server 1 (arrives at server 2) at ``x``
and leaves server 2 at ``T``.  Let ``u <= x`` start server 2's busy
period containing ``T`` and write ``s = x - u``.  FIFO at server 2 gives

``C2 (T - u) <= O12(u, x] + F2(s)``

where ``O12`` is the through traffic put out by server 1 in ``(u, x]``.
That output is *jointly* limited by server 1's line rate — ``C1 * s`` —
and by the source constraint over the original arrival window:
``F12(s + d1)`` with ``d1`` the server-1 delay bound (every bit leaving
server 1 in ``(u, x]`` entered the network within ``s + d1`` of the
tagged bit, because FIFO order is preserved and each bit's server-1
delay is at most ``d1``).  Combining with ``u - a <= d1 - s``:

``T - a  <=  d1  +  max_{s >= 0} [ (min(C1 s, F12(s + d1)) + F2(s)) / C2 - s ]``

The ``min(C1 s, . )`` term is exactly the self-regulation effect the
paper's Theorem 1 captures with its ``min{T - s, F12(T - H1(s))}`` term:
a burst that was flattened by server 1's line rate cannot re-appear at
server 2.  The bound is *never worse* than Algorithm Decomposed (drop
the ``min`` to recover it) and is proven sound by the packet-level
simulator in the test suite.

All quantities here are exact piecewise-linear computations — no grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.servers.fifo import (
    capped_output_curve,
    fifo_busy_period,
    fifo_delay_bound,
)
from repro.utils.validation import check_positive

__all__ = ["Theorem1Result", "theorem1_bound"]


@dataclass(frozen=True)
class Theorem1Result:
    """Integrated bound for one two-server subsystem.

    Attributes
    ----------
    delay_through:
        End-to-end bound ``d_S12`` for connections traversing both
        servers.
    delay_server1:
        Local bound ``d1`` at server 1 (applies to S1 connections).
    delay_server2:
        Local bound at server 2 computed with the line-rate-capped
        through arrivals (applies to S2 connections).
    busy_period1, busy_period2:
        Maximum busy-period lengths ``B1``, ``B2`` (paper notation).
    through_at_2:
        The capped constraint curve of the through aggregate at
        server 2's input — ``min(C1 I, F12(I + d1))``.
    """

    delay_through: float
    delay_server1: float
    delay_server2: float
    busy_period1: float
    busy_period2: float
    through_at_2: PiecewiseLinearCurve


def theorem1_bound(f12: PiecewiseLinearCurve,
                   f1: PiecewiseLinearCurve,
                   f2: PiecewiseLinearCurve,
                   c1: float, c2: float) -> Theorem1Result:
    """Integrated delay analysis of a two-FIFO-server subsystem.

    Parameters
    ----------
    f12, f1, f2:
        Constraint-function sums of the through set (at server 1's
        input), the server-1-only set, and the server-2-only set (at
        server 2's input).  Pass ``PiecewiseLinearCurve.zero()`` for an
        empty set.
    c1, c2:
        Server capacities.

    Returns
    -------
    Theorem1Result
        ``delay_through = d1 + max_s [(min(C1 s, F12(s+d1)) + F2(s))/C2 - s]``
        evaluated exactly on the piecewise-linear curves.
    """
    check_positive("c1", c1)
    check_positive("c2", c2)

    g1 = (f12 + f1).simplified()
    d1 = fifo_delay_bound(g1, c1)
    b1 = fifo_busy_period(g1, c1)

    if f12.long_term_rate() == 0 and f12.value_at_zero() == 0 and \
            f12(1.0) == 0:
        # No through traffic: the subsystem degenerates to two isolated
        # servers; define d_through over an empty set as d1 + d2.
        through_at_2 = PiecewiseLinearCurve.zero()
    else:
        through_at_2 = capped_output_curve(f12, d1, c1)

    g2 = (through_at_2 + f2).simplified()
    d2 = fifo_delay_bound(g2, c2)
    b2 = fifo_busy_period(g2, c2)

    total = d1 + d2
    if not math.isfinite(total):
        total = math.inf
    return Theorem1Result(
        delay_through=total,
        delay_server1=d1,
        delay_server2=d2,
        busy_period1=b1,
        busy_period2=b2,
        through_at_2=through_at_2,
    )
