"""Network partitioning into subnetworks of at most two servers.

Algorithm Integrated's Step 1–2 (paper Figure 2): split the server set
into blocks of one or two servers, such that (i) every paired block
``(j, k)`` has server-graph edge ``j -> k`` (some connection actually
flows from j to k — otherwise pairing buys nothing), and (ii) the
quotient graph obtained by contracting each block stays acyclic, so a
topological processing order over blocks exists.

Three strategies are provided:

* :class:`PairAlongPath` — pair consecutive servers along a designated
  connection's path (the paper's tandem evaluation pairs along
  Connection 0).  Default.
* :class:`GreedyPairing` — repeatedly pair the server-graph edge with
  the largest through-traffic rate (a reasonable general heuristic).
* :class:`SingletonPartition` — no pairing; the degenerate case used by
  the ABL2 ablation (equivalent to capped decomposition).
"""

from __future__ import annotations

import abc
from typing import Hashable, Sequence

import networkx as nx

from repro.errors import TopologyError
from repro.network.topology import Network

__all__ = [
    "Partition",
    "PartitionStrategy",
    "PairAlongPath",
    "GreedyPairing",
    "SingletonPartition",
]

ServerId = Hashable
Block = tuple  # tuple of 1 or 2 server ids


class Partition:
    """A validated partition of a network's servers into blocks.

    Attributes
    ----------
    blocks:
        Tuple of blocks in a topological order of the quotient graph.
    """

    def __init__(self, network: Network, blocks: Sequence[Block]) -> None:
        seen: set[ServerId] = set()
        g = network.server_graph
        for blk in blocks:
            if len(blk) not in (1, 2):
                raise TopologyError(
                    f"blocks must have 1 or 2 servers, got {blk!r}")
            for sid in blk:
                if sid in seen:
                    raise TopologyError(
                        f"server {sid!r} appears in two blocks")
                if sid not in g:
                    raise TopologyError(f"unknown server {sid!r} in block")
                seen.add(sid)
            if len(blk) == 2 and not g.has_edge(blk[0], blk[1]):
                raise TopologyError(
                    f"paired block {blk!r} has no server-graph edge "
                    f"{blk[0]!r} -> {blk[1]!r}")
        missing = set(g.nodes) - seen
        if missing:
            raise TopologyError(
                f"partition does not cover servers {sorted(map(str, missing))}")

        quotient = self._quotient_graph(g, blocks)
        if not nx.is_directed_acyclic_graph(quotient):
            raise TopologyError(
                "contracting the blocks creates a cycle; choose a "
                "different pairing")
        order = list(nx.lexicographical_topological_sort(
            quotient, key=lambda b: str(b)))
        self.blocks: tuple[Block, ...] = tuple(order)
        self._block_of = {sid: blk for blk in self.blocks for sid in blk}

    @staticmethod
    def _quotient_graph(g: nx.DiGraph,
                        blocks: Sequence[Block]) -> nx.DiGraph:
        block_of = {sid: tuple(blk) for blk in blocks for sid in blk}
        q = nx.DiGraph()
        q.add_nodes_from(tuple(blk) for blk in blocks)
        for a, b in g.edges:
            ba, bb = block_of[a], block_of[b]
            if ba != bb:
                q.add_edge(ba, bb)
        return q

    def block_of(self, server_id: ServerId) -> Block:
        """The block containing *server_id*."""
        try:
            return self._block_of[server_id]
        except KeyError:
            raise TopologyError(f"unknown server {server_id!r}") from None

    @property
    def n_pairs(self) -> int:
        """Number of two-server blocks."""
        return sum(1 for b in self.blocks if len(b) == 2)

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class PartitionStrategy(abc.ABC):
    """Produces a :class:`Partition` for a network."""

    @abc.abstractmethod
    def partition(self, network: Network) -> Partition:
        """Build the partition (raises :class:`TopologyError` on failure)."""


class SingletonPartition(PartitionStrategy):
    """Every server is its own block (no integration)."""

    def partition(self, network: Network) -> Partition:
        blocks = [(sid,) for sid in network.topological_servers()]
        return Partition(network, blocks)


class PairAlongPath(PartitionStrategy):
    """Pair consecutive servers along one connection's path.

    Parameters
    ----------
    flow_name:
        The connection to pair along; default None selects the flow with
        the longest path (the paper's Connection 0 in the tandem).
    """

    def __init__(self, flow_name: str | None = None) -> None:
        self.flow_name = flow_name

    def partition(self, network: Network) -> Partition:
        if self.flow_name is not None:
            flow = network.flow(self.flow_name)
        else:
            flow = max(network.flows.values(), key=lambda f: f.n_hops)
        path = flow.path
        blocks: list[Block] = []
        i = 0
        while i < len(path):
            if i + 1 < len(path):
                blocks.append((path[i], path[i + 1]))
                i += 2
            else:
                blocks.append((path[i],))
                i += 1
        on_path = set(path)
        for sid in network.topological_servers():
            if sid not in on_path:
                blocks.append((sid,))
        return Partition(network, blocks)


class GreedyPairing(PartitionStrategy):
    """Pair the edges carrying the most through traffic, greedily.

    Edge weight = total sustained rate of flows whose path contains the
    edge (consecutively).  Edges are tried in decreasing weight; a pair
    is kept only if it leaves the quotient graph acyclic.
    """

    def partition(self, network: Network) -> Partition:
        g = network.server_graph
        weight: dict[tuple[ServerId, ServerId], float] = {}
        for f in network.iter_flows():
            for a, b in zip(f.path, f.path[1:]):
                weight[(a, b)] = weight.get((a, b), 0.0) + f.bucket.rho
        paired: set[ServerId] = set()
        pairs: list[Block] = []
        for (a, b), _w in sorted(weight.items(),
                                 key=lambda kv: (-kv[1], str(kv[0]))):
            if a in paired or b in paired:
                continue
            candidate = pairs + [(a, b)]
            remaining = [(s,) for s in g.nodes
                         if s not in paired and s not in (a, b)]
            try:
                Partition(network, candidate + remaining)
            except TopologyError:
                continue
            pairs.append((a, b))
            paired.update((a, b))
        blocks = pairs + [(s,) for s in network.topological_servers()
                          if s not in paired]
        return Partition(network, blocks)
