"""The paper's primary contribution (system S10 in DESIGN.md).

* :class:`IntegratedAnalysis` — Algorithm Integrated (paper Figure 2);
* :class:`TwoServerSubsystem` — joint analysis of a server pair;
* :func:`theorem1_bound` — the joint busy-period kernel (Theorem 1);
* :func:`family_pair_bound` — the FIFO leftover service-curve family;
* partition strategies for Step 1 of the algorithm.
"""

from repro.core.integrated import IntegratedAnalysis
from repro.core.partition import (
    GreedyPairing,
    PairAlongPath,
    Partition,
    PartitionStrategy,
    SingletonPartition,
)
from repro.core.sp_subsystem import SpSubsystemResult, sp_pair_bound
from repro.core.subsystem import SubsystemResult, TwoServerSubsystem
from repro.core.theorem1 import Theorem1Result, theorem1_bound
from repro.core.fifo_family import (
    FamilyResult,
    affine_envelope,
    family_delay_for_thetas,
    family_pair_bound,
)

__all__ = [
    "IntegratedAnalysis",
    "TwoServerSubsystem",
    "SubsystemResult",
    "SpSubsystemResult",
    "sp_pair_bound",
    "theorem1_bound",
    "Theorem1Result",
    "family_pair_bound",
    "family_delay_for_thetas",
    "FamilyResult",
    "affine_envelope",
    "Partition",
    "PartitionStrategy",
    "PairAlongPath",
    "GreedyPairing",
    "SingletonPartition",
]
