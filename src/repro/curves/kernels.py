"""Curve-kernel selection: exact / grid / auto.

The functional façade (:mod:`repro.curves.operations`) dispatches every
general min-plus operation on the *active kernel*:

``"exact"``
    The exact piecewise-linear algebra (:mod:`repro.curves.exact`):
    no horizon, no sampling pad, bit-identical across runs.  The
    default.
``"grid"``
    The legacy sampled backend (:mod:`repro.curves.numeric`): uniform
    4096-point grids with rate-aware horizons and resolution-derived
    soundness pads.  Kept as a differential-checking backend and for
    comparison benchmarks.
``"auto"``
    Exact first; on :class:`~repro.errors.CurveError` (e.g. a diverging
    deconvolution the grid backend would silently truncate) falls back
    to the grid backend and counts ``curve.fallbacks``.

Selection mirrors the metrics registry's thread-local activation
pattern (:mod:`repro.context.metrics`): analyses activate a kernel for
a scope via :func:`use_kernel` (an :class:`~repro.context.
AnalysisContext` does this inside ``analysis_scope``), and the ambient
default — consulted when no scope is active — comes from the
``REPRO_CURVE_KERNEL`` environment variable (the CLI's ``--kernel``
flag sets it so sweep worker processes inherit the choice).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = [
    "KERNELS",
    "DEFAULT_KERNEL",
    "resolve_kernel",
    "current_kernel",
    "use_kernel",
]

#: The valid kernel identifiers, in preference order.
KERNELS = ("exact", "grid", "auto")

#: Compiled-in default when neither a scope nor the environment selects.
DEFAULT_KERNEL = "exact"

#: Environment variable consulted for the ambient default.
ENV_VAR = "REPRO_CURVE_KERNEL"

_ACTIVE = threading.local()


def resolve_kernel(name: str) -> str:
    """Validate and normalize a kernel identifier.

    Raises :class:`ValueError` for anything outside :data:`KERNELS` —
    a misspelled kernel must fail loudly, not silently pick a backend.
    """
    normalized = str(name).strip().lower()
    if normalized not in KERNELS:
        raise ValueError(
            f"unknown curve kernel {name!r}; expected one of {KERNELS}")
    return normalized


def current_kernel() -> str:
    """The kernel active on this thread.

    Innermost :func:`use_kernel` scope first, then the
    ``REPRO_CURVE_KERNEL`` environment variable, then
    :data:`DEFAULT_KERNEL`.
    """
    active = getattr(_ACTIVE, "kernel", None)
    if active is not None:
        return active
    env = os.environ.get(ENV_VAR, "")
    if env:
        return resolve_kernel(env)
    return DEFAULT_KERNEL


@contextmanager
def use_kernel(name: str | None):
    """Make *name* the active kernel on this thread for the block.

    Nested scopes stack (innermost wins); ``None`` is a no-op
    passthrough so callers can thread an optional selection without
    branching.
    """
    if name is None:
        yield current_kernel()
        return
    resolved = resolve_kernel(name)
    prev = getattr(_ACTIVE, "kernel", None)
    _ACTIVE.kernel = resolved
    try:
        yield resolved
    finally:
        _ACTIVE.kernel = prev
