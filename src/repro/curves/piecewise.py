"""Exact piecewise-linear curves on ``[0, +inf)``.

This module implements the workhorse data structure of the whole library:
:class:`PiecewiseLinearCurve`, a continuous piecewise-linear function

``f(t) = y_k + s_k * (t - x_k)``  for ``t`` in ``[x_k, x_{k+1}]``

defined by sorted breakpoints ``x`` (with ``x[0] == 0``), values ``y`` at
those breakpoints and a ``final_slope`` used beyond the last breakpoint.
An instantaneous burst at ``t = 0`` (a token bucket's ``sigma``) is
represented by ``y[0] > 0``; the curves are continuous everywhere on
``(0, inf)``.

The network-calculus operations provided here are *exact* (no sampling):

* pointwise ``+``, ``-``, scalar multiply, pointwise ``min`` / ``max``
  (with segment-intersection breakpoints),
* min-plus convolution for the concave/concave and convex/convex cases
  (the only ones the analyses need; a sampled fallback for the general
  case lives in :mod:`repro.curves.numeric`),
* lower pseudo-inverse ``f^{-1}(y) = inf{t : f(t) >= y}``,
* horizontal and vertical deviation (delay / backlog bounds),
* first positive crossing (busy-period computation).

All evaluation paths are vectorized with numpy, per the optimization
guidance for this codebase (vectorize; avoid Python-level loops on hot
paths; operate on views where possible).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.context.metrics import kernel_count
from repro.errors import CurveError
from repro.utils.tolerance import EPS, close

__all__ = ["PiecewiseLinearCurve"]

_INF = math.inf


def _as_sorted_breakpoints(x: Sequence[float], y: Sequence[float]):
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1 or xa.shape != ya.shape:
        raise CurveError("x and y must be 1-D arrays of equal length")
    if xa.size == 0:
        raise CurveError("a curve needs at least one breakpoint")
    if not np.all(np.isfinite(xa)) or not np.all(np.isfinite(ya)):
        raise CurveError("breakpoints must be finite")
    if xa[0] != 0.0:
        raise CurveError(f"first breakpoint must be at x=0, got {xa[0]}")
    if np.any(np.diff(xa) <= 0):
        raise CurveError("breakpoint x values must be strictly increasing")
    return xa, ya


class PiecewiseLinearCurve:
    """A continuous piecewise-linear function on ``[0, inf)``.

    Parameters
    ----------
    x, y:
        Breakpoint coordinates. ``x`` must be strictly increasing with
        ``x[0] == 0``.
    final_slope:
        Slope of the curve for ``t >= x[-1]``.

    Notes
    -----
    Instances are immutable; all operations return new curves.
    """

    __slots__ = ("x", "y", "final_slope")

    def __init__(self, x: Sequence[float], y: Sequence[float],
                 final_slope: float) -> None:
        xa, ya = _as_sorted_breakpoints(x, y)
        if not math.isfinite(final_slope):
            raise CurveError(f"final_slope must be finite, got {final_slope}")
        self.x = xa
        self.y = ya
        self.final_slope = float(final_slope)
        self.x.setflags(write=False)
        self.y.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls) -> "PiecewiseLinearCurve":
        """The identically-zero curve."""
        return cls([0.0], [0.0], 0.0)

    @classmethod
    def constant(cls, value: float) -> "PiecewiseLinearCurve":
        """The constant curve ``f(t) = value``."""
        return cls([0.0], [float(value)], 0.0)

    @classmethod
    def line(cls, rate: float) -> "PiecewiseLinearCurve":
        """The linear curve ``f(t) = rate * t`` (e.g. a link's capacity)."""
        return cls([0.0], [0.0], float(rate))

    @classmethod
    def affine(cls, burst: float, rate: float) -> "PiecewiseLinearCurve":
        """The affine curve ``f(t) = burst + rate * t`` (token bucket)."""
        return cls([0.0], [float(burst)], float(rate))

    @classmethod
    def rate_latency(cls, rate: float, latency: float) -> "PiecewiseLinearCurve":
        """The rate-latency service curve ``R * max(0, t - T)``."""
        if latency < 0:
            raise CurveError(f"latency must be >= 0, got {latency}")
        if latency == 0:
            return cls.line(rate)
        return cls([0.0, float(latency)], [0.0, 0.0], float(rate))

    @classmethod
    def from_breakpoints(cls, points: Iterable[tuple[float, float]],
                         final_slope: float) -> "PiecewiseLinearCurve":
        """Build a curve from an iterable of ``(x, y)`` pairs."""
        pts = sorted(points)
        return cls([p[0] for p in pts], [p[1] for p in pts], final_slope)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def __call__(self, t):
        """Evaluate the curve at ``t`` (scalar or array); ``t < 0`` maps to 0.

        The convention ``f(t) = 0`` for ``t < 0`` matches the network
        calculus convention for arrival/service curves extended to the
        whole real line.
        """
        ta = np.asarray(t, dtype=float)
        out = np.interp(ta, self.x, self.y)
        tail = ta > self.x[-1]
        if np.any(tail):
            out = np.where(
                tail, self.y[-1] + self.final_slope * (ta - self.x[-1]), out
            )
        out = np.where(ta < 0, 0.0, out)
        if np.isscalar(t) or ta.ndim == 0:
            return float(out)
        return out

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Vectorized evaluation returning an ndarray (grid kernels)."""
        return np.asarray(self(times), dtype=float)

    @property
    def n_breakpoints(self) -> int:
        """Number of breakpoints."""
        return int(self.x.size)

    def slopes(self) -> np.ndarray:
        """Per-segment slopes, including the final slope (length == len(x))."""
        if self.x.size == 1:
            return np.array([self.final_slope])
        seg = np.diff(self.y) / np.diff(self.x)
        return np.append(seg, self.final_slope)

    def is_nondecreasing(self, eps: float = EPS) -> bool:
        """True when every segment slope is >= 0 (up to tolerance)."""
        return bool(np.all(self.slopes() >= -eps))

    def _shape_holds(self, sign: float, eps: float) -> bool:
        """Shared convexity/concavity test; ``sign`` +1 convex, -1 concave.

        A kink violates the shape when the slope changes the wrong way
        by more than *eps* — unless the preceding segment is so narrow
        that the curve deviates from its convex (concave) envelope by at
        most *eps* in **value**.  The width-weighted let-out keeps
        representation-level artifacts (e.g. denormal-width segments
        produced by max/min of near-identical curves) from flipping the
        classification of a curve that is convex for every practical
        purpose.
        """
        s = self.slopes()
        if s.size <= 1:
            return True
        defect = sign * -np.diff(s)
        if np.all(defect <= eps):
            return True
        widths = np.diff(self.x)
        return bool(np.all((defect <= eps) | (defect * widths <= eps)))

    def is_convex(self, eps: float = EPS) -> bool:
        """True when segment slopes are nondecreasing (up to tolerance)."""
        return self._shape_holds(1.0, eps)

    def is_concave(self, eps: float = EPS) -> bool:
        """True when segment slopes are nonincreasing (up to tolerance).

        Note: a curve with ``y[0] > 0`` is treated as concave on
        ``(0, inf)``; the jump at 0 is ignored, matching the arrival-curve
        convention.
        """
        return self._shape_holds(-1.0, eps)

    def value_at_zero(self) -> float:
        """The curve value at ``t = 0`` (a token bucket's burst)."""
        return float(self.y[0])

    def long_term_rate(self) -> float:
        """The asymptotic growth rate (the final slope)."""
        return self.final_slope

    # ------------------------------------------------------------------
    # normalization helpers
    # ------------------------------------------------------------------

    def simplified(self, eps: float = EPS) -> "PiecewiseLinearCurve":
        """Drop collinear breakpoints; the returned curve is equivalent."""
        if self.x.size <= 1:
            return self
        s = self.slopes()
        keep = [0]
        for k in range(1, self.x.size):
            if not close(s[k], s[k - 1], eps):
                keep.append(k)
        return PiecewiseLinearCurve(self.x[keep], self.y[keep],
                                    self.final_slope)

    def _extended_to(self, xmax: float) -> tuple[np.ndarray, np.ndarray]:
        """Breakpoints extended (with the final slope) to include xmax."""
        if xmax <= self.x[-1]:
            return self.x, self.y
        x = np.append(self.x, xmax)
        y = np.append(self.y, self.y[-1] + self.final_slope * (xmax - self.x[-1]))
        return x, y

    # ------------------------------------------------------------------
    # pointwise arithmetic
    # ------------------------------------------------------------------

    def _binary_grid(self, other: "PiecewiseLinearCurve") -> np.ndarray:
        """Union of both curves' breakpoints (shared evaluation points)."""
        return np.union1d(self.x, other.x)

    def __add__(self, other):
        if isinstance(other, (int, float)):
            return PiecewiseLinearCurve(self.x, self.y + float(other),
                                        self.final_slope)
        if not isinstance(other, PiecewiseLinearCurve):
            return NotImplemented
        xs = self._binary_grid(other)
        ys = self.sample(xs) + other.sample(xs)
        return PiecewiseLinearCurve(xs, ys,
                                    self.final_slope + other.final_slope)

    __radd__ = __add__

    def __neg__(self):
        return PiecewiseLinearCurve(self.x, -self.y, -self.final_slope)

    def __sub__(self, other):
        if isinstance(other, (int, float)):
            return self + (-float(other))
        if not isinstance(other, PiecewiseLinearCurve):
            return NotImplemented
        return self + (-other)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        c = float(scalar)
        return PiecewiseLinearCurve(self.x, self.y * c, self.final_slope * c)

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        if not isinstance(other, PiecewiseLinearCurve):
            return NotImplemented
        a, b = self.simplified(), other.simplified()
        return (
            a.x.size == b.x.size
            and bool(np.allclose(a.x, b.x))
            and bool(np.allclose(a.y, b.y))
            and close(a.final_slope, b.final_slope)
        )

    def __hash__(self):  # pragma: no cover - curves are not dict keys
        return id(self)

    def __repr__(self) -> str:
        pts = ", ".join(f"({xi:g},{yi:g})" for xi, yi in
                        zip(self.x[:4], self.y[:4]))
        more = "..." if self.x.size > 4 else ""
        return (f"PiecewiseLinearCurve([{pts}{more}], "
                f"final_slope={self.final_slope:g})")

    # ------------------------------------------------------------------
    # pointwise min / max (with intersection breakpoints)
    # ------------------------------------------------------------------

    def _minmax(self, other: "PiecewiseLinearCurve", take_min: bool):
        kernel_count("curve.minmax")
        xs = self._binary_grid(other)
        # Within each shared segment the difference is affine, so any
        # sign change pinpoints one intersection to add as a breakpoint.
        fa = self.sample(xs)
        fb = other.sample(xs)
        diff = fa - fb
        extra = []
        for k in range(xs.size - 1):
            d0, d1 = diff[k], diff[k + 1]
            if (d0 > EPS and d1 < -EPS) or (d0 < -EPS and d1 > EPS):
                frac = d0 / (d0 - d1)
                extra.append(xs[k] + frac * (xs[k + 1] - xs[k]))
        # A final intersection may occur beyond the last breakpoint.
        dslope = self.final_slope - other.final_slope
        dlast = diff[-1]
        if abs(dslope) > EPS:
            tcross = xs[-1] - dlast / dslope
            if tcross > xs[-1] + EPS:
                extra.append(tcross)
        if extra:
            xs = np.union1d(xs, np.asarray(extra))
            fa = self.sample(xs)
            fb = other.sample(xs)
        ys = np.minimum(fa, fb) if take_min else np.maximum(fa, fb)
        # Tail slope: whichever curve is lower (min) / higher (max) at the
        # far end dictates the final slope; ties pick the smaller/larger
        # slope respectively.
        far = xs[-1] + 1.0
        va, vb = self(far), other(far)
        if take_min:
            if close(va, vb):
                fs = min(self.final_slope, other.final_slope)
            else:
                fs = self.final_slope if va < vb else other.final_slope
        else:
            if close(va, vb):
                fs = max(self.final_slope, other.final_slope)
            else:
                fs = self.final_slope if va > vb else other.final_slope
        return PiecewiseLinearCurve(xs, ys, fs).simplified()

    def minimum(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Exact pointwise minimum of two curves."""
        return self._minmax(other, take_min=True)

    def maximum(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Exact pointwise maximum of two curves."""
        return self._minmax(other, take_min=False)

    def positive_part(self) -> "PiecewiseLinearCurve":
        """Pointwise ``max(f, 0)`` — used for leftover service curves."""
        return self.maximum(PiecewiseLinearCurve.zero())

    # ------------------------------------------------------------------
    # shifts
    # ------------------------------------------------------------------

    def shift_right(self, d: float) -> "PiecewiseLinearCurve":
        """The curve ``t -> f(t - d)`` (0 before ``d``); ``d >= 0``.

        Used to delay a service curve; the region ``[0, d]`` is filled
        with the value 0, so the result of shifting a curve with
        ``f(0) > 0`` keeps a 0 segment then ramps (continuity at the
        library level is preserved by inserting the pre-jump point).
        """
        if d < 0:
            raise CurveError(f"shift_right needs d >= 0, got {d}")
        if d == 0:
            return self
        x = np.concatenate(([0.0], self.x + d))
        y = np.concatenate(([0.0], self.y))
        if self.y[0] > EPS:
            # keep the vertical rise at t=d representable: approximate the
            # jump with the segment [d-0, d] of slope ~ y0/epsilon is not
            # needed -- np.interp between (0,0) and (d, y0) would smear the
            # jump, so insert a point just before d.
            d_pre = d * (1.0 - 1e-12) if d > 0 else 0.0
            x = np.concatenate(([0.0, d_pre], self.x + d))
            y = np.concatenate(([0.0, 0.0], self.y))
        return PiecewiseLinearCurve(x, y, self.final_slope)

    def shift_left_x(self, d: float) -> "PiecewiseLinearCurve":
        """The curve ``t -> f(t + d)`` for ``d >= 0`` (Cruz output bound).

        For a traffic-constraint function ``b`` and a delay bound ``d``,
        the departing traffic obeys ``b(I + d)`` — this method computes
        that curve exactly.
        """
        if d < 0:
            raise CurveError(f"shift_left_x needs d >= 0, got {d}")
        if d == 0:
            return self
        keep = self.x >= d
        x_new = self.x[keep] - d
        y_new = self.y[keep]
        if x_new.size == 0 or x_new[0] > 0:
            x_new = np.concatenate(([0.0], x_new))
            y_new = np.concatenate(([self(d)], y_new))
        return PiecewiseLinearCurve(x_new, y_new, self.final_slope)

    # ------------------------------------------------------------------
    # pseudo-inverse
    # ------------------------------------------------------------------

    def pseudo_inverse(self, v):
        """Lower pseudo-inverse ``f^{-1}(v) = inf{t >= 0 : f(t) >= v}``.

        Requires a nondecreasing curve. Returns ``inf`` for values the
        curve never reaches (possible when the final slope is 0).
        Vectorized over ``v``.
        """
        if not self.is_nondecreasing():
            raise CurveError("pseudo_inverse requires a nondecreasing curve")
        kernel_count("curve.pseudo_inverse")
        va = np.atleast_1d(np.asarray(v, dtype=float))
        out = np.empty_like(va)

        xk, yk = self.x, self.y
        # np.searchsorted on y gives, for each target, the first breakpoint
        # with y >= target; we then back off into the preceding segment.
        idx = np.searchsorted(yk, va, side="left")
        for i, (target, k) in enumerate(zip(va, idx)):
            if target <= yk[0]:
                out[i] = 0.0
            elif k < yk.size:
                # inside segment (k-1, k); the segment slope is > 0 here
                # because y is reached strictly between breakpoints.
                y0, y1 = yk[k - 1], yk[k]
                x0, x1 = xk[k - 1], xk[k]
                if close(y1, y0):
                    out[i] = x1 if target > y0 else x0
                else:
                    out[i] = x0 + (target - y0) * (x1 - x0) / (y1 - y0)
            else:
                # beyond the last breakpoint
                if self.final_slope <= EPS:
                    out[i] = _INF if target > yk[-1] + EPS else xk[-1]
                else:
                    out[i] = xk[-1] + (target - yk[-1]) / self.final_slope
        if np.isscalar(v) or np.asarray(v).ndim == 0:
            return float(out[0])
        return out

    # ------------------------------------------------------------------
    # min-plus convolution
    # ------------------------------------------------------------------

    def convolve(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Exact min-plus convolution ``(f ⊗ g)(t) = inf_{0<=s<=t} f(s)+g(t-s)``.

        Exact closed forms are used for the two families the analyses
        need:

        * both curves concave (arrival curves): the infimum of a concave
          objective over ``[0, t]`` sits at an endpoint, so
          ``f ⊗ g = min(f + g(0), g + f(0))``;
        * both curves convex with value 0 at 0 (service curves): the
          classical slope-interleaving construction.

        Raises :class:`CurveError` for mixed shapes — callers should use
        :func:`repro.curves.numeric.grid_convolve` there.
        """
        if self.is_concave() and other.is_concave():
            kernel_count("curve.convolve")
            a = self + other.value_at_zero()
            b = other + self.value_at_zero()
            return a.minimum(b)
        if (self.is_convex() and other.is_convex()
                and abs(self.value_at_zero()) <= EPS
                and abs(other.value_at_zero()) <= EPS):
            kernel_count("curve.convolve")
            return _convolve_convex(self, other)
        raise CurveError(
            "exact convolution implemented for concave/concave and "
            "convex/convex (0 at 0) curves; use repro.curves.numeric."
            "grid_convolve for the general case"
        )

    # ------------------------------------------------------------------
    # deviations (delay / backlog bounds)
    # ------------------------------------------------------------------

    def vertical_deviation(self, other: "PiecewiseLinearCurve") -> float:
        """``sup_t [self(t) - other(t)]`` — the backlog bound when *self*
        is an arrival curve and *other* a service curve.

        Returns ``inf`` when *self* eventually outgrows *other*.
        """
        kernel_count("curve.vdev")
        if self.final_slope > other.final_slope + EPS:
            return _INF
        xs = np.union1d(self.x, other.x)
        gap = self.sample(xs) - other.sample(xs)
        return float(np.max(gap))

    def horizontal_deviation(self, other: "PiecewiseLinearCurve") -> float:
        """``sup_t [ other^{-1}(self(t)) - t ]`` — the delay bound when
        *self* is an arrival curve and *other* a (nondecreasing) service
        curve.

        Returns ``inf`` when the arrival rate exceeds the long-term
        service rate or the service curve saturates below the arrivals.
        """
        if not other.is_nondecreasing():
            raise CurveError("horizontal_deviation needs nondecreasing "
                             "service curve")
        kernel_count("curve.hdev")
        if self.final_slope > other.final_slope + EPS:
            return _INF
        # h(t) = other^{-1}(self(t)) - t is affine between "kink"
        # instants: the arrival curve's breakpoints and the pre-images
        # (under the arrival curve) of the service curve's breakpoint
        # values.  h may jump *up* at a kink's right limit when the
        # service curve has a flat segment (its pseudo-inverse jumps), so
        # the supremum over each open interval is taken from the affine
        # restriction's limits at both ends, reconstructed from two
        # interior evaluations.
        cands = [self.x]
        inv = np.atleast_1d(self.pseudo_inverse(other.y))
        cands.append(inv[np.isfinite(inv)])
        ts = np.union1d(np.concatenate(cands), [0.0])
        # sentinel interval past the last kink (covers the tail limit)
        ts = np.append(ts, ts[-1] + max(1.0, ts[-1]))

        def h(points: np.ndarray) -> np.ndarray:
            lags = np.atleast_1d(np.asarray(
                other.pseudo_inverse(self.sample(points)), dtype=float))
            return lags - points

        at_kinks = h(ts)
        if np.any(np.isinf(at_kinks)):
            return _INF
        best = float(np.max(at_kinks))
        q1 = ts[:-1] + 0.25 * np.diff(ts)
        q2 = ts[:-1] + 0.75 * np.diff(ts)
        h1, h2 = h(q1), h(q2)
        if np.any(np.isinf(h1)) or np.any(np.isinf(h2)):
            return _INF
        slope = (h2 - h1) / (q2 - q1)
        lim_left = h1 + slope * (ts[:-1] - q1)
        lim_right = h1 + slope * (ts[1:] - q1)
        best = max(best, float(np.max(lim_left)), float(np.max(lim_right)))
        return max(0.0, best)

    # ------------------------------------------------------------------
    # crossings
    # ------------------------------------------------------------------

    def first_crossing_below(self, other: "PiecewiseLinearCurve") -> float:
        """Smallest ``t > 0`` with ``self(t) <= other(t)``.

        Used to compute busy-period lengths: with *self* the aggregate
        arrival bound ``G`` and *other* the service line ``C*t``, the busy
        period is the first positive instant where the backlog bound hits
        zero.  Returns ``inf`` when the curves never cross.
        """
        kernel_count("curve.crossing")
        diff = self - other
        xs = diff.x
        ys = diff.y
        slopes = diff.slopes()
        # Is the difference strictly positive immediately after t=0?
        # If not, the "busy period" never builds up and its length is 0.
        if ys[0] <= EPS and slopes[0] <= EPS:
            return 0.0
        # Scan for the first instant t > 0 where the difference returns
        # to (or below) zero after having been positive.
        for k in range(xs.size - 1):
            y0, y1 = ys[k], ys[k + 1]
            if y1 <= EPS and y0 > EPS:
                frac = y0 / (y0 - y1) if not close(y0, y1) else 1.0
                return float(xs[k] + frac * (xs[k + 1] - xs[k]))
            if y1 <= EPS and y0 <= EPS:
                # the difference touched zero at the start of this segment
                return float(xs[k])
        if diff.final_slope < -EPS and ys[-1] > EPS:
            return float(xs[-1] + ys[-1] / (-diff.final_slope))
        if ys[-1] <= EPS:
            return float(xs[-1])
        return _INF


def _convolve_convex(f: PiecewiseLinearCurve,
                     g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
    """Min-plus convolution of two convex curves with value 0 at 0.

    The classical construction: the convolution's graph is obtained by
    traversing the union of both curves' segments in order of increasing
    slope.  Latency (0-slope) segments add up; the result is convex.
    """
    def segments(c: PiecewiseLinearCurve):
        segs = []
        for k in range(c.x.size - 1):
            dx = c.x[k + 1] - c.x[k]
            dy = c.y[k + 1] - c.y[k]
            segs.append((dy / dx, dx))
        segs.append((c.final_slope, _INF))
        return segs

    merged = sorted(segments(f) + segments(g), key=lambda s: s[0])
    xs = [0.0]
    ys = [0.0]
    final = merged[-1][0]
    for slope, length in merged:
        if math.isinf(length):
            # the first infinite segment dominates all later ones
            final = slope
            break
        nx = xs[-1] + length
        ny = ys[-1] + slope * length
        if nx <= xs[-1]:
            # segment shorter than float resolution at this offset:
            # merge it into the current breakpoint
            ys[-1] = ny
            continue
        xs.append(nx)
        ys.append(ny)
    return PiecewiseLinearCurve(xs, ys, final).simplified()
