"""Min-plus curve algebra (system S1/S2 in DESIGN.md).

Public surface:

* :class:`PiecewiseLinearCurve` — exact continuous piecewise-linear
  curves with min-plus operations;
* :class:`TokenBucket` — (sigma, rho[, peak]) traffic descriptors;
* functional operations: :func:`convolve`, :func:`deconvolve`,
  :func:`hdev`, :func:`vdev`, :func:`busy_period`;
* sampled kernels in :mod:`repro.curves.numeric` for grid-based
  evaluation (used by the Theorem-1 kernel).
"""

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.curves.token_bucket import TokenBucket, aggregate_curve
from repro.curves.operations import (
    busy_period,
    convolve,
    convolve_all,
    deconvolve,
    hdev,
    vdev,
)

__all__ = [
    "PiecewiseLinearCurve",
    "TokenBucket",
    "aggregate_curve",
    "busy_period",
    "convolve",
    "convolve_all",
    "deconvolve",
    "hdev",
    "vdev",
]
