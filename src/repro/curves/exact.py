"""Exact min-plus convolution and deconvolution for general PL curves.

The closed forms in :mod:`repro.curves.piecewise` cover the two shapes
the local analyses produce (concave/concave arrival convolution and
convex/convex service convolution).  Everything else — mixed-convexity
convolution, all deconvolution — used to fall back to the 4096-point
sampled grid, whose horizon heuristics and soundness pads were a
recurring source of bug fixes.  This module replaces that fallback with
exact segment algebra:

Convolution
    Any piecewise-linear curve is the pointwise minimum of its maximal
    *convex runs* (the curve restricted to a maximal interval of
    nondecreasing segment slopes, ``+inf`` outside).  Min-plus
    convolution distributes over ``min``, and the convolution of two
    convex pieces is the classical slope interleave started at the sum
    of their domain origins (the Minkowski sum of their epigraphs).
    The result is the exact lower envelope of the piecewise
    convolutions.

Deconvolution
    ``(f ⊘ g)(t) = sup_{u >= 0} f(t+u) - g(u)``.  For fixed ``t`` the
    objective is piecewise linear in ``u`` with kinks only where ``u``
    is a breakpoint of ``g`` or ``t + u`` is a breakpoint of ``f``, so
    the supremum is attained on a finite *branch* family: one branch
    ``t -> f(t + u_i) - g(u_i)`` per breakpoint ``u_i`` of ``g``
    (unbounded domain, eventual slope ``f.final_slope``) and one branch
    ``t -> f(x_j) - g(x_j - t)`` per breakpoint ``x_j`` of ``f``
    (domain ``[0, x_j]``).  The result is the exact upper envelope of
    the branches; its tail slope is ``f.long_term_rate()`` exactly —
    no horizon, no 75%-keep truncation, no resolution pad.

Envelopes
    The lower (upper) envelope of finitely many line segments is
    computed exactly: the candidate abscissae are every segment
    endpoint plus every pairwise intersection inside the segments'
    common domain.  Between consecutive candidates no two segments
    cross, so the envelope is a single segment there and linear
    interpolation between candidate values is exact (midpoints are
    evaluated as well, purely as numerical insurance; collinear points
    are dropped by ``simplified()``).

Complexity is ``O(S^2)`` in the total segment count ``S`` — for the
analyses' curves ``S`` is a few dozen, orders of magnitude below the
``O(n^2)``-on-4096-samples grid kernel (see
``benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.context.metrics import kernel_count
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import CurveError
from repro.utils.tolerance import EPS

__all__ = ["exact_convolve", "exact_deconvolve"]

_INF = math.inf

#: Relative spacing below which two candidate breakpoints are merged.
_MERGE_REL = 1e-12


# ----------------------------------------------------------------------
# segment soup -> exact lower envelope
# ----------------------------------------------------------------------


def _lower_envelope(x0: np.ndarray, x1: np.ndarray, y0: np.ndarray,
                    sl: np.ndarray) -> PiecewiseLinearCurve:
    """Exact lower envelope of line segments (``+inf`` off-domain).

    Segment ``k`` covers ``[x0[k], x1[k]]`` (``x1`` may be ``inf``)
    with value ``y0[k] + sl[k] * (x - x0[k])``.  The segments must
    cover ``[min(x0), inf)`` — at least one must be unbounded — and
    the true envelope must be continuous (both hold for the min-plus
    results this module builds; violations raise :class:`CurveError`).
    """
    # -- candidate abscissae: endpoints + pairwise intersections -------
    cands = [x0, x1[np.isfinite(x1)]]
    intercept = y0 - sl * x0
    dslope = sl[:, None] - sl[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        xc = (intercept[None, :] - intercept[:, None]) / dslope
    lo = np.maximum(x0[:, None], x0[None, :])
    hi = np.minimum(x1[:, None], x1[None, :])
    ok = (np.abs(dslope) > 1e-15) & np.isfinite(xc)
    tol = 1e-9 * np.maximum(1.0, np.abs(np.where(ok, xc, 0.0)))
    ok &= (xc >= lo - tol) & (xc <= hi + tol)
    cands.append(xc[ok])

    xmin = float(np.min(x0))
    xs = np.unique(np.concatenate(cands))
    xs = xs[xs >= xmin]
    if xs.size == 0 or xs[0] != xmin:
        xs = np.concatenate(([xmin], xs[xs > xmin]))
    if xs.size > 1:
        keep = np.concatenate(
            ([True],
             np.diff(xs) > _MERGE_REL * np.maximum(1.0, np.abs(xs[1:]))))
        xs = xs[keep]
    if xs.size > 1:
        pts = np.unique(np.concatenate([xs, 0.5 * (xs[:-1] + xs[1:])]))
    else:
        pts = xs

    # -- envelope values at the candidates -----------------------------
    atol = 1e-9 * np.maximum(1.0, np.abs(pts))
    active = ((pts[None, :] >= x0[:, None] - atol[None, :])
              & (pts[None, :] <= x1[:, None] + atol[None, :]))
    vals = y0[:, None] + sl[:, None] * (pts[None, :] - x0[:, None])
    env = np.min(np.where(active, vals, _INF), axis=0)
    if not np.all(np.isfinite(env)):
        raise CurveError("segment envelope leaves the domain uncovered")

    # -- tail: the unbounded segment that wins past the last candidate
    unbounded = np.isinf(x1)
    if not np.any(unbounded):
        raise CurveError("segment envelope needs an unbounded segment")
    far = pts[-1] + max(1.0, abs(pts[-1]))
    far_vals = y0[unbounded] + sl[unbounded] * (far - x0[unbounded])
    near = far_vals <= np.min(far_vals) + EPS * max(1.0, far)
    final_slope = float(np.min(sl[unbounded][near]))

    return PiecewiseLinearCurve(pts, env, final_slope)


# ----------------------------------------------------------------------
# convolution: convex-run decomposition + slope interleave
# ----------------------------------------------------------------------


def _convex_runs(c: PiecewiseLinearCurve):
    """Maximal convex runs of *c* as ``(x0, y0, [(slope, length), ...])``.

    The runs partition the domain; on its own interval each run equals
    *c* and is convex, so ``c`` is the pointwise min of the runs
    extended by ``+inf`` — the decomposition convolution distributes
    over.  The last run's last segment has infinite length (the final
    slope).
    """
    s = c.slopes()
    m = s.size
    lengths = np.append(np.diff(c.x), _INF)
    runs = []
    start = 0
    for i in range(1, m):
        if s[i] < s[i - 1] - EPS:      # concave kink: a new run begins
            runs.append(start)
            start = i
    runs.append(start)
    out = []
    for r, a in enumerate(runs):
        b = runs[r + 1] if r + 1 < len(runs) else m
        segs = [(float(s[i]), float(lengths[i])) for i in range(a, b)]
        out.append((float(c.x[a]), float(c.y[a]), segs))
    return out


def _convolve_runs(p, q):
    """Min-plus convolution of two convex runs (slope interleave).

    The epigraph of the inf-convolution of convex functions is the
    Minkowski sum of the operand epigraphs: starting at the sum of the
    domain origins, traverse the union of both runs' segments in
    nondecreasing slope order.  The first infinite segment terminates
    the walk (steeper segments are never reached).
    """
    ax, ay, asegs = p
    bx, by, bsegs = q
    merged = sorted(asegs + bsegs, key=lambda seg: seg[0])
    cx, cy = ax + bx, ay + by
    x0s, y0s, sls, x1s = [], [], [], []
    for slope, length in merged:
        if math.isinf(length):
            x0s.append(cx)
            y0s.append(cy)
            sls.append(slope)
            x1s.append(_INF)
            break
        x0s.append(cx)
        y0s.append(cy)
        sls.append(slope)
        cx += length
        cy += slope * length
        x1s.append(cx)
    return x0s, x1s, y0s, sls


def exact_convolve(f: PiecewiseLinearCurve,
                   g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
    """Exact ``f ⊗ g`` for arbitrary finite PL curves.

    Uses the closed forms of :meth:`PiecewiseLinearCurve.convolve` when
    the operands' shapes admit them, otherwise the convex-run
    decomposition (counted as ``curve.exact_convolve``).  Total: never
    raises, never samples.
    """
    try:
        return f.convolve(g)
    except CurveError:
        pass
    kernel_count("curve.exact_convolve")
    x0s: list[float] = []
    x1s: list[float] = []
    y0s: list[float] = []
    sls: list[float] = []
    for p in _convex_runs(f):
        for q in _convex_runs(g):
            a, b, c, d = _convolve_runs(p, q)
            x0s.extend(a)
            x1s.extend(b)
            y0s.extend(c)
            sls.extend(d)
    return _lower_envelope(np.asarray(x0s), np.asarray(x1s),
                           np.asarray(y0s), np.asarray(sls)).simplified()


# ----------------------------------------------------------------------
# deconvolution: breakpoint-offset branches + upper envelope
# ----------------------------------------------------------------------


def exact_deconvolve(f: PiecewiseLinearCurve,
                     g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
    """Exact ``f ⊘ g`` — the output-traffic bound, with no horizon.

    Raises :class:`CurveError` when ``f`` outgrows ``g``
    (``f.final_slope > g.final_slope``): the supremum is infinite and
    no finite curve bounds the output.  The grid backend silently
    truncates that divergence at its horizon; the ``auto`` kernel
    preserves the legacy behavior by falling back on this error.
    """
    if f.final_slope > g.final_slope + EPS:
        raise CurveError(
            f"deconvolution diverges: f grows at {f.final_slope:g} > "
            f"g at {g.final_slope:g}; no finite output bound exists")
    kernel_count("curve.exact_deconvolve")
    x0s: list[float] = []
    x1s: list[float] = []
    y0s: list[float] = []
    sls: list[float] = []

    def add_branch(ts: np.ndarray, vs: np.ndarray, tail: float | None):
        # negate: the upper envelope of branches is the negated lower
        # envelope of the negated branches
        for k in range(ts.size - 1):
            dx = ts[k + 1] - ts[k]
            if dx <= 0:
                continue
            x0s.append(float(ts[k]))
            x1s.append(float(ts[k + 1]))
            y0s.append(float(-vs[k]))
            sls.append(float(-(vs[k + 1] - vs[k]) / dx))
        if tail is not None:
            x0s.append(float(ts[-1]))
            x1s.append(_INF)
            y0s.append(float(-vs[-1]))
            sls.append(-tail)

    # type 1: u pinned at a breakpoint of g -> f shifted left by u
    for u, gu in zip(g.x, g.y):
        ts = np.unique(np.concatenate(
            ([0.0], f.x[f.x > u] - u)))
        vs = f.sample(ts + u) - gu
        add_branch(ts, vs, tail=f.final_slope)

    # type 2: t + u pinned at a breakpoint of f -> reflected g
    for xj, fj in zip(f.x, f.y):
        if xj <= 0.0:
            continue      # single-point domain; covered by type 1 at t=0
        ts = np.unique(np.clip(np.concatenate(
            ([0.0, xj], xj - g.x[g.x < xj])), 0.0, xj))
        vs = fj - g.sample(xj - ts)
        add_branch(ts, vs, tail=None)

    env = _lower_envelope(np.asarray(x0s), np.asarray(x1s),
                          np.asarray(y0s), np.asarray(sls))
    # the sup's tail slope is analytically f's long-term rate
    return PiecewiseLinearCurve(env.x, -env.y,
                                f.long_term_rate()).simplified()
