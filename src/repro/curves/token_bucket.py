"""Token-bucket traffic constraint functions (paper eq. (4)).

The paper assumes every connection is shaped at its source by a token
bucket and is additionally limited by the (unit-capacity) access line:

``b(I) = min(C * I, sigma + rho * I)``

:class:`TokenBucket` captures the ``(sigma, rho)`` pair plus the optional
peak rate and converts to the exact piecewise-linear constraint curve
used by every analysis.  The class also implements the operations the
analyses perform on traffic descriptors — burstiness inflation after a
delay (Cruz's output characterization) and aggregation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["TokenBucket", "aggregate_curve"]


@dataclass(frozen=True)
class TokenBucket:
    """A ``(sigma, rho)`` token bucket with an optional peak-rate limit.

    Attributes
    ----------
    sigma:
        Bucket depth (maximum burst), in data units.
    rho:
        Token accumulation rate (long-term rate), data units per second.
    peak:
        Peak (line) rate limiting instantaneous emission; ``inf`` means
        the pure affine constraint ``sigma + rho * I``.
    """

    sigma: float
    rho: float
    peak: float = math.inf

    def __post_init__(self) -> None:
        check_nonnegative("sigma", self.sigma)
        check_nonnegative("rho", self.rho)
        if self.peak != math.inf:
            check_positive("peak", self.peak)
            if self.peak < self.rho:
                raise ValueError(
                    f"peak rate {self.peak} must be >= sustained rate {self.rho}"
                )

    # ------------------------------------------------------------------

    def constraint_curve(self) -> PiecewiseLinearCurve:
        """The exact traffic-constraint function ``b(I)``.

        ``b(I) = min(peak * I, sigma + rho * I)`` — continuous, concave,
        with ``b(0) = 0`` when a finite peak applies and ``b(0) = sigma``
        for the pure affine case.
        """
        if math.isinf(self.peak):
            return PiecewiseLinearCurve.affine(self.sigma, self.rho)
        if self.peak == self.rho:
            # degenerate: constant-rate source, the bucket never matters
            return PiecewiseLinearCurve.line(self.rho)
        knee = self.sigma / (self.peak - self.rho)
        if knee == 0.0:
            return PiecewiseLinearCurve.affine(self.sigma, self.rho)
        return PiecewiseLinearCurve(
            [0.0, knee], [0.0, self.peak * knee], self.rho
        )

    def delayed(self, delay: float) -> "TokenBucket":
        """Descriptor after traversing an element with delay bound *delay*.

        Cruz: departing traffic obeys ``b(I + delay)``; for a token bucket
        this is burstiness inflation ``sigma -> sigma + rho * delay``.
        The peak-rate envelope does not survive multiplexing inside the
        network (a FIFO server can emit a connection's backlog at line
        rate), so the inflated descriptor drops the source peak limit.
        """
        check_nonnegative("delay", delay)
        return TokenBucket(self.sigma + self.rho * delay, self.rho)

    def delayed_curve(self, delay: float) -> PiecewiseLinearCurve:
        """Exact output-constraint curve ``b(I + delay)``.

        Tighter than :meth:`delayed` (it keeps the full piecewise shape),
        used where the analyses can exploit the exact curve.
        """
        check_nonnegative("delay", delay)
        return self.constraint_curve().shift_left_x(delay)

    def scaled(self, factor: float) -> "TokenBucket":
        """A token bucket with both sigma and rho scaled by *factor*."""
        check_positive("factor", factor)
        peak = self.peak if math.isinf(self.peak) else self.peak * factor
        return TokenBucket(self.sigma * factor, self.rho * factor, peak)

    def __add__(self, other: "TokenBucket") -> "TokenBucket":
        """Aggregate of two independent token-bucket flows.

        Burst and rate add; the aggregate peak is the sum of peaks
        (infinite if either is unbounded).
        """
        if not isinstance(other, TokenBucket):
            return NotImplemented
        peak = (math.inf if math.isinf(self.peak) or math.isinf(other.peak)
                else self.peak + other.peak)
        return TokenBucket(self.sigma + other.sigma, self.rho + other.rho,
                           peak)


def aggregate_curve(descriptors) -> PiecewiseLinearCurve:
    """Exact sum of the constraint curves of an iterable of descriptors.

    Accepts :class:`TokenBucket` instances and/or already-built
    :class:`PiecewiseLinearCurve` objects; returns the pointwise sum
    (the aggregate arrival bound ``G(t)`` of paper eq. (6)).
    """
    total = PiecewiseLinearCurve.zero()
    for d in descriptors:
        curve = d.constraint_curve() if isinstance(d, TokenBucket) else d
        total = total + curve
    return total.simplified()
