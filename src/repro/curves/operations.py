"""Free-function façade over the curve algebra — the kernel layer.

These wrappers give the analyses a uniform functional vocabulary
(``convolve``, ``deconvolve``, ``hdev`` …) and dispatch each operation
on the *active curve kernel* (see :mod:`repro.curves.kernels` and
``docs/KERNELS.md``):

``exact``  (default)
    Exact piecewise-linear algebra — closed forms plus the general
    convex-run convolution / branch deconvolution of
    :mod:`repro.curves.exact`.  No horizon, no sampling, bit-identical
    across runs.
``grid``
    The legacy sampled backend (:mod:`repro.curves.numeric`):
    rate-aware auto-horizons, 4096-point grids, and resolution-derived
    soundness pads that make every sampled bound *dominate* the exact
    one (delay/backlog bounds err on the safe side; deconvolution is
    lifted by its documented pad).  Kept as the differential-checking
    backend — see :func:`repro.validate.oracles.check_exact_grid`.
``auto``
    Exact first; on :class:`~repro.errors.CurveError` (a diverging
    deconvolution) falls back to the grid backend and counts
    ``curve.fallbacks`` — the legacy truncating behavior, opt-in.

Every function takes an optional ``kernel=`` override; the default is
the thread's active kernel (:func:`repro.curves.kernels.current_kernel`).
``busy_period`` and the pseudo-inverse/crossing paths are closed-form
exact under **every** kernel — they never sampled to begin with.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.context.metrics import kernel_count
from repro.curves import numeric
from repro.curves.exact import exact_convolve, exact_deconvolve
from repro.curves.kernels import current_kernel, resolve_kernel
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import CurveError
from repro.utils.grid import TimeGrid, make_grid

__all__ = [
    "convolve",
    "convolve_all",
    "hdev",
    "vdev",
    "busy_period",
    "deconvolve",
]

#: Grid resolution used by the sampled backend.
_FALLBACK_RESOLUTION = 4096


def _kernel(kernel: str | None) -> str:
    return current_kernel() if kernel is None else resolve_kernel(kernel)


def _auto_horizon(*curves: PiecewiseLinearCurve) -> float:
    """The horizon that safely covers the features of *curves*.

    The characteristic time of a curve is its last breakpoint plus —
    when the tail keeps growing — the time the final slope needs to
    double the last breakpoint value.  Sizing by breakpoints alone is
    not enough: a near-degenerate curve like ``affine(sigma, rho)`` has
    its single breakpoint at 0 and would get the minimal 1.0 horizon
    regardless of how slowly its tail accumulates, silently truncating
    every sampled sup/inf that needs ``t ~ sigma/rho`` to settle.
    """
    tc = 0.0
    for c in curves:
        t = float(c.x[-1])
        if c.final_slope > 0:
            t += max(float(c.y[-1]), 0.0) / c.final_slope
        tc = max(tc, t)
    return max(1.0, 4.0 * tc)


def _auto_grid(*curves: PiecewiseLinearCurve,
               horizon: float | None = None) -> TimeGrid:
    """A grid whose horizon safely covers the features of *curves*."""
    if horizon is None:
        horizon = _auto_horizon(*curves)
    return make_grid(horizon, _FALLBACK_RESOLUTION)


def _grid_convolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve,
                   horizon: float | None) -> PiecewiseLinearCurve:
    """One pairwise convolution on the sampled backend."""
    try:
        return f.convolve(g)       # closed forms stay exact on any kernel
    except CurveError:
        pass
    grid = _auto_grid(f, g, horizon=horizon)
    out = numeric.grid_convolve(numeric.sample(f, grid),
                                numeric.sample(g, grid))
    return numeric.to_curve(out, grid)


def convolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve,
             horizon: float | None = None,
             kernel: str | None = None) -> PiecewiseLinearCurve:
    """Min-plus convolution ``f ⊗ g`` on the active kernel.

    The exact kernel is total (never raises, never samples); *horizon*
    only affects the grid backend's coverage and is ignored by the
    exact path.
    """
    k = _kernel(kernel)
    if k == "grid":
        return _grid_convolve(f, g, horizon)
    # exact convolution is total: "exact" and "auto" coincide here
    return exact_convolve(f, g)


def convolve_all(curves: Iterable[PiecewiseLinearCurve],
                 horizon: float | None = None,
                 kernel: str | None = None) -> PiecewiseLinearCurve:
    """Min-plus convolution of an iterable of curves (left fold).

    On the grid backend *horizon* is a **minimum** coverage for the
    sampled folds, not the literal grid size: the accumulator's
    characteristic time grows with every fold, so each pairwise fold
    re-derives its grid from the current operands and only widens it to
    the caller's *horizon*.  (Reusing one fixed horizon for every fold
    truncated late folds — the accumulator's tail past the grid was
    extrapolated with a single slope, silently inflating the result.)
    The exact kernel folds with no horizon at all.
    """
    k = _kernel(kernel)
    it = iter(curves)
    try:
        acc = next(it)
    except StopIteration:
        raise CurveError("convolve_all needs at least one curve") from None
    for c in it:
        h = None if horizon is None else max(horizon, _auto_horizon(acc, c))
        acc = convolve(acc, c, horizon=h, kernel=k)
    return acc


def _grid_deconvolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve,
                     horizon: float | None) -> PiecewiseLinearCurve:
    """``f ⊘ g`` on the sampled backend (padded, truncated sup)."""
    kernel_count("curve.deconvolve")
    grid = _auto_grid(f, g, horizon=horizon)
    out = numeric.grid_deconvolve(numeric.sample(f, grid),
                                  numeric.sample(g, grid))
    # The sampled sup is truncated at the horizon, which contaminates the
    # tail of the result (the sup near the boundary sees too few
    # offsets).  Keep
    # the first 75% of the samples and extend with f's long-term rate —
    # the analytically correct tail slope of f ⊘ g for stable systems.
    # The graft itself is continuous: the tail is anchored at the last
    # kept breakpoint's value, so no vertical jump can appear at the
    # splice (pinned against closed-form token-bucket / rate-latency
    # cases in tests/curves/test_operations.py).
    keep = max(2, (3 * grid.n) // 4)
    sub = TimeGrid(grid.times[keep - 1], keep)
    curve = numeric.to_curve(out[:keep], sub)
    # The grid sup evaluates only on-grid offsets and the reconstruction
    # interpolates between on-grid instants, so the raw samples sit up
    # to ~dt * slope *below* the exact supremum — the unsound direction
    # for an output-traffic bound.  Lift the whole curve by the
    # resolution-derived worst case so the result dominates the exact
    # f ⊘ g everywhere (the pad vanishes as the resolution grows).
    pad = 0.5 * grid.dt * (_max_abs_slope(f) + _max_abs_slope(g))
    return PiecewiseLinearCurve(curve.x, curve.y + pad, f.long_term_rate())


def deconvolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve,
               horizon: float | None = None,
               kernel: str | None = None) -> PiecewiseLinearCurve:
    """Min-plus deconvolution ``f ⊘ g`` on the active kernel.

    The output-traffic bound of a flow with arrival curve ``f`` served
    with service curve ``g``.  The exact kernel evaluates the supremum
    over breakpoint offsets with no horizon and raises
    :class:`CurveError` when it diverges (``f`` outgrows ``g``); the
    grid backend truncates at its rate-aware horizon instead and pads
    the result to dominate the exact one.  ``auto`` tries exact and
    falls back to the grid on divergence (counted as
    ``curve.fallbacks``).
    """
    k = _kernel(kernel)
    if k == "grid":
        return _grid_deconvolve(f, g, horizon)
    if k == "exact":
        return exact_deconvolve(f, g)
    try:
        return exact_deconvolve(f, g)
    except CurveError:
        kernel_count("curve.fallbacks")
        return _grid_deconvolve(f, g, horizon)


def _max_abs_slope(c: PiecewiseLinearCurve) -> float:
    """Largest absolute segment slope of *c* (Lipschitz constant)."""
    return float(np.max(np.abs(c.slopes())))


def hdev(arrival: PiecewiseLinearCurve,
         service: PiecewiseLinearCurve,
         kernel: str | None = None) -> float:
    """Horizontal deviation (worst-case delay bound).

    Exact on the ``exact``/``auto`` kernels.  The grid backend samples
    both curves on a rate-aware grid and **adds its documented error
    envelope** (``2·dt·(1 + L_arr / rate_srv)``) so the sampled bound
    always dominates the exact one — a sampled delay bound below the
    true deviation would be unsound.
    """
    k = _kernel(kernel)
    if k != "grid":
        return arrival.horizontal_deviation(service)
    if arrival.final_slope > service.final_slope + 1e-12:
        return float("inf")
    grid = _auto_grid(arrival, service)
    sampled = numeric.grid_hdev(numeric.sample(arrival, grid),
                                numeric.sample(service, grid), grid)
    if not np.isfinite(sampled):
        return float(sampled)
    pad = 2.0 * grid.dt * (1.0 + _max_abs_slope(arrival)
                           / max(service.final_slope, 1e-9))
    return float(sampled + pad)


def vdev(arrival: PiecewiseLinearCurve,
         service: PiecewiseLinearCurve,
         kernel: str | None = None) -> float:
    """Vertical deviation (worst-case backlog bound).

    Exact on the ``exact``/``auto`` kernels; the grid backend adds its
    error envelope (``2·dt·(L_arr + L_srv)``) so the sampled bound
    dominates the exact one.
    """
    k = _kernel(kernel)
    if k != "grid":
        return arrival.vertical_deviation(service)
    if arrival.final_slope > service.final_slope + 1e-12:
        return float("inf")
    grid = _auto_grid(arrival, service)
    sampled = numeric.grid_vdev(numeric.sample(arrival, grid),
                                numeric.sample(service, grid))
    pad = 2.0 * grid.dt * (_max_abs_slope(arrival)
                           + _max_abs_slope(service))
    return float(sampled + pad)


def busy_period(aggregate: PiecewiseLinearCurve, capacity: float) -> float:
    """Length of the maximum busy period of a work-conserving server.

    Smallest ``t > 0`` with ``aggregate(t) <= capacity * t`` (paper's
    ``B_j``).  Returns ``inf`` for an unstable server (long-term arrival
    rate >= capacity) — callers should have validated stability first.
    The crossing scan is closed-form exact and identical under every
    kernel.
    """
    if capacity <= 0:
        raise CurveError(f"capacity must be > 0, got {capacity}")
    return aggregate.first_crossing_below(
        PiecewiseLinearCurve.line(capacity))
