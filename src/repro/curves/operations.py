"""Free-function façade over the curve algebra.

These wrappers give the analyses a uniform functional vocabulary
(``convolve``, ``hdev`` …) and transparently route operations the exact
kernel cannot handle to the sampled kernel in :mod:`repro.curves.numeric`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.context.metrics import kernel_count
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.curves import numeric
from repro.errors import CurveError
from repro.utils.grid import TimeGrid, make_grid

__all__ = [
    "convolve",
    "convolve_all",
    "hdev",
    "vdev",
    "busy_period",
    "deconvolve",
]

#: Grid resolution used by numeric fallbacks.
_FALLBACK_RESOLUTION = 4096


def _auto_horizon(*curves: PiecewiseLinearCurve) -> float:
    """The horizon that safely covers the features of *curves*.

    The characteristic time of a curve is its last breakpoint plus —
    when the tail keeps growing — the time the final slope needs to
    double the last breakpoint value.  Sizing by breakpoints alone is
    not enough: a near-degenerate curve like ``affine(sigma, rho)`` has
    its single breakpoint at 0 and would get the minimal 1.0 horizon
    regardless of how slowly its tail accumulates, silently truncating
    every sampled sup/inf that needs ``t ~ sigma/rho`` to settle.
    """
    tc = 0.0
    for c in curves:
        t = float(c.x[-1])
        if c.final_slope > 0:
            t += max(float(c.y[-1]), 0.0) / c.final_slope
        tc = max(tc, t)
    return max(1.0, 4.0 * tc)


def _auto_grid(*curves: PiecewiseLinearCurve,
               horizon: float | None = None) -> TimeGrid:
    """A grid whose horizon safely covers the features of *curves*."""
    if horizon is None:
        horizon = _auto_horizon(*curves)
    return make_grid(horizon, _FALLBACK_RESOLUTION)


def convolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve,
             horizon: float | None = None) -> PiecewiseLinearCurve:
    """Min-plus convolution ``f ⊗ g``; exact where possible.

    Falls back to the sampled kernel (resolution
    ``_FALLBACK_RESOLUTION``) for mixed-convexity operands; pass
    *horizon* to control the fallback's coverage.
    """
    try:
        return f.convolve(g)
    except CurveError:
        kernel_count("curve.fallbacks")
        grid = _auto_grid(f, g, horizon=horizon)
        out = numeric.grid_convolve(numeric.sample(f, grid),
                                    numeric.sample(g, grid))
        return numeric.to_curve(out, grid)


def convolve_all(curves: Iterable[PiecewiseLinearCurve],
                 horizon: float | None = None) -> PiecewiseLinearCurve:
    """Min-plus convolution of an iterable of curves (left fold).

    *horizon* is a **minimum** coverage for the sampled fallbacks, not
    the literal grid size: the accumulator's characteristic time grows
    with every fold, so each pairwise fallback re-derives its grid from
    the current operands and only widens it to the caller's *horizon*.
    (Reusing one fixed horizon for every fold truncated late folds —
    the accumulator's tail past the grid was extrapolated with a single
    slope, silently inflating the result.)
    """
    it = iter(curves)
    try:
        acc = next(it)
    except StopIteration:
        raise CurveError("convolve_all needs at least one curve") from None
    for c in it:
        h = None if horizon is None else max(horizon, _auto_horizon(acc, c))
        acc = convolve(acc, c, horizon=h)
    return acc


def deconvolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve,
               horizon: float | None = None) -> PiecewiseLinearCurve:
    """Min-plus deconvolution ``f ⊘ g`` via the sampled kernel.

    The output-traffic bound of a flow with arrival curve ``f`` served
    with service curve ``g``.  The horizon must cover the element's busy
    period; by default four times the curves' characteristic time
    (see :func:`_auto_grid`) is used.
    """
    kernel_count("curve.deconvolve")
    grid = _auto_grid(f, g, horizon=horizon)
    out = numeric.grid_deconvolve(numeric.sample(f, grid),
                                  numeric.sample(g, grid))
    # The sampled sup is truncated at the horizon, which contaminates the
    # tail of the result (the sup near the boundary sees too few
    # offsets).  Keep
    # the first 75% of the samples and extend with f's long-term rate —
    # the analytically correct tail slope of f ⊘ g for stable systems.
    # The graft itself is continuous: the tail is anchored at the last
    # kept breakpoint's value, so no vertical jump can appear at the
    # splice (pinned against closed-form token-bucket / rate-latency
    # cases in tests/curves/test_operations.py).
    keep = max(2, (3 * grid.n) // 4)
    sub = TimeGrid(grid.times[keep - 1], keep)
    curve = numeric.to_curve(out[:keep], sub)
    # The grid sup evaluates only on-grid offsets and the reconstruction
    # interpolates between on-grid instants, so the raw samples sit up
    # to ~dt * slope *below* the exact supremum — the unsound direction
    # for an output-traffic bound.  Lift the whole curve by the
    # resolution-derived worst case so the result dominates the exact
    # f ⊘ g everywhere (the pad vanishes as the resolution grows).
    pad = 0.5 * grid.dt * (_max_abs_slope(f) + _max_abs_slope(g))
    return PiecewiseLinearCurve(curve.x, curve.y + pad, f.long_term_rate())


def _max_abs_slope(c: PiecewiseLinearCurve) -> float:
    """Largest absolute segment slope of *c* (Lipschitz constant)."""
    return float(np.max(np.abs(c.slopes())))


def hdev(arrival: PiecewiseLinearCurve,
         service: PiecewiseLinearCurve) -> float:
    """Horizontal deviation (worst-case delay bound). Exact."""
    return arrival.horizontal_deviation(service)


def vdev(arrival: PiecewiseLinearCurve,
         service: PiecewiseLinearCurve) -> float:
    """Vertical deviation (worst-case backlog bound). Exact."""
    return arrival.vertical_deviation(service)


def busy_period(aggregate: PiecewiseLinearCurve, capacity: float) -> float:
    """Length of the maximum busy period of a work-conserving server.

    Smallest ``t > 0`` with ``aggregate(t) <= capacity * t`` (paper's
    ``B_j``).  Returns ``inf`` for an unstable server (long-term arrival
    rate >= capacity) — callers should have validated stability first.
    """
    if capacity <= 0:
        raise CurveError(f"capacity must be > 0, got {capacity}")
    return aggregate.first_crossing_below(
        PiecewiseLinearCurve.line(capacity))
