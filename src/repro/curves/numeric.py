"""Sampled (grid) curve kernels — the differential-checking backend.

The exact piecewise algebra (:mod:`repro.curves.piecewise` closed forms
plus the general :mod:`repro.curves.exact` kernel) is the default for
every analysis; the dense-uniform-grid kernels here remain as the
``kernel="grid"`` backend of :mod:`repro.curves.operations` — selected
for differential validation (:func:`repro.validate.oracles.
check_exact_grid`), kernel benchmarks, and legacy comparisons.  They
are no longer on any hot path.

All kernels take plain float arrays sampled on a :class:`repro.utils.grid.
TimeGrid`; conversion helpers to/from :class:`PiecewiseLinearCurve` are
provided.  Complexity of the min-plus kernels is O(n^2) but fully
vectorized, which is ample for the grid sizes the analyses use (n ~ 2^11).
"""

from __future__ import annotations

import numpy as np

from repro.context.metrics import kernel_count
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.utils.grid import TimeGrid

__all__ = [
    "sample",
    "to_curve",
    "grid_convolve",
    "grid_deconvolve",
    "grid_pseudo_inverse",
    "grid_hdev",
    "grid_vdev",
]


def sample(curve: PiecewiseLinearCurve, grid: TimeGrid) -> np.ndarray:
    """Sample *curve* on *grid* (returns a 1-D float array)."""
    return curve.sample(grid.times)


def to_curve(values: np.ndarray, grid: TimeGrid) -> PiecewiseLinearCurve:
    """Interpret grid samples as a piecewise-linear curve.

    The final slope is taken from the last grid segment, so the
    reconstruction is only trustworthy inside the grid horizon — callers
    must size the horizon to cover every feature they care about.

    A nondecreasing input whose last cell carries float-cancellation
    noise used to mint a *decreasing* tail (e.g. a reconstructed
    arrival curve shrinking forever past the horizon); tiny negative
    final slopes are clamped to 0 when the samples themselves are
    nondecreasing up to the same value tolerance.
    """
    v = np.asarray(values, dtype=float)
    if v.shape != (grid.n,):
        raise ValueError(f"expected {grid.n} samples, got {v.shape}")
    fs = (v[-1] - v[-2]) / grid.dt
    if fs < 0.0:
        noise = 1e-9 * max(1.0, float(np.max(np.abs(v))))
        if -fs * grid.dt <= noise and np.all(np.diff(v) >= -noise):
            fs = 0.0
    return PiecewiseLinearCurve(grid.times, v, fs).simplified()


def grid_convolve(f: np.ndarray, g: np.ndarray) -> np.ndarray:
    """Min-plus convolution on a shared uniform grid.

    ``out[k] = min_{0<=i<=k} f[i] + g[k-i]``.

    Implemented as a loop over the (short) first operand axis with a
    vectorized shifted-minimum update — O(n^2) work but only O(n) Python
    iterations, each a fused numpy kernel.
    """
    kernel_count("curve.grid_convolve")
    f = np.asarray(f, dtype=float)
    g = np.asarray(g, dtype=float)
    if f.shape != g.shape or f.ndim != 1:
        raise ValueError("operands must be 1-D arrays of equal length")
    n = f.size
    out = np.full(n, np.inf)
    for i in range(n):
        # candidate decompositions using f[i]: contributes to out[i:].
        np.minimum(out[i:], f[i] + g[: n - i], out=out[i:])
    return out


def grid_deconvolve(f: np.ndarray, g: np.ndarray) -> np.ndarray:
    """Min-plus deconvolution ``out[k] = max_{j>=0} f[k+j] - g[j]``.

    Used for output-traffic bounds: the departing traffic of a flow with
    arrival curve ``f`` through service ``g`` is constrained by
    ``f ⊘ g``.  The supremum is truncated at the grid horizon, so —
    as with :func:`grid_convolve` — the horizon must cover the busy
    period of the element being analyzed.
    """
    kernel_count("curve.grid_deconvolve")
    f = np.asarray(f, dtype=float)
    g = np.asarray(g, dtype=float)
    if f.shape != g.shape or f.ndim != 1:
        raise ValueError("operands must be 1-D arrays of equal length")
    n = f.size
    out = np.full(n, -np.inf)
    for j in range(n):
        np.maximum(out[: n - j], f[j:] - g[j], out=out[: n - j])
    return out


def grid_pseudo_inverse(values: np.ndarray, grid: TimeGrid,
                        targets: np.ndarray) -> np.ndarray:
    """Lower pseudo-inverse of nondecreasing grid samples.

    For each target ``v`` returns ``inf{t in grid : f(t) >= v}``
    (linearly interpolated inside the grid cell; ``inf`` when the target
    exceeds the final sample).
    """
    v = np.asarray(values, dtype=float)
    t = grid.times
    targets = np.asarray(targets, dtype=float)
    idx = np.searchsorted(v, targets, side="left")
    out = np.empty(targets.shape, dtype=float)
    inside = idx < v.size
    out[~inside] = np.inf
    ii = idx[inside]
    tt = targets[inside]
    res = np.empty(ii.shape, dtype=float)
    at_start = ii == 0
    res[at_start] = t[0]
    mid = ~at_start
    i_mid = ii[mid]
    v0 = v[i_mid - 1]
    v1 = v[i_mid]
    denom = np.where(v1 > v0, v1 - v0, 1.0)
    frac = np.where(v1 > v0, (tt[mid] - v0) / denom, 1.0)
    res[mid] = t[i_mid - 1] + frac * grid.dt
    out[inside] = res
    return out


def grid_hdev(arrival: np.ndarray, service: np.ndarray,
              grid: TimeGrid) -> float:
    """Horizontal deviation between sampled arrival and service curves.

    ``sup_t [ service^{-1}(arrival(t)) - t ]`` evaluated at the grid
    points.  Returns ``inf`` when the service samples never reach the
    arrival's maximum (horizon too small or unstable system).
    """
    kernel_count("curve.grid_hdev")
    service = np.asarray(service, dtype=float)
    arrival = np.asarray(arrival, dtype=float)
    lags = grid_pseudo_inverse(service, grid, arrival)
    # Arrival levels above the last service sample: extrapolate the
    # service tail with its final grid slope instead of reporting inf —
    # otherwise equal-rate arrival/service pairs look unstable purely
    # because of horizon truncation.
    over = arrival > service[-1]
    if np.any(over):
        tail_slope = (service[-1] - service[-2]) / grid.dt
        if tail_slope <= 0:
            return float("inf")
        lags = np.where(
            over,
            grid.horizon + (arrival - service[-1]) / tail_slope,
            lags,
        )
    dev = lags - grid.times
    return float(max(0.0, np.max(dev)))


def grid_vdev(arrival: np.ndarray, service: np.ndarray) -> float:
    """Vertical deviation ``sup_t [arrival(t) - service(t)]`` on a grid."""
    kernel_count("curve.grid_vdev")
    return float(np.max(np.asarray(arrival) - np.asarray(service)))
