"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro analyze  --hops 4 --load 0.8 [--analyzer integrated] [--all-flows]
    repro figures  [--quick] [--figure FIG5]
    repro simulate --hops 4 --load 0.8 [--horizon 120] [--packet 0.05]
    repro admit    --hops 4 --deadline 30 [--rho 0.02] [--analyzer ...]
                   [--incremental] [--trace out.json] [--store DIR]
    repro resilience --hops 4 --load 0.8 [--degrade 2=0.8] [--fail 2] ...
    repro sweep    --analyzers integrated --hops 2,4 --loads 0.3,0.6
                   [--checkpoint FILE] [--resume] [--timeout S]
                   [--profile] [--store DIR]
    repro validate --seeds 20 [--quick] [--out DIR] [--budget S]
                   [--replay CASE.json] [--trace out.json]
    repro serve    --journal DIR --hops 4 --deadline 30 [--count N]
                   [--interval S] [--budget S] [--shed-latency S]
                   [--store DIR]
    repro recover  --journal DIR [--no-verify] [--show-bounds]
                   [--store DIR]
    repro store    {inspect|compact|verify} DIR [--max-bytes N]
    repro loadtest --workload flash-crowd --seed 7 --rate 40
                   --duration 10 [--closed-loop K] [--chaos]
                   [--record t.jsonl] [--replay t.jsonl]
                   [--slo "p99<0.5,lost<1"] [--out BENCH_loadtest.json]

Every subcommand operates on the paper's tandem topology; richer
topologies are a Python-API affair (see examples/custom_topology.py).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.admission.controller import AdmissionController
from repro.admission.requests import ConnectionRequest
from repro.analysis.base import Analyzer
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.feedback import FeedbackAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.kernels import ENV_VAR as KERNEL_ENV_VAR
from repro.curves.kernels import KERNELS
from repro.curves.token_bucket import TokenBucket
from repro.eval.figures import FIGURES
from repro.eval.tables import render_figure
from repro.eval.workloads import quick_sweep
from repro.loadgen.models import WORKLOADS
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec
from repro.sim.simulator import simulate_greedy

__all__ = ["main", "build_parser"]

ANALYZERS = {
    "decomposed": DecomposedAnalysis,
    "service_curve": ServiceCurveAnalysis,
    "integrated": IntegratedAnalysis,
    "feedback": FeedbackAnalysis,
}


def _make_analyzer(name: str) -> Analyzer:
    try:
        return ANALYZERS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown analyzer {name!r}; choose from "
            f"{sorted(ANALYZERS)}") from None


def _open_store(path: str | None, *, read_only: bool = False):
    """Open ``--store PATH`` writable (or read-only), or return None."""
    if path is None:
        return None
    from repro.errors import StoreError
    from repro.store import AnalysisStore

    try:
        return AnalysisStore(path, read_only=read_only)
    except (StoreError, OSError) as exc:
        raise SystemExit(f"store: {path}: {exc}") from None


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrated end-to-end delay analysis "
                    "(Li/Bettati/Zhao, ICPP 1999)")
    sub = parser.add_subparsers(dest="command", required=True)

    def kernel_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kernel", choices=KERNELS, default=None,
                       help="curve kernel: exact piecewise algebra "
                            "(default), sampled grid backend, or auto "
                            "(exact with grid fallback) — see "
                            "docs/KERNELS.md")

    def store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=None, metavar="PATH",
                       help="persistent analysis store directory: "
                            "serve cached per-hop/per-block results "
                            "across runs (bit-identical to cold "
                            "analysis) and persist fresh ones — see "
                            "docs/STORE.md")

    def tandem_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--hops", type=int, default=4,
                       help="tandem size n (default 4)")
        p.add_argument("--load", type=float, default=0.8,
                       help="network load U in (0,1) (default 0.8)")
        p.add_argument("--sigma", type=float, default=1.0,
                       help="source burst size (default 1)")

    p = sub.add_parser("analyze",
                       help="delay bounds on the paper's tandem "
                            "or a JSON-described network")
    tandem_args(p)
    p.add_argument("--network", default=None, metavar="FILE",
                   help="analyze this JSON network instead of a tandem "
                        "(see repro.network.serialization for the schema)")
    p.add_argument("--analyzer", default="all",
                   help="one of %s or 'all'" % sorted(ANALYZERS))
    p.add_argument("--all-flows", action="store_true",
                   help="print every connection, not just Connection 0")

    p = sub.add_parser("figures",
                       help="regenerate the paper's evaluation figures")
    p.add_argument("--quick", action="store_true",
                   help="small sweep for a fast look")
    p.add_argument("--figure", choices=sorted(FIGURES), default=None,
                   help="only one figure (default: all)")

    p = sub.add_parser("simulate",
                       help="greedy packet-level simulation vs bounds")
    tandem_args(p)
    p.add_argument("--horizon", type=float, default=120.0)
    p.add_argument("--packet", type=float, default=0.05)

    p = sub.add_parser("admit",
                       help="count admissible identical connections")
    p.add_argument("--hops", type=int, default=4)
    p.add_argument("--deadline", type=float, default=30.0)
    p.add_argument("--rho", type=float, default=0.02,
                   help="per-connection rate (default 0.02)")
    p.add_argument("--analyzer", default="integrated",
                   help="admission test analysis (default integrated)")
    p.add_argument("--max", type=int, default=500, dest="max_tries")
    p.add_argument("--incremental", action="store_true",
                   help="engine-backed admission: cache per-hop results "
                        "across tests (bit-identical decisions) and "
                        "print the engine's cache statistics")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a structured JSON trace of the run "
                        "(per-request and per-server spans, curve-op "
                        "counters, engine cache stats) to FILE")
    kernel_arg(p)
    store_arg(p)

    p = sub.add_parser("export",
                       help="write figure data as CSV + JSON files")
    p.add_argument("--out", default="results",
                   help="output directory (default ./results)")
    p.add_argument("--quick", action="store_true")

    p = sub.add_parser("chart",
                       help="ASCII chart of one figure's delay panel")
    p.add_argument("--figure", choices=sorted(FIGURES), default="FIG5")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--log", action="store_true",
                   help="log-scale value axis (like the paper)")

    p = sub.add_parser("report",
                       help="regenerate the full reproduction report")
    p.add_argument("--out", default="REPORT.md")
    p.add_argument("--quick", action="store_true")

    p = sub.add_parser("resilience",
                       help="survivability of the tandem's deadline "
                            "guarantees under fault scenarios")
    tandem_args(p)
    p.add_argument("--analyzer", default="integrated",
                   help="analysis used for baseline and retests "
                        "(default integrated)")
    p.add_argument("--slack", type=float, default=1.5,
                   help="deadline = slack x healthy bound per flow "
                        "(default 1.5)")
    p.add_argument("--degrade", action="append", default=[],
                   metavar="SERVER=FACTOR",
                   help="degrade SERVER to FACTOR of its capacity "
                        "(repeatable)")
    p.add_argument("--fail", action="append", default=[],
                   metavar="SERVER",
                   help="fail SERVER outright (repeatable)")
    p.add_argument("--inflate", action="append", default=[],
                   metavar="FLOW=FACTOR",
                   help="inflate FLOW's burst by FACTOR; FLOW 'all' "
                        "hits every source (repeatable)")
    p.add_argument("--verbose", action="store_true",
                   help="print surviving flows too, not just casualties")

    p = sub.add_parser("sweep",
                       help="fault-tolerant parameter sweep with "
                            "checkpoint/resume")
    p.add_argument("--analyzers", default="integrated",
                   help="comma-separated analyzer names "
                        "(default integrated)")
    p.add_argument("--hops", default="2,4",
                   help="comma-separated tandem sizes (default 2,4)")
    p.add_argument("--loads", default="0.2,0.5,0.8",
                   help="comma-separated loads (default 0.2,0.5,0.8)")
    p.add_argument("--sigma", type=float, default=1.0)
    p.add_argument("--timeout", type=float, default=None,
                   help="per-task wall-clock limit in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts per failing point (default 1)")
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="stream completed points to this JSONL file")
    p.add_argument("--resume", action="store_true",
                   help="with --checkpoint: evaluate only missing or "
                        "failed points")
    p.add_argument("--serial", action="store_true",
                   help="run in-process instead of a worker pool")
    p.add_argument("--profile", action="store_true",
                   help="profile every point (wall-clock + curve-op "
                        "counters per point, kept in checkpoint "
                        "records) and print a per-point timing column")
    kernel_arg(p)
    store_arg(p)

    p = sub.add_parser("serve",
                       help="journaled admission service: admit a "
                            "stream of identical connections with "
                            "write-ahead durability, circuit breakers "
                            "and graceful SIGTERM/SIGINT shutdown")
    p.add_argument("--journal", required=True, metavar="DIR",
                   help="write-ahead journal directory (must be fresh "
                        "unless --resume)")
    p.add_argument("--resume", action="store_true",
                   help="recover DIR's journal and continue serving "
                        "from the reconstructed state")
    p.add_argument("--hops", type=int, default=4)
    p.add_argument("--deadline", type=float, default=30.0)
    p.add_argument("--rho", type=float, default=0.02,
                   help="per-connection rate (default 0.02)")
    p.add_argument("--analyzer", default="integrated",
                   help="primary admission analysis (default integrated)")
    p.add_argument("--count", type=int, default=100,
                   help="connections to attempt (default 100)")
    p.add_argument("--interval", type=float, default=0.0, metavar="S",
                   help="sleep between admissions (throttles the "
                        "stream; default 0)")
    p.add_argument("--budget", type=float, default=None, metavar="S",
                   help="per-analyzer wall-clock budget per test")
    p.add_argument("--shed-latency", type=float, default=None,
                   metavar="S", dest="shed_latency",
                   help="latency SLO that triggers automatic load "
                        "shedding (cache, then closed-form bounds)")
    p.add_argument("--snapshot-every", type=int, default=64,
                   dest="snapshot_every", metavar="K",
                   help="journaled ops between snapshots (default 64)")
    p.add_argument("--no-incremental", action="store_true",
                   help="run the primary analyzer cold (no engine rung)")
    p.add_argument("--tandems", type=int, default=1,
                   help="serve this many disjoint tandems round-robin "
                        "(independent components parallel batches can "
                        "fan out over; default 1)")
    p.add_argument("--workers", type=int, default=1,
                   help="admission-test process pool size; > 1 admits "
                        "in batches whose independent component groups "
                        "run concurrently (default 1 = serial)")
    p.add_argument("--batch", type=int, default=16,
                   help="requests per admit_batch when --workers > 1 "
                        "(default 16)")
    kernel_arg(p)
    store_arg(p)

    p = sub.add_parser("loadtest",
                       help="SLO-gated load test of the admission "
                            "service: seeded workload, canonical "
                            "trace record/replay, optional chaos "
                            "kill/recover")
    p.add_argument("--workload", default="poisson",
                   choices=sorted(WORKLOADS),
                   help="arrival process (default poisson)")
    p.add_argument("--seed", type=int, default=7,
                   help="workload seed (default 7)")
    p.add_argument("--rate", type=float, default=40.0,
                   help="average offered load in req/s (default 40)")
    p.add_argument("--duration", type=float, default=10.0, metavar="S",
                   help="virtual horizon in seconds (default 10)")
    p.add_argument("--hops", type=int, default=4)
    p.add_argument("--tandems", type=int, default=1, metavar="T",
                   help="disjoint tandems of --hops servers; requests "
                        "round-robin across them (independent "
                        "components give --workers concurrency to "
                        "exploit; default 1)")
    p.add_argument("--deadline", type=float, default=30.0)
    p.add_argument("--rho", type=float, default=0.02,
                   help="per-connection rate (default 0.02)")
    p.add_argument("--sigma", type=float, default=1.0)
    p.add_argument("--hold", type=float, default=None, metavar="S",
                   dest="hold_s",
                   help="mean connection lifetime: admits spawn "
                        "releases (churn); default none (churn "
                        "workload: 10/rate)")
    p.add_argument("--paths", choices=("full", "random"),
                   default="full",
                   help="request paths: the full tandem or random "
                        "contiguous sub-paths (default full)")
    p.add_argument("--analyzer", default="integrated",
                   help="primary admission analysis (default "
                        "integrated)")
    p.add_argument("--no-incremental", action="store_true",
                   help="run the primary analyzer cold (no engine "
                        "rung)")
    p.add_argument("--budget", type=float, default=None, metavar="S",
                   help="per-analyzer wall-clock budget per test")
    p.add_argument("--shed-latency", type=float, default=None,
                   metavar="S", dest="shed_latency",
                   help="latency SLO for automatic shedding (makes "
                        "outcomes timing-dependent: traces recorded "
                        "with it are not byte-stable)")
    p.add_argument("--closed-loop", type=int, default=None, metavar="K",
                   dest="closed_loop",
                   help="closed-loop saturation probe with K logical "
                        "clients instead of the open-loop schedule")
    p.add_argument("--requests", type=int, default=None, metavar="N",
                   help="closed loop: total requests (default "
                        "rate x duration)")
    p.add_argument("--workers", type=int, default=1, metavar="W",
                   help="closed loop: admit each round of in-flight "
                        "requests as one parallel batch on W pool "
                        "workers (decisions stay bit-identical to "
                        "the serial round-robin; default 1)")
    p.add_argument("--pace", action="store_true",
                   help="open loop: sleep to the virtual schedule "
                        "(real-time run) instead of as-fast-as-"
                        "possible")
    p.add_argument("--journal", default=None, metavar="DIR",
                   help="journal directory (default: fresh temp dir, "
                        "removed after the run)")
    p.add_argument("--chaos", action="store_true",
                   help="SIGKILL-equivalent mid-run: abandon the "
                        "service, recover from the journal, verify "
                        "zero lost committed admissions")
    p.add_argument("--chaos-at", action="append", type=int, default=[],
                   metavar="N", dest="chaos_at",
                   help="chaos kill before event N (repeatable; "
                        "default with --chaos: the run midpoint)")
    p.add_argument("--chaos-verify", action="store_true",
                   dest="chaos_verify",
                   help="bit-identical bound re-verification on every "
                        "chaos recovery (slower)")
    p.add_argument("--record", default=None, metavar="FILE",
                   help="record the canonical JSONL trace to FILE")
    p.add_argument("--record-latency", action="store_true",
                   dest="record_latency",
                   help="include wall-clock latency/lag per trace "
                        "record (trace is then not byte-stable)")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="re-execute a recorded trace and diff every "
                        "decision instead of generating load")
    p.add_argument("--slo", default=None, metavar="SPEC",
                   help="gate the run, e.g. "
                        "'p99<0.5,reject<0.2,lost<1' "
                        "(see docs/LOADTEST.md)")
    p.add_argument("--out", default="BENCH_loadtest.json",
                   metavar="FILE",
                   help="machine-readable result artifact (default "
                        "BENCH_loadtest.json; '' disables)")
    kernel_arg(p)

    p = sub.add_parser("recover",
                       help="crash recovery: replay a journal "
                            "directory and re-verify its bounds")
    p.add_argument("--journal", required=True, metavar="DIR")
    p.add_argument("--no-verify", action="store_true",
                   help="structural replay only; skip the bit-identical "
                        "bound re-verification")
    p.add_argument("--show-bounds", action="store_true",
                   help="print the recovered per-flow delay bounds")
    kernel_arg(p)
    store_arg(p)

    p = sub.add_parser("store",
                       help="inspect, compact or verify a persistent "
                            "analysis store directory")
    p.add_argument("action", choices=("inspect", "compact", "verify"),
                   help="inspect: layout + stats; compact: rewrite "
                        "live entries (LRU-capped); verify: full "
                        "checksum scan")
    p.add_argument("path", metavar="DIR",
                   help="store directory (as passed to --store)")
    p.add_argument("--max-bytes", type=int, default=None,
                   dest="max_bytes", metavar="N",
                   help="compact: cap live payload bytes, evicting "
                        "least-recently-used entries beyond N")

    p = sub.add_parser("validate",
                       help="differential validation: fuzz the bounds "
                            "against the simulator and the sampled "
                            "kernels")
    p.add_argument("--seeds", type=int, default=20,
                   help="number of random topologies to fuzz "
                        "(default 20)")
    p.add_argument("--quick", action="store_true",
                   help="small topologies, short simulations and a "
                        "reduced kernel workload (CI smoke mode)")
    p.add_argument("--horizon", type=float, default=80.0,
                   help="simulation horizon per topology (default 80)")
    p.add_argument("--packet", type=float, default=0.05,
                   help="simulated packet size (default 0.05)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write shrunk JSON repro cases for any "
                        "violations into DIR")
    p.add_argument("--budget", type=float, default=None, metavar="S",
                   help="cooperative wall-clock budget in seconds; on "
                        "expiry a partial report is printed")
    p.add_argument("--no-shrink", action="store_true",
                   help="record violating topologies as found, "
                        "without minimizing them")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="replay one saved repro case instead of "
                        "fuzzing")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a structured JSON trace of the run "
                        "(per-seed spans, validate.* counters) to FILE")
    kernel_arg(p)
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------

def _cmd_analyze(args) -> int:
    if args.network:
        from repro.network.serialization import load_network

        net = load_network(args.network)
        print(f"network: {args.network} ({len(net.servers)} servers, "
              f"{len(net.flows)} flows)")
        flows = [f.name for f in net.iter_flows()]
    else:
        net = build_tandem(args.hops, args.load, args.sigma)
        print(f"tandem: n={args.hops}, U={args.load}, "
              f"sigma={args.sigma}")
        flows = ([f.name for f in net.iter_flows()] if args.all_flows
                 else [CONNECTION0])
    names = (sorted(ANALYZERS) if args.analyzer == "all"
             else [args.analyzer])
    if not net.is_feedforward:
        names = [n for n in names if n == "feedback"] or ["feedback"]
        print("(cyclic network: using the feedback analysis)")
    width = max(10, *(len(f) for f in flows))
    header = f"{'flow':>{width}}" + "".join(f"{n:>15}" for n in names)
    print(header)
    reports = {n: _make_analyzer(n).analyze(net) for n in names}
    for fname in flows:
        row = f"{fname:>{width}}"
        for n in names:
            row += f"{reports[n].delay_of(fname):15.4f}"
        print(row)
    return 0


def _cmd_figures(args) -> int:
    sweep = quick_sweep() if args.quick else None
    keys = [args.figure] if args.figure else sorted(FIGURES)
    for key in keys:
        fig = FIGURES[key](sweep) if sweep else FIGURES[key]()
        print(render_figure(fig))
    return 0


def _cmd_simulate(args) -> int:
    net = build_tandem(args.hops, args.load, args.sigma)
    bound = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
    sim = simulate_greedy(net, horizon=args.horizon,
                          packet_size=args.packet)
    stats = sim.stats[CONNECTION0]
    print(f"simulated {sim.packets_completed} packets over "
          f"{args.horizon:g}s (greedy sources)")
    print(f"Connection 0: observed max={stats.max_delay:.4f} "
          f"mean={stats.mean_delay:.4f} p99={stats.p99_delay:.4f}")
    print(f"integrated bound: {bound:.4f}  "
          f"(observed/bound = {stats.max_delay / bound:.1%})")
    slack = args.packet * args.hops
    ok = stats.max_delay <= bound + slack
    print("soundness:", "OK" if ok else "VIOLATED")
    return 0 if ok else 1


def _cmd_admit(args) -> int:
    from repro.context import NULL_CONTEXT, AnalysisContext

    ctx = AnalysisContext.tracing() if args.trace else NULL_CONTEXT
    store = _open_store(args.store)
    if store is not None and not args.incremental:
        # the store rides the engine's lookup ladder
        args.incremental = True
    empty = Network([ServerSpec(k) for k in range(1, args.hops + 1)], [])
    controller = AdmissionController(empty, _make_analyzer(args.analyzer),
                                     incremental=args.incremental,
                                     context=ctx, store=store)

    def make(k: int) -> ConnectionRequest:
        return ConnectionRequest(
            f"conn_{k}", TokenBucket(1.0, args.rho, peak=1.0),
            tuple(range(1, args.hops + 1)), args.deadline)

    try:
        count = controller.admissible_count(make,
                                            max_tries=args.max_tries)
    finally:
        if store is not None:
            store.close()
    print(f"{args.analyzer}: admitted {count} identical connections "
          f"(deadline {args.deadline:g}, rho {args.rho:g}, "
          f"{args.hops} hops)")
    if controller.engine_stats is not None:
        print(controller.engine_stats.render())
    if store is not None:
        print(f"store: {store.path} ({len(store)} entries)")
    if args.trace:
        meta: dict = {"command": "admit", "analyzer": args.analyzer,
                      "hops": args.hops, "deadline": args.deadline,
                      "rho": args.rho, "admitted": count}
        if controller.engine_stats is not None:
            meta["engine"] = controller.engine_stats.as_dict()
        path = ctx.write_trace(args.trace, **meta)
        print(f"wrote trace {path}")
    return 0


def _cmd_export(args) -> int:
    from repro.eval.export import write_figure_files

    sweep = quick_sweep() if args.quick else None
    figures = [FIGURES[k](sweep) if sweep else FIGURES[k]()
               for k in sorted(FIGURES)]
    written = write_figure_files(figures, args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_chart(args) -> int:
    from repro.eval.ascii_chart import render_chart

    sweep = quick_sweep() if args.quick else None
    fig = FIGURES[args.figure](sweep) if sweep else FIGURES[args.figure]()
    print(render_chart(fig.delay_series, log_y=args.log,
                       title=f"{fig.figure_id}: {fig.title} "
                             "(Connection 0 delay bound)"))
    return 0


def _cmd_report(args) -> int:
    from repro.eval.report import write_report

    path = write_report(args.out, quick=args.quick)
    print(f"wrote {path}")
    return 0


def _server_id(token: str):
    """Tandem server ids are ints; fall back to the raw string."""
    return int(token) if token.lstrip("-").isdigit() else token


def _split_kv(spec: str, what: str) -> tuple[str, float]:
    name, sep, value = spec.partition("=")
    if not sep or not name:
        raise SystemExit(f"--{what} expects NAME=FACTOR, got {spec!r}")
    try:
        return name, float(value)
    except ValueError:
        raise SystemExit(
            f"--{what} {spec!r}: {value!r} is not a number") from None


def _cmd_resilience(args) -> int:
    from repro.resilience import (
        BurstInflation,
        ServerDegradation,
        ServerFailure,
        render_survivability,
        survivability,
    )

    net = build_tandem(args.hops, args.load, args.sigma)
    analyzer = _make_analyzer(args.analyzer)
    baseline = analyzer.analyze(net)
    deadlined = Network(
        net.servers.values(),
        [f.with_deadline(args.slack * baseline.delay_of(f.name))
         for f in net.iter_flows()])

    scenarios = []
    for spec in args.degrade:
        sid, factor = _split_kv(spec, "degrade")
        scenarios.append(ServerDegradation(_server_id(sid), factor))
    for spec in args.fail:
        scenarios.append(ServerFailure(_server_id(spec)))
    for spec in args.inflate:
        name, factor = _split_kv(spec, "inflate")
        scenarios.append(BurstInflation(
            factor, None if name == "all" else [name]))
    if not scenarios:
        # default drill: degrade each server to 90%, one at a time
        scenarios = [ServerDegradation(sid, 0.9)
                     for sid in sorted(net.servers)]

    print(f"tandem: n={args.hops}, U={args.load}, sigma={args.sigma}, "
          f"deadlines at {args.slack:g}x healthy bounds")
    report = survivability(deadlined, scenarios, analyzer)
    print(render_survivability(report, verbose=args.verbose))
    return 0 if report.survives else 1


def _cmd_sweep(args) -> int:
    from repro.context import AnalysisContext, MetricsRegistry
    from repro.eval.parallel import evaluate_grid

    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    analyzers = [a for a in args.analyzers.split(",") if a]
    hops = [int(h) for h in args.hops.split(",") if h]
    loads = [float(u) for u in args.loads.split(",") if u]

    # live progress sourced from the sweep's metrics registry
    ctx = AnalysisContext(metrics=MetricsRegistry())
    start = time.perf_counter()

    def progress(done: int, total: int, errors: int) -> None:
        m = ctx.metrics
        done = int(m.get("sweep.done"))
        total = int(m.get("sweep.total"))
        errors = int(m.get("sweep.errors"))
        elapsed = time.perf_counter() - start
        eta = elapsed / done * (total - done) if done else 0.0
        print(f"\r{done}/{total} points, {errors} errors, "
              f"ETA {eta:.0f}s ", end="", file=sys.stderr, flush=True)

    store = _open_store(args.store)
    try:
        points = evaluate_grid(
            analyzers, hops, loads, sigma=args.sigma,
            parallel=not args.serial, timeout=args.timeout,
            retries=args.retries, checkpoint=args.checkpoint,
            resume=args.resume, ctx=ctx, profile=args.profile,
            progress=progress, store=store)
    finally:
        if store is not None:
            store.close()
    print(file=sys.stderr)
    timing = f" {'time':>8} " if args.profile else "  "
    print(f"{'analyzer':>15} {'hops':>5} {'load':>6} "
          f"{'delay':>10}{timing} status")
    failed = 0
    for p in points:
        timing = f" {p.elapsed_s:>7.3f}s " if args.profile else "  "
        if p.ok:
            print(f"{p.analyzer:>15} {p.n_hops:>5} {p.load:>6.2f} "
                  f"{p.delay:>10.4f}{timing}ok")
        else:
            failed += 1
            print(f"{p.analyzer:>15} {p.n_hops:>5} {p.load:>6.2f} "
                  f"{'-':>10}{timing}ERROR: {p.error}")
    print(f"{len(points) - failed}/{len(points)} points ok"
          + (f", {failed} failed" if failed else ""))
    if store is not None:
        m = ctx.metrics
        print(f"store: {store.path} ({len(store)} entries, "
              f"{int(m.get('store.writes'))} new)")
    return 0 if failed == 0 else 1


def _cmd_serve(args) -> int:
    from repro.errors import JournalError, RecoveryError
    from repro.service import AdmissionService, recover_service

    if args.tandems < 1:
        raise SystemExit("serve: --tandems must be >= 1")
    if args.workers < 1:
        raise SystemExit("serve: --workers must be >= 1")
    store = _open_store(args.store)
    try:
        if args.resume:
            service = recover_service(
                args.journal,
                analyzer=_make_analyzer(args.analyzer),
                kernel=args.kernel,
                analysis_budget=args.budget,
                incremental=not args.no_incremental,
                snapshot_every=args.snapshot_every,
                shed_latency_s=args.shed_latency,
                store=store)
            print(f"recovered {len(service.admitted)} connection(s) "
                  f"from {args.journal}"
                  + (f" (store: {store.path})"
                     if store is not None else ""))
        else:
            # --tandems T disjoint lines of --hops servers; requests
            # round-robin across them (independent components, so
            # --workers > 1 has concurrency to exploit)
            empty = Network(
                [ServerSpec(t * args.hops + k)
                 for t in range(args.tandems)
                 for k in range(1, args.hops + 1)], [])
            service = AdmissionService(
                empty, _make_analyzer(args.analyzer),
                journal_dir=args.journal,
                kernel=args.kernel,
                analysis_budget=args.budget,
                incremental=not args.no_incremental,
                snapshot_every=args.snapshot_every,
                shed_latency_s=args.shed_latency,
                store=store)
    except (JournalError, RecoveryError) as exc:
        if store is not None:
            store.close()
        raise SystemExit(f"serve: {exc}") from None

    def make(k: int) -> ConnectionRequest:
        base = (k % args.tandems) * args.hops
        return ConnectionRequest(
            f"conn_{k}", TokenBucket(1.0, args.rho, peak=1.0),
            tuple(range(base + 1, base + args.hops + 1)), args.deadline)

    def show(k: int, outcome) -> bool:
        if outcome.admitted:
            print(f"seq {outcome.seq}: admitted conn_{k} "
                  f"bound={outcome.bound:.4f} "
                  f"[{outcome.degradation}]")
            return True
        print(f"rejected conn_{k} [{outcome.degradation}]: "
              f"{outcome.reason}")
        return False

    admitted = rejected = 0
    start = len(service.admitted)
    batch = max(1, args.batch) if args.workers > 1 else 1
    try:
        with service.graceful_shutdown():
            k = start
            while k < start + args.count:
                if service.shutdown_requested:
                    print("shutdown requested: checkpointing and "
                          "exiting", file=sys.stderr)
                    break
                ks = list(range(k, min(k + batch, start + args.count)))
                if batch > 1:
                    outcomes = service.admit_batch(
                        [make(i) for i in ks], workers=args.workers)
                else:
                    outcomes = [service.admit(make(ks[0]))]
                stop = False
                for i, outcome in zip(ks, outcomes):
                    if show(i, outcome):
                        admitted += 1
                    else:
                        rejected += 1
                        stop = True
                if stop:
                    break
                k += len(ks)
                if args.interval > 0:
                    time.sleep(args.interval)
    finally:
        if store is not None:
            store.close()
    lat = service.latency_quantiles()
    print(f"served {admitted} admission(s), {rejected} rejection(s); "
          f"journal at {args.journal} "
          f"(breakers: {service.breaker_states()})")
    if lat["count"]:
        print(f"decision latency: p50 {lat['p50'] * 1e3:.2f}ms  "
              f"p95 {lat['p95'] * 1e3:.2f}ms  "
              f"p99 {lat['p99'] * 1e3:.2f}ms  "
              f"max {lat['max'] * 1e3:.2f}ms "
              f"({int(lat['count'])} decision(s))")
    return 0


def _cmd_loadtest(args) -> int:
    import json as _json
    import shutil
    import tempfile

    from repro.context import AnalysisContext, MetricsRegistry
    from repro.errors import (
        JournalError,
        LoadGenError,
        RecoveryError,
        ServiceError,
    )
    from repro.loadgen import (
        ChaosPlan,
        RequestTemplate,
        TraceWriter,
        load_trace,
        make_workload,
        parse_slo,
        replay,
        run_closed_loop,
        run_open_loop,
        summarize,
    )
    from repro.service import AdmissionService, recover_service
    from repro.utils.durable import atomic_write_text

    try:
        slo = parse_slo(args.slo) if args.slo else None
    except LoadGenError as exc:
        raise SystemExit(f"loadtest: {exc}") from None

    ctx = AnalysisContext(metrics=MetricsRegistry())
    tmp_journal = args.journal is None
    journal_dir = (tempfile.mkdtemp(prefix="repro-loadtest-")
                   if tmp_journal else args.journal)
    incremental = not args.no_incremental

    def build_service(hops: int, analyzer_name: str,
                      tandems: int = 1) -> AdmissionService:
        empty = Network([ServerSpec(t * hops + k)
                         for t in range(tandems)
                         for k in range(1, hops + 1)], [])
        return AdmissionService(
            empty, _make_analyzer(analyzer_name),
            journal_dir=journal_dir,
            analysis_budget=args.budget,
            incremental=incremental,
            shed_latency_s=args.shed_latency,
            ctx=ctx)

    try:
        # ---------------- replay mode --------------------------------
        if args.replay:
            try:
                header, events = load_trace(args.replay)
            except LoadGenError as exc:
                raise SystemExit(f"loadtest: {exc}") from None
            drv = header.get("driver", {})
            service = build_service(int(drv.get("hops", args.hops)),
                                    str(drv.get("analyzer",
                                                args.analyzer)),
                                    int(drv.get("tandems", 1)))
            with service:
                report = replay((header, events), service)
            print(f"replayed {args.replay} "
                  f"(workload {header.get('workload', {}).get('kind')}, "
                  f"seed {header.get('workload', {}).get('seed')})")
            print(report.render())
            return 0 if report.ok else 1

        # ---------------- generate mode ------------------------------
        if args.tandems < 1:
            raise SystemExit("loadtest: --tandems must be >= 1")
        template = RequestTemplate(
            n_servers=args.hops, deadline=args.deadline,
            sigma=args.sigma, rho=args.rho, paths=args.paths,
            tandems=args.tandems)
        try:
            workload = make_workload(
                args.workload, args.seed, args.rate,
                template=template, hold_s=args.hold_s)
        except LoadGenError as exc:
            raise SystemExit(f"loadtest: {exc}") from None

        closed = args.closed_loop is not None
        if args.workers < 1:
            raise SystemExit("loadtest: --workers must be >= 1")
        if args.workers > 1 and not closed:
            raise SystemExit("loadtest: --workers requires "
                             "--closed-loop (the open-loop schedule "
                             "is defined per event)")
        if closed:
            n = (args.requests if args.requests is not None
                 else max(1, int(args.rate * args.duration)))
            schedule = workload.requests(n)
            n_events = len(schedule)
        else:
            schedule = workload.schedule(args.duration)
            n_events = len(schedule)

        chaos = None
        if args.chaos or args.chaos_at:
            kill_at = args.chaos_at or [max(1, n_events // 2)]

            def recover() -> AdmissionService:
                return recover_service(
                    journal_dir, verify=args.chaos_verify, ctx=ctx,
                    analysis_budget=args.budget,
                    incremental=incremental,
                    shed_latency_s=args.shed_latency)

            chaos = ChaosPlan(kill_at=kill_at, recover=recover)

        driver_desc = {
            "mode": "closed" if closed else "open",
            "hops": args.hops,
            "tandems": args.tandems,
            "analyzer": args.analyzer,
            "incremental": incremental,
            "pace": bool(args.pace),
            "duration_s": args.duration,
            "rate": args.rate,
            "clients": args.closed_loop or 0,
            "workers": args.workers,
            "chaos_at": list(chaos.kill_at) if chaos else [],
        }

        writer = None
        if args.record:
            writer = TraceWriter(args.record,
                                 include_latency=args.record_latency)
            writer.write_header(workload=workload.describe(),
                                driver=driver_desc)
            if args.shed_latency is not None and not args.record_latency:
                print("note: --shed-latency makes decisions timing-"
                      "dependent; the recorded trace may not be "
                      "byte-stable", file=sys.stderr)

        service = build_service(args.hops, args.analyzer, args.tandems)
        try:
            if closed:
                result = run_closed_loop(
                    service, schedule, clients=args.closed_loop,
                    workers=args.workers, writer=writer, chaos=chaos)
            else:
                result = run_open_loop(
                    service, schedule, duration_s=args.duration,
                    offered_rate=args.rate, pace=args.pace,
                    writer=writer, chaos=chaos)
        except (JournalError, RecoveryError, ServiceError) as exc:
            raise SystemExit(f"loadtest: {exc}") from None
        finally:
            if writer is not None:
                writer.close()
        result.service.close()

        report = summarize(result, metrics=ctx.metrics,
                           workload=workload.describe())
        print(report.render())
        if args.record:
            print(f"wrote trace {args.record} "
                  f"({writer.events} event(s))")

        slo_result = slo.evaluate(report) if slo is not None else None
        if slo_result is not None:
            print(slo_result.render())

        if args.out:
            payload = {
                "benchmark": "loadtest",
                "driver": driver_desc,
                "report": report.as_dict(),
                "slo": (None if slo is None else {
                    "spec": args.slo, **slo_result.as_dict()}),
            }
            atomic_write_text(
                args.out,
                _json.dumps(payload, indent=2, sort_keys=True) + "\n")
            print(f"wrote {args.out}")

        if result.chaos_lost:
            print(f"CHAOS FAILURE: lost committed admission(s): "
                  f"{list(result.chaos_lost)}", file=sys.stderr)
            return 1
        return 0 if slo_result is None or slo_result.ok else 1
    finally:
        if tmp_journal:
            shutil.rmtree(journal_dir, ignore_errors=True)


def _cmd_recover(args) -> int:
    from repro.errors import JournalError, RecoveryError
    from repro.service import recover_state, verify_recovery

    try:
        state = recover_state(args.journal)
    except (JournalError, RecoveryError) as exc:
        raise SystemExit(f"recover: {exc}") from None
    print(f"recovered {args.journal}: {len(state.admitted)} admitted "
          f"connection(s), last seq {state.last_seq} "
          f"(snapshot seq {state.snapshot_seq}, "
          f"{state.replayed} replayed, {state.skipped} idempotent "
          f"skip(s), {state.corrupt_lines} corrupt line(s), "
          f"kernel {state.kernel or 'unrecorded'})")
    for name in state.admitted:
        print(f"  {name}")
    if args.no_verify:
        return 0
    store = _open_store(args.store)
    try:
        report = verify_recovery(args.journal, kernel=args.kernel,
                                 store=store)
    except RecoveryError as exc:
        raise SystemExit(f"recover: {exc}") from None
    finally:
        if store is not None:
            store.close()
    print(report.render())
    if args.show_bounds and report.final_bounds:
        for name, bound in sorted(report.final_bounds.items()):
            print(f"  {name}: {bound:.6f}")
    return 0 if report.ok else 1


def _cmd_store(args) -> int:
    read_only = args.action in ("inspect", "verify")
    store = _open_store(args.path, read_only=read_only)
    assert store is not None  # path is a required positional
    try:
        if args.action == "inspect":
            info = store.describe()
            cap = info["max_bytes"]
            print(f"store: {info['path']}")
            print(f"  format:   v{info['format']} ({info['schema']})")
            print(f"  entries:  {info['entries']}")
            print(f"  live:     {info['live_bytes']} payload byte(s)"
                  + (f" (cap {cap})" if cap is not None else ""))
            print(f"  on disk:  {info['disk_bytes']} byte(s) in "
                  f"{info['segments']} segment(s)")
            stats = info["stats"]
            print(f"  scan:     {stats['corrupt']} corrupt frame(s) "
                  f"dropped at open")
            return 0
        if args.action == "compact":
            report = store.compact(max_bytes=args.max_bytes)
            print(report.render())
            return 0
        report = store.verify()
        print(report.render())
        return 0 if report.ok else 1
    finally:
        store.close()


def _cmd_validate(args) -> int:
    from repro.context import AnalysisContext, Deadline, MetricsRegistry
    from repro.context.tracing import Tracer
    from repro.validate import load_case, replay, run_validation

    deadline = (Deadline(args.budget, "validation run")
                if args.budget else None)
    ctx = AnalysisContext(deadline=deadline,
                          metrics=MetricsRegistry(),
                          tracer=Tracer() if args.trace else None)

    if args.replay:
        case = load_case(args.replay)
        violations = replay(case, ctx=ctx)
        print(f"replayed {args.replay} "
              f"(oracle={case.oracle}, seed={case.seed})")
        for v in violations:
            print(f"  VIOLATION flow={v.flow}: {v.detail}")
        print("still reproduces" if violations
              else "no longer reproduces")
        if args.trace:
            path = ctx.write_trace(args.trace, command="validate",
                                   replay=args.replay)
            print(f"wrote trace {path}")
        return 1 if violations else 0

    report = run_validation(
        args.seeds, quick=args.quick, horizon=args.horizon,
        packet_size=args.packet, out_dir=args.out,
        shrink=not args.no_shrink, ctx=ctx)
    print(report.render())
    if args.out and report.cases:
        print(f"wrote {len(report.cases)} repro case(s) to {args.out}")
    if args.trace:
        path = ctx.write_trace(args.trace, command="validate",
                               seeds=len(report.seeds),
                               violations=len(report.cases))
        print(f"wrote trace {path}")
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "kernel", None) is not None:
        # Exported (not thread-local) so sweep worker processes and the
        # admission service's analyzers inherit the same selection.
        import os

        os.environ[KERNEL_ENV_VAR] = args.kernel
    handlers = {
        "analyze": _cmd_analyze,
        "figures": _cmd_figures,
        "simulate": _cmd_simulate,
        "admit": _cmd_admit,
        "export": _cmd_export,
        "chart": _cmd_chart,
        "report": _cmd_report,
        "resilience": _cmd_resilience,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "recover": _cmd_recover,
        "loadtest": _cmd_loadtest,
        "store": _cmd_store,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
