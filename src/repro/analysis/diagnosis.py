"""Diagnosis and provisioning tools on top of the analyses.

Admission control answers yes/no; operators also want to know *why* a
bound is what it is and *how much* headroom remains:

* :func:`bottlenecks` — rank the elements of a flow's path by their
  contribution to its end-to-end bound;
* :func:`deadline_slack` — per-flow margin between bound and deadline;
* :func:`max_admissible_rate` — the largest sustained rate a new
  connection can carry on a path while every deadline (its own and the
  existing flows') stays certified, found by bisection — the
  delay-bound analogue of available-bandwidth estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.analysis.base import Analyzer
from repro.curves.token_bucket import TokenBucket
from repro.errors import AnalysisError, InstabilityError
from repro.network.flow import Flow
from repro.network.topology import Network

__all__ = [
    "Bottleneck",
    "bottlenecks",
    "deadline_slack",
    "max_admissible_rate",
]


@dataclass(frozen=True)
class Bottleneck:
    """One path element's share of a flow's end-to-end bound."""

    element: object
    delay: float
    share: float


def bottlenecks(analyzer: Analyzer, network: Network,
                flow_name: str) -> list[Bottleneck]:
    """Path elements of *flow_name*, ranked by delay contribution.

    Only meaningful for analyses that report per-element contributions
    (decomposed, integrated, feedback); raises for single-contribution
    reports (service curve).
    """
    report = analyzer.analyze(network)
    fd = report.delays[flow_name]
    if not fd.contributions or (
            len(fd.contributions) == 1
            and fd.contributions[0][0] == tuple(
                network.flow(flow_name).path)
            and network.flow(flow_name).n_hops > 1
            and analyzer.name == "service_curve"):
        raise AnalysisError(
            f"analyzer {analyzer.name!r} does not decompose the bound "
            "into per-element contributions")
    total = fd.total if fd.total > 0 else 1.0
    ranked = sorted(fd.contributions, key=lambda p: -p[1])
    return [Bottleneck(element=e, delay=d, share=d / total)
            for e, d in ranked]


def deadline_slack(analyzer: Analyzer,
                   network: Network) -> dict[str, float]:
    """Per-flow margin ``deadline - bound`` (inf for best-effort flows).

    Negative slack identifies flows whose deadlines this analysis cannot
    certify.
    """
    report = analyzer.analyze(network)
    out = {}
    for flow in network.iter_flows():
        if math.isinf(flow.deadline):
            out[flow.name] = math.inf
        else:
            out[flow.name] = flow.deadline - report.delay_of(flow.name)
    return out


def max_admissible_rate(analyzer: Analyzer, network: Network,
                        path: Sequence[Hashable], deadline: float,
                        sigma: float = 1.0,
                        peak: float | None = None,
                        tolerance: float = 1e-4,
                        max_iterations: int = 60) -> float:
    """Largest sustained rate for a new connection on *path*.

    Bisects on rho such that, with the connection
    ``TokenBucket(sigma, rho, peak)`` added, every flow (existing and
    new) meets its deadline under *analyzer*.  Returns 0.0 when even an
    infinitesimal-rate connection cannot be certified.
    """
    if not (deadline > 0 and math.isfinite(deadline)):
        raise AnalysisError(f"deadline must be finite > 0, got {deadline}")

    caps = [network.server(sid).capacity for sid in path]
    if not caps:
        raise AnalysisError("path must be non-empty")
    # headroom at the tightest server on the path bounds the search
    hi = min(c - sum(f.bucket.rho for f in network.flows_at(sid))
             for sid, c in zip(path, caps))
    if hi <= 0:
        return 0.0

    def feasible(rho: float) -> bool:
        pk = peak if peak is not None else min(caps)
        flow = Flow("__probe__", TokenBucket(sigma, rho, peak=pk),
                    tuple(path), deadline=deadline)
        try:
            candidate = network.with_flow(flow)
            candidate.check_stability()
            report = analyzer.analyze(candidate)
        except InstabilityError:
            return False
        return all(report.delay_of(f.name) <= f.deadline
                   for f in candidate.flows.values())

    lo = 0.0
    eps = min(tolerance, hi / 4)
    if not feasible(eps):
        return 0.0
    lo = eps
    hi_try = hi * (1 - 1e-9)
    if feasible(hi_try):
        return hi_try
    hi = hi_try
    for _ in range(max_iterations):
        mid = (lo + hi) / 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance:
            break
    return lo
