"""Algorithm Service Curve (paper §1.2 and §4.2): induced FIFO curves.

Servers are assigned their scheduling discipline first (FIFO here); a
per-node service curve for each connection is then *induced* from the
discipline, the per-node curves are min-plus convolved into a network
service curve (paper eq. (2)), and the end-to-end delay bound follows as
the horizontal deviation from the source constraint (paper eq. (1)).

For a FIFO server the only cross-traffic-agnostic guarantee a connection
holds is the *leftover* curve

``beta_j(t) = [C_j t - alpha_cross,j(t)]^+``

where ``alpha_cross,j`` bounds all other traffic at the server.  This is
the most optimistic curve any induced-service-curve argument may use
(paper §4.2 frames its closed form as a *lower* bound on the delay such
a method can produce — the same caveat applies here: numbers from this
analyzer are best-case for the baseline).  Cross traffic at interior
servers is characterized with the same Cruz propagation the decomposed
method uses.

For guaranteed-rate servers the induced curve is the rate-latency curve,
for which this method is known to be effective — included so the
library can also demonstrate the regime where service curves *work*.
"""

from __future__ import annotations

import math

from repro.analysis.base import Analyzer, DelayReport, FlowDelay
from repro.analysis.propagation import PropagationResult, propagate
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.curves.operations import convolve_all, hdev
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.network.topology import Discipline, Network
from repro.servers.guaranteed_rate import wfq_service_curve

__all__ = ["ServiceCurveAnalysis", "induced_fifo_service_curve"]


def induced_fifo_service_curve(capacity: float,
                               cross: PiecewiseLinearCurve,
                               ) -> PiecewiseLinearCurve | None:
    """The leftover service curve ``[C t - alpha_cross(t)]^+``.

    Returns None when the cross-traffic rate reaches the capacity — no
    nondecreasing leftover curve exists then and the method yields an
    infinite bound.
    """
    if cross.long_term_rate() >= capacity:
        return None
    line = PiecewiseLinearCurve.line(capacity)
    return (line - cross).positive_part().simplified()


class ServiceCurveAnalysis(Analyzer):
    """End-to-end bounds via induced per-node service curves.

    Parameters
    ----------
    capped_propagation:
        Whether the Cruz propagation used to characterize interior cross
        traffic applies the line-rate cap.  Default False, mirroring the
        plain decomposed baseline the paper pairs this method with.
    """

    name = "service_curve"

    def __init__(self, capped_propagation: bool = False) -> None:
        self.capped_propagation = bool(capped_propagation)

    # ------------------------------------------------------------------

    def _node_curve(self, network: Network, sid, flow_name: str,
                    prop: PropagationResult) -> PiecewiseLinearCurve | None:
        spec = network.server(sid)
        if spec.discipline == Discipline.GUARANTEED_RATE:
            flow = network.flow(flow_name)
            return wfq_service_curve(flow.bucket.rho, spec.capacity)
        # FIFO (and, conservatively, static priority at the lowest level):
        cross = PiecewiseLinearCurve.zero()
        for g in network.flows_at(sid):
            if g.name != flow_name:
                cross = cross + prop.curve_at[(g.name, sid)]
        return induced_fifo_service_curve(spec.capacity, cross.simplified())

    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        with ctx.analysis_scope(self.name):
            return self._analyze(network, ctx)

    def _analyze(self, network: Network, ctx: AnalysisContext) -> DelayReport:
        prop = propagate(network, capped=self.capped_propagation, ctx=ctx)
        delays = {}
        net_curves = {}
        for f in network.iter_flows():
            ctx.checkpoint("service-curve convolution")
            betas = []
            dead = False
            for sid in f.path:
                beta = self._node_curve(network, sid, f.name, prop)
                if beta is None:
                    dead = True
                    break
                betas.append(beta)
            if dead:
                total = math.inf
            else:
                beta_net = convolve_all(betas)
                net_curves[f.name] = beta_net
                source = f.bucket.constraint_curve()
                total = hdev(source, beta_net)
            delays[f.name] = FlowDelay(
                flow=f.name,
                total=total,
                contributions=((tuple(f.path), total),),
            )
        meta = {
            "capped_propagation": self.capped_propagation,
            "network_service_curves": net_curves,
        }
        return DelayReport(algorithm=self.name, delays=delays, meta=meta)
