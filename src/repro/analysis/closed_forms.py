"""Closed-form delay formulas for the paper's tandem network (§4.2).

The paper's technical report [25] derives closed forms for the
worst-case delay of Connection 0 in the Figure-3 tandem under Algorithm
Decomposed (the per-server terms ``E_k``) and a closed-form *lower*
bound for Algorithm Service Curve (``D_SC``).  The ICPP scan of those
formulas is partially corrupted, so the formulas below are re-derived
from first principles for the same topology and conventions (unit
capacity, sources ``b(I) = min(I, sigma + rho I)``, ``rho = U/4``):

**Decomposed.**  With ``t* = sigma / (1 - rho)`` (the knee of a fresh
source's constraint curve), and ``P_k = E_1 + ... + E_k``:

* ``E_1 = 2 sigma / (1 - rho)``  — matches the paper's legible ``E_1``
  exactly;
* ``E_k = sigma0_k + sigmal_k + (1 + 2 rho) t*`` for ``k >= 2``, where
  ``sigma0_k = sigma + rho P_{k-1}`` (Connection 0's inflated burst) and
  ``sigmal_k = sigma + rho E_{k-1}`` (the overlapping long cross
  connection's inflated burst);
* ``D_D = sum_k E_k``.

**Service curve.**  Each server's induced FIFO curve is rate-latency:
rate ``1 - 2 rho`` with latency ``T_1 = 2 sigma/(1 - 2 rho)`` at the
first server (two fresh cross connections), rate ``1 - 3 rho`` with
latency ``T_k = (sigmal_k + 2 sigma)/(1 - 3 rho)`` at interior servers
(three cross connections, one burst-inflated).  Convolution keeps the
minimum rate and sums latencies, giving

``D_SC = sum_k T_k + 3 rho sigma / ((1 - rho)(1 - 3 rho))``

for ``n >= 2`` — the same ``(1-2rho)`` / ``(1-rho)(1-3rho)`` structure
as the paper's (corrupted) display.  Tests cross-check both formulas
against the general engines to machine precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.tandem import tandem_rho

__all__ = [
    "TandemClosedForms",
    "decomposed_local_delays",
    "decomposed_delay",
    "service_curve_delay",
]


@dataclass(frozen=True)
class TandemClosedForms:
    """Closed-form results for one (n, U, sigma) tandem configuration."""

    n_hops: int
    utilization: float
    sigma: float
    local_delays: tuple[float, ...]
    decomposed: float
    service_curve: float


def _validate(n_hops: int, utilization: float, sigma: float) -> float:
    if n_hops < 1:
        raise ValueError(f"n_hops must be >= 1, got {n_hops}")
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    return tandem_rho(utilization)


def decomposed_local_delays(n_hops: int, utilization: float,
                            sigma: float = 1.0) -> tuple[float, ...]:
    """The per-server bounds ``E_1 .. E_n`` of Algorithm Decomposed."""
    rho = _validate(n_hops, utilization, sigma)
    t_star = sigma / (1.0 - rho)
    delays: list[float] = []
    cumulative = 0.0
    for k in range(1, n_hops + 1):
        if k == 1:
            e_k = 2.0 * sigma / (1.0 - rho)
        else:
            sigma0 = sigma + rho * cumulative          # Connection 0
            sigmal = sigma + rho * delays[-1]          # long_{k-1}
            e_k = sigma0 + sigmal + (1.0 + 2.0 * rho) * t_star
        delays.append(e_k)
        cumulative += e_k
    return tuple(delays)


def decomposed_delay(n_hops: int, utilization: float,
                     sigma: float = 1.0) -> float:
    """Connection 0's end-to-end bound under Algorithm Decomposed."""
    return float(sum(decomposed_local_delays(n_hops, utilization, sigma)))


def service_curve_delay(n_hops: int, utilization: float,
                        sigma: float = 1.0) -> float:
    """Connection 0's bound under Algorithm Service Curve.

    Returns ``inf`` when an induced curve's rate hits zero
    (``3 rho >= 1``, i.e. ``U >= 4/3`` — never inside the paper's sweep).
    """
    rho = _validate(n_hops, utilization, sigma)
    t_star = sigma / (1.0 - rho)

    if n_hops == 1:
        # single server, two fresh cross connections
        r = 1.0 - 2.0 * rho
        if r <= rho:
            return math.inf
        t1 = 2.0 * sigma / r
        return t1 + t_star * (1.0 - r) / r

    r_interior = 1.0 - 3.0 * rho
    if r_interior <= rho:
        return math.inf
    e_local = decomposed_local_delays(n_hops, utilization, sigma)

    latency = 2.0 * sigma / (1.0 - 2.0 * rho)  # T_1
    for k in range(2, n_hops + 1):
        sigmal = sigma + rho * e_local[k - 2]   # long_{k-1} inflated
        latency += (sigmal + 2.0 * sigma) / r_interior
    # residual term: hdev of the peak-limited source against the
    # network rate min_k R_k = 1 - 3 rho
    residual = t_star * (1.0 - r_interior) / r_interior
    return latency + residual


def tandem_closed_forms(n_hops: int, utilization: float,
                        sigma: float = 1.0) -> TandemClosedForms:
    """All closed forms for one tandem configuration."""
    local = decomposed_local_delays(n_hops, utilization, sigma)
    return TandemClosedForms(
        n_hops=n_hops,
        utilization=utilization,
        sigma=sigma,
        local_delays=local,
        decomposed=float(sum(local)),
        service_curve=service_curve_delay(n_hops, utilization, sigma),
    )
