"""Hop-by-hop traffic propagation shared by the analyses.

Both decomposition-style algorithms (plain Cruz and the line-rate-capped
variant used inside Algorithm Integrated) and the service-curve baseline
need per-flow constraint curves *at every server's input*.  This module
implements the single topological sweep that produces them, together
with the per-server local analyses.

The per-server step is factored into a standalone pure function,
:func:`server_step`: it consumes a :class:`ServerInput` (capacity,
discipline, the flows present with their exact input curves) and
produces a :class:`ServerStep` (the local analysis plus each flow's
output curve).  Because the step depends on nothing but its input
value, the incremental engine (:mod:`repro.engine`) can memoize it
content-addressed and replay cached steps with bit-identical results:
:func:`propagate` routes every step through
:meth:`repro.context.AnalysisContext.run_server_step`, whose optional
step interceptor is exactly that memoizing wrapper (and which also
carries the cooperative deadline and per-step tracing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.context import NULL_CONTEXT, AnalysisContext
from repro.curves.kernels import current_kernel, use_kernel
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import AnalysisError
from repro.network.topology import Discipline, Network
from repro.servers.base import LocalAnalysis
from repro.servers.fifo import (
    capped_output_curve,
    cruz_output_curve,
    fifo_local_analysis,
)
from repro.servers.guaranteed_rate import gr_local_analysis
from repro.servers.static_priority import sp_local_analysis

__all__ = [
    "PropagationResult",
    "FlowAtServer",
    "ServerInput",
    "ServerStep",
    "server_step",
    "propagate",
    "analyze_server",
]

ServerId = Hashable


@dataclass(frozen=True)
class FlowAtServer:
    """One flow as seen by a single server's local analysis.

    Attributes
    ----------
    name:
        Flow name (keys the per-flow delay results).
    curve:
        Exact constraint curve of the flow at this server's input.
    has_next:
        Whether the flow continues to another server (output curve
        needed) or exits the network here.
    priority:
        Priority level (static-priority servers only).
    rho:
        Sustained source rate (guaranteed-rate servers reserve it).
    """

    name: str
    curve: PiecewiseLinearCurve
    has_next: bool
    priority: int
    rho: float


@dataclass(frozen=True)
class ServerInput:
    """Everything that determines one server's local analysis step.

    ``kernel`` is the curve kernel the step runs under (captured at
    build time from the thread's active selection): it is part of the
    step's mathematical input — the grid backend's padded bounds differ
    from the exact ones — so it participates in the incremental
    engine's content keys and exact/grid results never alias.
    """

    capacity: float
    discipline: str
    capped: bool
    flows: tuple[FlowAtServer, ...]
    kernel: str = "exact"


@dataclass(frozen=True)
class ServerStep:
    """Output of one per-server analysis step.

    Attributes
    ----------
    local:
        The server's :class:`LocalAnalysis` (delays/backlog/busy period).
    out_curves:
        ``(flow name, curve)`` pairs for every flow with a next hop —
        the constraint curve entering that next hop, already simplified.
    """

    local: LocalAnalysis
    out_curves: tuple[tuple[str, PiecewiseLinearCurve], ...]


def _local_analysis(capacity: float, discipline: str,
                    curves: Mapping[str, PiecewiseLinearCurve],
                    priorities: Mapping[str, int],
                    rates: Mapping[str, float]) -> LocalAnalysis:
    """Dispatch the local analysis on the discipline."""
    if discipline == Discipline.FIFO:
        return fifo_local_analysis(curves, capacity)
    if discipline == Discipline.STATIC_PRIORITY:
        return sp_local_analysis(curves, dict(priorities), capacity)
    if discipline == Discipline.GUARANTEED_RATE:
        # Reserve exactly the sustained rate of each flow — the minimal
        # allocation that keeps the per-flow bound finite.
        if any(r <= 0 for r in rates.values()):
            raise AnalysisError(
                "guaranteed-rate servers need every flow rate > 0")
        return gr_local_analysis(curves, dict(rates), capacity)
    raise AnalysisError(
        f"no local analysis for discipline {discipline!r}")


def server_step(si: ServerInput) -> ServerStep:
    """The per-server analysis step as a pure function of its input.

    Computes the local analysis and, for every flow that continues,
    its output constraint curve (Cruz's ``b(I + d)``, optionally
    intersected with the line rate when ``si.capped``).  Deterministic:
    identical inputs produce bit-identical outputs — the step activates
    ``si.kernel`` itself, so a replayed step does not depend on the
    caller's ambient kernel.
    """
    with use_kernel(si.kernel):
        curves = {fa.name: fa.curve for fa in si.flows}
        la = _local_analysis(
            si.capacity, si.discipline, curves,
            {fa.name: fa.priority for fa in si.flows},
            {fa.name: fa.rho for fa in si.flows})
        outs: list[tuple[str, PiecewiseLinearCurve]] = []
        for fa in si.flows:
            if not fa.has_next:
                continue
            d = la.delay_by_flow[fa.name]
            if si.capped:
                out = capped_output_curve(fa.curve, d, si.capacity)
            else:
                out = cruz_output_curve(fa.curve, d)
            outs.append((fa.name, out.simplified()))
    return ServerStep(local=la, out_curves=tuple(outs))


def build_server_input(network: Network, sid: ServerId,
                       curve_at: Mapping[tuple[str, ServerId],
                                         PiecewiseLinearCurve],
                       capped: bool) -> ServerInput:
    """Assemble the :class:`ServerInput` for one server of a sweep."""
    spec = network.server(sid)
    flows = tuple(
        FlowAtServer(
            name=f.name,
            curve=curve_at[(f.name, sid)],
            has_next=f.next_hop(sid) is not None,
            priority=f.priority,
            rho=f.bucket.rho,
        )
        for f in network.flows_at(sid))
    return ServerInput(capacity=spec.capacity,
                       discipline=spec.discipline,
                       capped=capped, flows=flows,
                       kernel=current_kernel())


@dataclass(frozen=True)
class PropagationResult:
    """Output of one network-wide topological propagation sweep.

    Attributes
    ----------
    local:
        Per-server :class:`LocalAnalysis` (delay/backlog/busy period).
    curve_at:
        Constraint curve of each flow at each server it traverses,
        keyed by ``(flow_name, server_id)``.
    capped:
        Whether line-rate capping was applied to output curves.
    """

    local: Mapping[ServerId, LocalAnalysis]
    curve_at: Mapping[tuple[str, ServerId], PiecewiseLinearCurve]
    capped: bool

    def flow_delay_at(self, flow_name: str, server_id: ServerId) -> float:
        """Local delay bound of one flow at one server."""
        return self.local[server_id].delay_by_flow[flow_name]


def analyze_server(network: Network, server_id: ServerId,
                   curves: Mapping[str, PiecewiseLinearCurve],
                   ) -> LocalAnalysis:
    """Dispatch the local analysis on the server's discipline.

    Thin wrapper around the discipline dispatch kept for callers that
    analyze one server outside a sweep (diagnostics, tests).
    """
    spec = network.server(server_id)
    flows_here = network.flows_at(server_id)
    return _local_analysis(
        spec.capacity, spec.discipline, curves,
        {f.name: f.priority for f in flows_here},
        {f.name: f.bucket.rho for f in flows_here})


def propagate(network: Network, capped: bool = False,
              ctx: AnalysisContext = NULL_CONTEXT) -> PropagationResult:
    """Run the decomposition-style topological sweep over *network*.

    At each server (in topological order of the server graph) the local
    delay bound is computed from the currently known per-flow input
    curves, and each flow's curve for its next hop is derived via Cruz's
    output characterization — optionally intersected with the upstream
    server's line rate when ``capped`` is True (the integrated method's
    self-regulation cap; plain Algorithm Decomposed uses ``False``).

    Parameters
    ----------
    ctx:
        Execution context.  Each step runs through
        :meth:`~repro.context.AnalysisContext.run_server_step` with
        :func:`server_step` as the pure compute, so the context's
        cooperative deadline is checked at every server boundary, each
        step gets a span, and an installed step interceptor (the
        incremental engine's memoizer) transparently replaces the
        computation.
    """
    network.check_stability()

    curve_at: dict[tuple[str, ServerId], PiecewiseLinearCurve] = {}
    for f in network.iter_flows():
        curve_at[(f.name, f.path[0])] = f.bucket.constraint_curve()

    local: dict[ServerId, LocalAnalysis] = {}
    for sid in network.topological_servers():
        if not network.flows_at(sid):
            continue
        si = build_server_input(network, sid, curve_at, capped)
        res = ctx.run_server_step(sid, si, server_step)
        local[sid] = res.local
        for name, out in res.out_curves:
            nxt = network.flow(name).next_hop(sid)
            curve_at[(name, nxt)] = out

    return PropagationResult(local=local, curve_at=curve_at, capped=capped)
