"""Hop-by-hop traffic propagation shared by the analyses.

Both decomposition-style algorithms (plain Cruz and the line-rate-capped
variant used inside Algorithm Integrated) and the service-curve baseline
need per-flow constraint curves *at every server's input*.  This module
implements the single topological sweep that produces them, together
with the per-server local analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import AnalysisError
from repro.network.topology import Discipline, Network
from repro.servers.base import LocalAnalysis
from repro.servers.fifo import (
    capped_output_curve,
    cruz_output_curve,
    fifo_local_analysis,
)
from repro.servers.guaranteed_rate import gr_local_analysis
from repro.servers.static_priority import sp_local_analysis

__all__ = ["PropagationResult", "propagate", "analyze_server"]

ServerId = Hashable


@dataclass(frozen=True)
class PropagationResult:
    """Output of one network-wide topological propagation sweep.

    Attributes
    ----------
    local:
        Per-server :class:`LocalAnalysis` (delay/backlog/busy period).
    curve_at:
        Constraint curve of each flow at each server it traverses,
        keyed by ``(flow_name, server_id)``.
    capped:
        Whether line-rate capping was applied to output curves.
    """

    local: Mapping[ServerId, LocalAnalysis]
    curve_at: Mapping[tuple[str, ServerId], PiecewiseLinearCurve]
    capped: bool

    def flow_delay_at(self, flow_name: str, server_id: ServerId) -> float:
        """Local delay bound of one flow at one server."""
        return self.local[server_id].delay_by_flow[flow_name]


def analyze_server(network: Network, server_id: ServerId,
                    curves: Mapping[str, PiecewiseLinearCurve],
                    ) -> LocalAnalysis:
    """Dispatch the local analysis on the server's discipline."""
    spec = network.server(server_id)
    if spec.discipline == Discipline.FIFO:
        return fifo_local_analysis(curves, spec.capacity)
    if spec.discipline == Discipline.STATIC_PRIORITY:
        priorities = {f.name: f.priority
                      for f in network.flows_at(server_id)}
        return sp_local_analysis(curves, priorities, spec.capacity)
    if spec.discipline == Discipline.GUARANTEED_RATE:
        # Reserve exactly the sustained rate of each flow — the minimal
        # allocation that keeps the per-flow bound finite.
        rates = {f.name: f.bucket.rho for f in network.flows_at(server_id)}
        if any(r <= 0 for r in rates.values()):
            raise AnalysisError(
                "guaranteed-rate servers need every flow rate > 0")
        return gr_local_analysis(curves, rates, spec.capacity)
    raise AnalysisError(
        f"no local analysis for discipline {spec.discipline!r}")


def propagate(network: Network, capped: bool = False) -> PropagationResult:
    """Run the decomposition-style topological sweep over *network*.

    At each server (in topological order of the server graph) the local
    delay bound is computed from the currently known per-flow input
    curves, and each flow's curve for its next hop is derived via Cruz's
    output characterization — optionally intersected with the upstream
    server's line rate when ``capped`` is True (the integrated method's
    self-regulation cap; plain Algorithm Decomposed uses ``False``).
    """
    network.check_stability()

    curve_at: dict[tuple[str, ServerId], PiecewiseLinearCurve] = {}
    for f in network.iter_flows():
        curve_at[(f.name, f.path[0])] = f.bucket.constraint_curve()

    local: dict[ServerId, LocalAnalysis] = {}
    for sid in network.topological_servers():
        flows_here = network.flows_at(sid)
        if not flows_here:
            continue
        curves = {f.name: curve_at[(f.name, sid)] for f in flows_here}
        la = analyze_server(network, sid, curves)
        local[sid] = la
        capacity = network.server(sid).capacity
        for f in flows_here:
            nxt = f.next_hop(sid)
            if nxt is None:
                continue
            d = la.delay_by_flow[f.name]
            if capped:
                out = capped_output_curve(curves[f.name], d, capacity)
            else:
                out = cruz_output_curve(curves[f.name], d)
            curve_at[(f.name, nxt)] = out.simplified()

    return PropagationResult(local=local, curve_at=curve_at, capped=capped)
