"""Algorithm Decomposed (paper §1.1 and §4.2, after Cruz [8, 9]).

The network is decomposed into isolated servers.  Per-connection traffic
is characterized at every server (source constraint at the entry hop,
Cruz's ``b(I + d)`` inflation afterwards), local worst-case delays are
computed independently, and the end-to-end bound is the sum of the local
bounds along the path — the classical, simple, conservative method the
integrated approach is measured against.
"""

from __future__ import annotations

from repro.analysis.base import Analyzer, DelayReport, FlowDelay
from repro.analysis.propagation import propagate
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.network.topology import Network

__all__ = ["DecomposedAnalysis"]


class DecomposedAnalysis(Analyzer):
    """End-to-end bounds by summing per-server worst-case delays.

    Parameters
    ----------
    capped_propagation:
        When True, output curves are intersected with the upstream line
        rate (``min(C I, b(I+d))``).  Cruz's original method — and the
        paper's Algorithm Decomposed baseline — does not apply the cap,
        so the default is False.  The capped variant is exposed for the
        ABL2 ablation (it is the degenerate one-server-subsystem case of
        the integrated method).
    """

    name = "decomposed"

    def __init__(self, capped_propagation: bool = False) -> None:
        self.capped_propagation = bool(capped_propagation)

    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Analyze *network* under *ctx* (deadline checks and spans at
        every server step; the incremental engine installs its
        memoizing step interceptor on a derived context — see
        :func:`repro.analysis.propagation.propagate`)."""
        with ctx.analysis_scope(self.name):
            prop = propagate(network, capped=self.capped_propagation,
                             ctx=ctx)
        delays = {}
        for f in network.iter_flows():
            parts = tuple(
                (sid, prop.local[sid].delay_by_flow[f.name])
                for sid in f.path
            )
            delays[f.name] = FlowDelay(
                flow=f.name,
                total=sum(d for _, d in parts),
                contributions=parts,
            )
        meta = {
            "capped_propagation": self.capped_propagation,
            "local_delay": {
                sid: la.max_delay for sid, la in prop.local.items()
            },
            "busy_period": {
                sid: la.busy_period for sid, la in prop.local.items()
            },
        }
        return DelayReport(algorithm=self.name, delays=delays, meta=meta)
