"""End-to-end delay analyses (systems S8/S9/S13 in DESIGN.md).

Baselines:

* :class:`DecomposedAnalysis` — Algorithm Decomposed (Cruz);
* :class:`ServiceCurveAnalysis` — Algorithm Service Curve (induced);

plus the shared propagation engine, closed forms for the paper's tandem
and comparison utilities.  The contribution, Algorithm Integrated, lives
in :mod:`repro.core`.
"""

from repro.analysis.base import Analyzer, DelayReport, FlowDelay
from repro.analysis.comparison import (
    ComparisonRow,
    compare_analyzers,
    relative_improvement,
)
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.diagnosis import (
    Bottleneck,
    bottlenecks,
    deadline_slack,
    max_admissible_rate,
)
from repro.analysis.feedback import FeedbackAnalysis
from repro.analysis.propagation import PropagationResult, propagate
from repro.analysis.service_curve import (
    ServiceCurveAnalysis,
    induced_fifo_service_curve,
)

__all__ = [
    "Analyzer",
    "DelayReport",
    "FlowDelay",
    "DecomposedAnalysis",
    "FeedbackAnalysis",
    "Bottleneck",
    "bottlenecks",
    "deadline_slack",
    "max_admissible_rate",
    "ServiceCurveAnalysis",
    "induced_fifo_service_curve",
    "PropagationResult",
    "propagate",
    "relative_improvement",
    "ComparisonRow",
    "compare_analyzers",
]
