"""Fixed-point delay analysis for networks with feedback (cycles).

The paper restricts Algorithm Integrated to feed-forward networks and
points to the authors' stability work ([22, 23]) for general topologies:
"circular dependencies among connections introduce feedback effects on
local delays".  This module implements the classical resolution (Cruz
'91 part II ring analysis): treat the per-hop traffic characterization
as a monotone map and iterate it to a fixed point.

Starting from the optimistic state in which every flow carries its
*source* constraint at every hop, one sweep recomputes every server's
local delay from the current curves and every flow's next-hop curve
from its current curve.  The map is monotone (looser inputs produce
looser outputs), so the iterates increase toward the least fixed point
when one exists; if the cycle "gain" is too large the burstiness grows
without bound and no finite fixed point exists — the network may still
be stable in reality, but this analysis cannot certify it and reports
infinite bounds.

For feed-forward networks the iteration converges in (diameter) sweeps
to exactly the decomposition result, which the tests assert.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.analysis.base import Analyzer, DelayReport, FlowDelay
from repro.analysis.propagation import analyze_server
from repro.context import NULL_CONTEXT, AnalysisContext
from repro.curves.piecewise import PiecewiseLinearCurve
from repro.errors import AnalysisError
from repro.network.topology import Network
from repro.servers.fifo import capped_output_curve, cruz_output_curve

__all__ = ["FeedbackAnalysis"]

ServerId = Hashable


def _curve_distance(a: PiecewiseLinearCurve,
                    b: PiecewiseLinearCurve) -> float:
    """Sup-norm distance between two curves over their breakpoint span,
    plus the tail-slope gap (scaled by the span) so differences beyond
    the last breakpoint are not missed."""
    import numpy as np

    xs = np.union1d(a.x, b.x)
    gap = float(np.max(np.abs(a.sample(xs) - b.sample(xs))))
    span = max(1.0, float(xs[-1]))
    return gap + abs(a.final_slope - b.final_slope) * span


class FeedbackAnalysis(Analyzer):
    """Iterative (fixed-point) delay analysis for cyclic networks.

    Parameters
    ----------
    max_iterations:
        Sweep budget before declaring non-convergence.
    tolerance:
        Relative change in the largest local delay below which the
        iteration is considered converged.
    capped_propagation:
        Apply the line-rate cap to output curves (sound; tightens the
        fixed point and enlarges the certifiable stability region).
    """

    name = "feedback"

    def __init__(self, max_iterations: int = 100,
                 tolerance: float = 1e-9,
                 capped_propagation: bool = True) -> None:
        if max_iterations < 1:
            raise AnalysisError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise AnalysisError("tolerance must be > 0")
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.capped_propagation = bool(capped_propagation)

    # ------------------------------------------------------------------

    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        network.check_stability()
        with ctx.analysis_scope(self.name):
            return self._analyze(network, ctx)

    def _analyze(self, network: Network,
                 ctx: AnalysisContext) -> DelayReport:
        server_ids = sorted(network.servers, key=str)

        # state: per-(flow, server) input constraint curves, seeded with
        # the source constraint everywhere (the optimistic start)
        curve_at: dict[tuple[str, ServerId], PiecewiseLinearCurve] = {}
        for f in network.iter_flows():
            src = f.bucket.constraint_curve()
            for sid in f.path:
                curve_at[(f.name, sid)] = src

        local_delay: dict[ServerId, dict[str, float]] = {}
        converged = False
        iterations = 0
        prev_max = 0.0
        for iterations in range(1, self.max_iterations + 1):
            ctx.checkpoint("fixed-point sweep")
            # one Jacobi sweep: delays from current curves, then curves
            # from current curves (not the freshly updated ones — keeps
            # the map monotone and order-independent)
            new_curves: dict[tuple[str, ServerId],
                             PiecewiseLinearCurve] = {}
            for sid in server_ids:
                flows_here = network.flows_at(sid)
                if not flows_here:
                    local_delay[sid] = {}
                    continue
                curves = {f.name: curve_at[(f.name, sid)]
                          for f in flows_here}
                la = analyze_server(network, sid, curves)
                local_delay[sid] = dict(la.delay_by_flow)
                capacity = network.server(sid).capacity
                for f in flows_here:
                    nxt = f.next_hop(sid)
                    if nxt is None:
                        continue
                    d = la.delay_by_flow[f.name]
                    if self.capped_propagation:
                        out = capped_output_curve(curves[f.name], d,
                                                  capacity)
                    else:
                        out = cruz_output_curve(curves[f.name], d)
                    new_curves[(f.name, nxt)] = out.simplified()

            # merge: entry hops keep the source curve
            changed = 0.0
            for key, curve in new_curves.items():
                changed = max(changed,
                              _curve_distance(curve_at[key], curve))
                curve_at[key] = curve

            cur_max = max(
                (d for per in local_delay.values() for d in per.values()),
                default=0.0)
            if changed <= self.tolerance * max(1.0, cur_max):
                converged = True
                break
            if not math.isfinite(cur_max):
                break
            prev_max = cur_max

        delays = {}
        for f in network.iter_flows():
            if converged:
                parts = tuple((sid, local_delay[sid][f.name])
                              for sid in f.path)
                total = sum(d for _, d in parts)
            else:
                parts = ()
                total = math.inf
            delays[f.name] = FlowDelay(flow=f.name, total=total,
                                       contributions=parts)
        meta = {
            "converged": converged,
            "iterations": iterations,
            "capped_propagation": self.capped_propagation,
            "last_max_local_delay": prev_max,
        }
        return DelayReport(algorithm=self.name, delays=delays, meta=meta)
