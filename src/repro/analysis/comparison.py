"""Side-by-side comparison of analyses and the paper's metric.

The evaluation section quantifies algorithms with two measures: the
end-to-end delay bound ``D_X(U)`` of the longest connection, and the
*relative improvement*

``R_{X,Y}(U) = (D_X(U) - D_Y(U)) / D_X(U)``   (paper eq. (10))

— the fraction by which algorithm Y tightens algorithm X's bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.base import Analyzer, DelayReport
from repro.network.topology import Network

__all__ = ["relative_improvement", "ComparisonRow", "compare_analyzers"]


def relative_improvement(d_x: float, d_y: float) -> float:
    """``R_{X,Y} = (D_X - D_Y) / D_X`` (paper eq. (10)).

    Positive when Y is tighter than X; NaN when ``D_X`` is 0 or both
    bounds are infinite; 1.0 when only ``D_X`` is infinite.
    """
    if math.isinf(d_x) and math.isinf(d_y):
        return math.nan
    if math.isinf(d_x):
        return 1.0
    if d_x == 0:
        return math.nan
    return (d_x - d_y) / d_x


@dataclass(frozen=True)
class ComparisonRow:
    """Bounds of every analyzer for one flow, plus pairwise improvements."""

    flow: str
    bounds: Mapping[str, float]

    def improvement(self, x: str, y: str) -> float:
        """``R_{x,y}`` between two analyzer names present in bounds."""
        return relative_improvement(self.bounds[x], self.bounds[y])


def compare_analyzers(network: Network,
                      analyzers: Sequence[Analyzer],
                      flows: Sequence[str] | None = None,
                      ) -> list[ComparisonRow]:
    """Run every analyzer on *network* and tabulate per-flow bounds.

    Parameters
    ----------
    network:
        Network to analyze.
    analyzers:
        Analyzer instances; their ``name`` attributes key the result.
    flows:
        Restrict to these flow names (default: all flows).
    """
    reports: dict[str, DelayReport] = {
        a.name: a.analyze(network) for a in analyzers}
    names = flows if flows is not None else [
        f.name for f in network.iter_flows()]
    rows = []
    for fname in names:
        rows.append(ComparisonRow(
            flow=fname,
            bounds={an: rep.delay_of(fname)
                    for an, rep in reports.items()},
        ))
    return rows
