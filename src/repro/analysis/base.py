"""Analyzer framework: common interface and report types.

Every end-to-end delay algorithm (Decomposed, Service Curve, Integrated)
implements :class:`Analyzer` and returns a :class:`DelayReport`, so the
evaluation harness, admission controller and tests can treat them
uniformly and compute the paper's relative-improvement metric between
any pair.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from repro.network.topology import Network

__all__ = ["Analyzer", "DelayReport", "FlowDelay"]

ServerId = Hashable


@dataclass(frozen=True)
class FlowDelay:
    """End-to-end result for one flow.

    Attributes
    ----------
    flow:
        Flow name.
    total:
        End-to-end worst-case delay bound.
    contributions:
        Ordered ``(element, delay)`` pairs summing to *total*; *element*
        is a server id (decomposition) or a tuple of server ids (an
        integrated subsystem).  Service-curve analyses report a single
        contribution labelled with the whole path.
    """

    flow: str
    total: float
    contributions: tuple[tuple[object, float], ...] = ()

    def __post_init__(self) -> None:
        if self.contributions:
            s = sum(d for _, d in self.contributions)
            if math.isfinite(self.total) and abs(s - self.total) > 1e-6 * max(
                    1.0, abs(self.total)):
                raise ValueError(
                    f"contributions sum {s:g} != total {self.total:g} "
                    f"for flow {self.flow!r}")


@dataclass(frozen=True)
class DelayReport:
    """End-to-end delay bounds for every flow of a network.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name ("decomposed", …).
    delays:
        Per-flow :class:`FlowDelay`.
    meta:
        Algorithm-specific diagnostics (grid resolution, theta values,
        per-server local bounds, …).
    """

    algorithm: str
    delays: Mapping[str, FlowDelay]
    meta: Mapping[str, object] = field(default_factory=dict)

    def delay_of(self, flow_name: str) -> float:
        """End-to-end bound for *flow_name* (KeyError when unknown)."""
        return self.delays[flow_name].total

    def worst(self) -> FlowDelay:
        """The flow with the largest end-to-end bound."""
        if not self.delays:
            raise ValueError("report contains no flows")
        return max(self.delays.values(), key=lambda fd: fd.total)

    def all_finite(self) -> bool:
        """True when every flow received a finite bound."""
        return all(math.isfinite(fd.total) for fd in self.delays.values())

    def meets_deadlines(self, network: Network) -> bool:
        """True when every flow's bound is within its deadline."""
        return all(
            self.delay_of(f.name) <= f.deadline
            for f in network.flows.values()
        )


class Analyzer(abc.ABC):
    """Interface of all end-to-end delay analyses."""

    #: short machine name, overridden by subclasses
    name: str = "abstract"

    @abc.abstractmethod
    def analyze(self, network: Network) -> DelayReport:
        """Compute end-to-end worst-case delay bounds for every flow.

        Implementations must call ``network.check_stability()`` first and
        raise :class:`repro.errors.InstabilityError` on overload.
        """

    def delay_of(self, network: Network, flow_name: str) -> float:
        """Convenience: analyze and return one flow's bound."""
        return self.analyze(network).delay_of(flow_name)


def sum_contributions(
        parts: Sequence[tuple[object, float]]) -> float:
    """Total delay from ordered per-element contributions."""
    return float(sum(d for _, d in parts))
