"""Analyzer framework: common interface and report types.

Every end-to-end delay algorithm (Decomposed, Service Curve, Integrated)
implements :class:`Analyzer` and returns a :class:`DelayReport`, so the
evaluation harness, admission controller and tests can treat them
uniformly and compute the paper's relative-improvement metric between
any pair.
"""

from __future__ import annotations

import abc
import inspect
import math
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from repro.context import NULL_CONTEXT, AnalysisContext
from repro.network.topology import Network

__all__ = ["Analyzer", "DelayReport", "FlowDelay"]

ServerId = Hashable


@dataclass(frozen=True)
class FlowDelay:
    """End-to-end result for one flow.

    Attributes
    ----------
    flow:
        Flow name.
    total:
        End-to-end worst-case delay bound.
    contributions:
        Ordered ``(element, delay)`` pairs summing to *total*; *element*
        is a server id (decomposition) or a tuple of server ids (an
        integrated subsystem).  Service-curve analyses report a single
        contribution labelled with the whole path.
    """

    flow: str
    total: float
    contributions: tuple[tuple[object, float], ...] = ()

    def __post_init__(self) -> None:
        if self.contributions:
            s = sum(d for _, d in self.contributions)
            if math.isfinite(self.total) and abs(s - self.total) > 1e-6 * max(
                    1.0, abs(self.total)):
                raise ValueError(
                    f"contributions sum {s:g} != total {self.total:g} "
                    f"for flow {self.flow!r}")


@dataclass(frozen=True)
class DelayReport:
    """End-to-end delay bounds for every flow of a network.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name ("decomposed", …).
    delays:
        Per-flow :class:`FlowDelay`.
    meta:
        Algorithm-specific diagnostics (grid resolution, theta values,
        per-server local bounds, …).
    """

    algorithm: str
    delays: Mapping[str, FlowDelay]
    meta: Mapping[str, object] = field(default_factory=dict)

    def delay_of(self, flow_name: str) -> float:
        """End-to-end bound for *flow_name* (KeyError when unknown)."""
        return self.delays[flow_name].total

    def worst(self) -> FlowDelay:
        """The flow with the largest end-to-end bound."""
        if not self.delays:
            raise ValueError("report contains no flows")
        return max(self.delays.values(), key=lambda fd: fd.total)

    def all_finite(self) -> bool:
        """True when every flow received a finite bound."""
        return all(math.isfinite(fd.total) for fd in self.delays.values())

    def meets_deadlines(self, network: Network) -> bool:
        """True when every flow's bound is within its deadline."""
        return all(
            self.delay_of(f.name) <= f.deadline
            for f in network.flows.values()
        )


class Analyzer(abc.ABC):
    """Interface of all end-to-end delay analyses."""

    #: short machine name, overridden by subclasses
    name: str = "abstract"

    @abc.abstractmethod
    def analyze(self, network: Network, *,
                ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Compute end-to-end worst-case delay bounds for every flow.

        Implementations must call ``network.check_stability()`` first and
        raise :class:`repro.errors.InstabilityError` on overload.

        *ctx* is the :class:`~repro.context.AnalysisContext` execution
        layer (cooperative deadline, tracing, metrics).  Library
        analyzers accept and honor it; external subclasses that predate
        the context may omit the parameter — harness code dispatches
        through :meth:`run`, which degrades gracefully for them.
        """

    def run(self, network: Network,
            ctx: AnalysisContext = NULL_CONTEXT) -> DelayReport:
        """Analyze under *ctx*, tolerating ctx-unaware ``analyze``.

        Harness layers (admission, survivability, the engine's cold
        fallback) call this instead of ``analyze`` directly: subclasses
        whose ``analyze`` does not accept ``ctx`` still run — inside a
        span and behind a boundary deadline check.  Because such a
        subclass cannot checkpoint mid-analysis, any deadline on *ctx*
        is additionally armed as a ``SIGALRM`` backstop for it (no-op
        off the POSIX main thread); ctx-aware analyzers rely on
        cooperative checks and only get the signal when the caller
        opts in.
        """
        if _accepts_ctx(type(self)):
            return self.analyze(network, ctx=ctx)
        ctx.checkpoint(f"{self.name} analysis start")
        with ctx.span("analyze", algorithm=self.name, ctx_aware=False):
            dl = ctx.deadline
            if dl is None:
                return self.analyze(network)
            with dl.signal_backstop():
                return self.analyze(network)

    def delay_of(self, network: Network, flow_name: str) -> float:
        """Convenience: analyze and return one flow's bound."""
        return self.analyze(network).delay_of(flow_name)


def _accepts_ctx(cls: type) -> bool:
    """Whether ``cls.analyze`` takes the ``ctx`` keyword (cached)."""
    cached = cls.__dict__.get("_analyze_accepts_ctx")
    if cached is None:
        try:
            params = inspect.signature(cls.analyze).parameters
            cached = "ctx" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in params.values())
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            cached = False
        cls._analyze_accepts_ctx = cached
    return cached


def sum_contributions(
        parts: Sequence[tuple[object, float]]) -> float:
    """Total delay from ordered per-element contributions."""
    return float(sum(d for _, d in parts))
