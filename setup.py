"""Setup shim for environments without PEP 517 build isolation.

`pip install -e .` requires the `wheel` package for editable installs on
older setuptools; this shim lets `python setup.py develop` work offline.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
