"""Unit tests for the static-priority server analysis."""

import pytest

from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket
from repro.errors import InstabilityError
from repro.servers.fifo import fifo_delay_bound
from repro.servers.static_priority import (
    sp_delay_bounds,
    sp_leftover_curve,
    sp_local_analysis,
)


def curves(*specs):
    """specs: (name, sigma, rho) triples -> {name: affine curve}."""
    return {n: TokenBucket(s, r).constraint_curve() for n, s, r in specs}


class TestLeftoverCurve:
    def test_no_higher_priority_is_full_line(self):
        beta = sp_leftover_curve(1.0, P.zero())
        assert beta == P.line(1.0)

    def test_affine_cross(self):
        beta = sp_leftover_curve(1.0, P.affine(1.0, 0.25))
        # [t - 1 - 0.25 t]^+ : latency 1/0.75, then rate 0.75
        assert beta(1.0) == 0.0
        assert beta(1.0 / 0.75) == pytest.approx(0.0, abs=1e-9)
        assert beta(2.0 / 0.75 + 1e-9) > 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            sp_leftover_curve(0.0, P.zero())


class TestDelayBounds:
    def test_highest_priority_sees_fifo_bound(self):
        cs = curves(("hi", 1.0, 0.2), ("lo", 1.0, 0.2))
        bounds = sp_delay_bounds(cs, {"hi": 0, "lo": 1}, 1.0)
        assert bounds["hi"] == pytest.approx(
            fifo_delay_bound(cs["hi"], 1.0))

    def test_lower_priority_waits_longer(self):
        cs = curves(("hi", 1.0, 0.2), ("lo", 1.0, 0.2))
        bounds = sp_delay_bounds(cs, {"hi": 0, "lo": 1}, 1.0)
        assert bounds["lo"] > bounds["hi"]

    def test_same_priority_is_fifo(self):
        cs = curves(("a", 1.0, 0.2), ("b", 1.0, 0.2))
        bounds = sp_delay_bounds(cs, {"a": 0, "b": 0}, 1.0)
        agg = cs["a"] + cs["b"]
        expect = fifo_delay_bound(agg, 1.0)
        assert bounds["a"] == pytest.approx(expect)
        assert bounds["b"] == pytest.approx(expect)

    def test_three_levels_monotone(self):
        cs = curves(("p0", 1.0, 0.1), ("p1", 1.0, 0.1), ("p2", 1.0, 0.1))
        bounds = sp_delay_bounds(cs, {"p0": 0, "p1": 1, "p2": 2}, 1.0)
        assert bounds["p0"] <= bounds["p1"] <= bounds["p2"]

    def test_unstable_raises(self):
        cs = curves(("a", 1.0, 0.6), ("b", 1.0, 0.6))
        with pytest.raises(InstabilityError):
            sp_delay_bounds(cs, {"a": 0, "b": 1}, 1.0)

    def test_sp_never_better_than_dedicated_line_for_lowest(self):
        # lowest priority with cross traffic is worse than alone
        cs = curves(("hi", 1.0, 0.3), ("lo", 1.0, 0.3))
        bounds = sp_delay_bounds(cs, {"hi": 0, "lo": 1}, 1.0)
        alone = fifo_delay_bound(cs["lo"], 1.0)
        assert bounds["lo"] >= alone


class TestLocalAnalysis:
    def test_records_all_fields(self):
        cs = curves(("hi", 1.0, 0.2), ("lo", 2.0, 0.2))
        la = sp_local_analysis(cs, {"hi": 0, "lo": 1}, 1.0)
        assert la.backlog == pytest.approx(3.0)
        assert la.busy_period == pytest.approx(3.0 / 0.6)
        assert set(la.delay_by_flow) == {"hi", "lo"}
