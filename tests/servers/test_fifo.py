"""Unit tests for the single-node FIFO analysis (paper §2.1)."""

import math

import pytest

from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket
from repro.errors import InstabilityError
from repro.servers.fifo import (
    capped_output_curve,
    cruz_output_curve,
    fifo_backlog_bound,
    fifo_busy_period,
    fifo_delay_bound,
    fifo_local_analysis,
)


def paper_aggregate(rho=0.2, k=3):
    """k fresh peak-limited sources min(t, 1 + rho t)."""
    b = TokenBucket(1.0, rho, peak=1.0).constraint_curve()
    return (b * float(k)).simplified()


class TestDelayBound:
    def test_single_affine_source(self):
        assert fifo_delay_bound(P.affine(2.0, 0.5), 1.0) == \
            pytest.approx(2.0)

    def test_paper_first_server(self):
        # E_1 = 2 sigma / (1 - rho)
        assert fifo_delay_bound(paper_aggregate(0.2, 3), 1.0) == \
            pytest.approx(2.0 / 0.8)

    def test_scales_with_capacity(self):
        agg = P.affine(2.0, 0.5)
        assert fifo_delay_bound(agg, 2.0) == pytest.approx(1.0)

    def test_unstable_raises(self):
        with pytest.raises(InstabilityError):
            fifo_delay_bound(P.affine(1.0, 1.5), 1.0)

    def test_rate_equals_capacity_raises(self):
        with pytest.raises(InstabilityError):
            fifo_delay_bound(P.affine(1.0, 1.0), 1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            fifo_delay_bound(P.affine(1.0, 0.5), -1.0)


class TestBacklogAndBusyPeriod:
    def test_backlog_affine(self):
        assert fifo_backlog_bound(P.affine(3.0, 0.5), 1.0) == \
            pytest.approx(3.0)

    def test_backlog_peak_limited(self):
        # 3 min(t, 1+0.2t) vs t: max at t*=1.25: 3*1.25 - 1.25 = 2.5
        assert fifo_backlog_bound(paper_aggregate(), 1.0) == \
            pytest.approx(2.5)

    def test_busy_period_paper(self):
        assert fifo_busy_period(paper_aggregate(), 1.0) == \
            pytest.approx(7.5)

    def test_busy_period_underload(self):
        assert fifo_busy_period(P.line(0.3), 1.0) == 0.0


class TestLocalAnalysis:
    def test_all_flows_share_fifo_delay(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        curves = {f"f{i}": tb.constraint_curve() for i in range(3)}
        la = fifo_local_analysis(curves, 1.0)
        assert set(la.delay_by_flow) == set(curves)
        vals = set(la.delay_by_flow.values())
        assert len(vals) == 1
        assert vals.pop() == pytest.approx(2.5)

    def test_max_delay(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        la = fifo_local_analysis({"a": tb.constraint_curve()}, 1.0)
        assert la.max_delay == la.delay_by_flow["a"]

    def test_aggregate_recorded(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        la = fifo_local_analysis({"a": tb.constraint_curve(),
                                  "b": tb.constraint_curve()}, 1.0)
        assert la.aggregate(10.0) == pytest.approx(
            2 * tb.constraint_curve()(10.0))

    def test_empty_server(self):
        la = fifo_local_analysis({}, 1.0)
        assert la.max_delay == 0.0
        assert la.busy_period == 0.0


class TestOutputCurves:
    def test_cruz_shift(self):
        b = TokenBucket(1.0, 0.5).constraint_curve()
        out = cruz_output_curve(b, 2.0)
        assert out(0.0) == pytest.approx(2.0)

    def test_cruz_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            cruz_output_curve(P.affine(1.0, 0.5), -1.0)

    def test_cruz_rejects_infinite_delay(self):
        with pytest.raises(ValueError):
            cruz_output_curve(P.affine(1.0, 0.5), math.inf)

    def test_capped_is_below_cruz(self):
        b = TokenBucket(2.0, 0.3).constraint_curve()
        cruz = cruz_output_curve(b, 3.0)
        capped = capped_output_curve(b, 3.0, 1.0)
        for t in [0.0, 0.5, 2.0, 10.0]:
            assert capped(t) <= cruz(t) + 1e-12
            assert capped(t) <= 1.0 * t + 1e-12

    def test_capped_matches_cruz_for_long_intervals(self):
        b = TokenBucket(2.0, 0.3).constraint_curve()
        cruz = cruz_output_curve(b, 3.0)
        capped = capped_output_curve(b, 3.0, 1.0)
        assert capped(100.0) == pytest.approx(cruz(100.0))

    def test_output_dominates_input(self):
        # the output constraint must still bound the original traffic
        b = TokenBucket(1.0, 0.2, peak=1.0).constraint_curve()
        out = capped_output_curve(b, 1.5, 1.0)
        for t in [0.0, 1.0, 4.0, 20.0]:
            assert out(t) >= b(t) - 1e-9
