"""Unit tests for packetization corrections."""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.network.tandem import CONNECTION0, build_tandem
from repro.servers.packetized import (
    packetization_slack,
    packetize_report,
    packetized_arrival_curve,
)
from repro.sim.simulator import simulate_greedy


class TestSlack:
    def test_formula(self):
        assert packetization_slack(4, 0.05, 1.0) == pytest.approx(0.2)

    def test_scales_with_capacity(self):
        assert packetization_slack(2, 1.0, 2.0) == pytest.approx(1.0)

    def test_zero_packet(self):
        assert packetization_slack(3, 0.0, 1.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            packetization_slack(-1, 0.1, 1.0)
        with pytest.raises(ValueError):
            packetization_slack(1, -0.1, 1.0)
        with pytest.raises(ValueError):
            packetization_slack(1, 0.1, 0.0)


class TestArrivalCurve:
    def test_adds_one_packet(self):
        fluid = P.affine(1.0, 0.5)
        pk = packetized_arrival_curve(fluid, 0.25)
        for t in (0.0, 1.0, 4.0):
            assert pk(t) == pytest.approx(fluid(t) + 0.25)


class TestPacketizeReport:
    def test_totals_gain_per_hop_slack(self, tandem4):
        fluid = IntegratedAnalysis().analyze(tandem4)
        pk = packetize_report(fluid, tandem4, max_packet=0.1)
        assert pk.delay_of(CONNECTION0) == pytest.approx(
            fluid.delay_of(CONNECTION0) + 4 * 0.1)
        assert pk.delay_of("short_2") == pytest.approx(
            fluid.delay_of("short_2") + 0.1)

    def test_contributions_stay_consistent(self, tandem4):
        fluid = IntegratedAnalysis().analyze(tandem4)
        pk = packetize_report(fluid, tandem4, max_packet=0.1)
        fd = pk.delays[CONNECTION0]
        assert sum(d for _, d in fd.contributions) == \
            pytest.approx(fd.total)

    def test_meta_records_origin(self, tandem4):
        pk = packetize_report(DecomposedAnalysis().analyze(tandem4),
                              tandem4, 0.05)
        assert pk.meta["fluid_algorithm"] == "decomposed"
        assert pk.algorithm.endswith("+packetized")

    def test_simulation_within_packetized_bound_without_slack(self):
        """The packetized bound needs NO extra allowance vs simulation."""
        net = build_tandem(3, 0.8)
        pkt = 0.05
        fluid = IntegratedAnalysis().analyze(net)
        pk = packetize_report(fluid, net, max_packet=pkt)
        sim = simulate_greedy(net, horizon=120.0, packet_size=pkt)
        for name in net.flows:
            assert sim.max_delay(name) <= pk.delay_of(name) + 1e-9
