"""Unit tests for guaranteed-rate (rate-latency) server models."""

import pytest

from repro.curves.token_bucket import TokenBucket
from repro.errors import AnalysisError
from repro.servers.guaranteed_rate import (
    gr_delay_bounds,
    gr_local_analysis,
    rate_latency_curve,
    wfq_service_curve,
)


class TestCurves:
    def test_rate_latency(self):
        b = rate_latency_curve(2.0, 1.0)
        assert b(1.0) == 0.0 and b(2.0) == pytest.approx(2.0)

    def test_wfq_fluid_has_zero_latency(self):
        b = wfq_service_curve(0.5, 1.0)
        assert b(0.0) == 0.0 and b(2.0) == pytest.approx(1.0)

    def test_wfq_packet_latency(self):
        # L/r + L/C with L=1, r=0.5, C=1 -> 3.0
        b = wfq_service_curve(0.5, 1.0, max_packet=1.0)
        assert b(3.0) == pytest.approx(0.0, abs=1e-9)
        assert b(5.0) == pytest.approx(1.0)

    def test_wfq_rejects_overallocation(self):
        with pytest.raises(AnalysisError):
            wfq_service_curve(2.0, 1.0)


class TestBounds:
    def test_isolated_flows(self):
        tb = TokenBucket(1.0, 0.25)
        curves = {"a": tb.constraint_curve(), "b": tb.constraint_curve()}
        bounds = gr_delay_bounds(curves, {"a": 0.25, "b": 0.25}, 1.0)
        # each flow: sigma / reserved = 4.0 in the fluid limit
        assert bounds["a"] == pytest.approx(4.0)
        assert bounds["b"] == pytest.approx(4.0)

    def test_bigger_reservation_smaller_delay(self):
        tb = TokenBucket(1.0, 0.25)
        curves = {"a": tb.constraint_curve()}
        d1 = gr_delay_bounds(curves, {"a": 0.25}, 1.0)["a"]
        d2 = gr_delay_bounds(curves, {"a": 0.5}, 1.0)["a"]
        assert d2 < d1

    def test_rejects_oversubscription(self):
        tb = TokenBucket(1.0, 0.6)
        curves = {"a": tb.constraint_curve(), "b": tb.constraint_curve()}
        with pytest.raises(AnalysisError):
            gr_delay_bounds(curves, {"a": 0.6, "b": 0.6}, 1.0)

    def test_gr_independent_of_cross_traffic(self):
        # the whole point of GR: another flow's burst does not matter
        tb = TokenBucket(1.0, 0.25)
        huge = TokenBucket(50.0, 0.25)
        d_small = gr_delay_bounds(
            {"a": tb.constraint_curve()}, {"a": 0.25}, 1.0)["a"]
        d_with_huge = gr_delay_bounds(
            {"a": tb.constraint_curve(), "b": huge.constraint_curve()},
            {"a": 0.25, "b": 0.25}, 1.0)["a"]
        assert d_with_huge == pytest.approx(d_small)


class TestLocalAnalysis:
    def test_fields(self):
        tb = TokenBucket(1.0, 0.25)
        la = gr_local_analysis({"a": tb.constraint_curve()},
                               {"a": 0.25}, 1.0)
        assert la.delay_by_flow["a"] == pytest.approx(4.0)
        assert la.backlog == pytest.approx(1.0)
