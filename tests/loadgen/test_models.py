"""Unit tests for the seeded workload models."""

from random import Random

import pytest

from repro.errors import LoadGenError
from repro.loadgen import (
    BurstyWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    PoissonWorkload,
    RequestTemplate,
    WORKLOADS,
    make_workload,
)


class TestRequestTemplate:
    def test_defaults_mirror_serve_stream(self):
        req = RequestTemplate().mint(Random(0), 3)
        assert req.name == "c000003"
        assert req.path == (1, 2, 3, 4)
        assert req.deadline == 30.0
        assert req.bucket.rho == 0.02

    def test_random_paths_are_contiguous_subpaths(self):
        template = RequestTemplate(n_servers=6, paths="random")
        rng = Random(42)
        for i in range(50):
            path = template.mint(rng, i).path
            assert 1 <= path[0] <= path[-1] <= 6
            assert path == tuple(range(path[0], path[-1] + 1))

    def test_jitter_spreads_rho_within_bounds(self):
        template = RequestTemplate(rho_jitter=0.5)
        rng = Random(1)
        rhos = {template.mint(rng, i).bucket.rho for i in range(20)}
        assert len(rhos) > 1
        assert all(0.01 <= r <= 0.03 for r in rhos)

    def test_tandems_round_robin_disjoint_paths(self):
        template = RequestTemplate(n_servers=3, tandems=2)
        rng = Random(0)
        paths = [template.mint(rng, i).path for i in range(4)]
        assert paths == [(1, 2, 3), (4, 5, 6), (1, 2, 3), (4, 5, 6)]

    def test_tandems_random_paths_stay_in_their_tandem(self):
        template = RequestTemplate(n_servers=4, tandems=3,
                                   paths="random")
        rng = Random(9)
        for i in range(30):
            path = template.mint(rng, i).path
            base = (i % 3) * 4
            assert base + 1 <= path[0] <= path[-1] <= base + 4
            assert path == tuple(range(path[0], path[-1] + 1))

    @pytest.mark.parametrize("kwargs", [
        {"n_servers": 0},
        {"paths": "loop"},
        {"rho_jitter": 1.0},
        {"sigma_jitter": -0.1},
        {"tandems": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(LoadGenError):
            RequestTemplate(**kwargs)


class TestSchedules:
    def test_schedule_is_deterministic_per_seed(self):
        a = PoissonWorkload(7, 20.0).schedule(5.0)
        b = PoissonWorkload(7, 20.0).schedule(5.0)
        assert [(e.t, e.op, e.name) for e in a] == \
               [(e.t, e.op, e.name) for e in b]
        other = PoissonWorkload(8, 20.0).schedule(5.0)
        assert [e.t for e in a] != [e.t for e in other]

    def test_schedule_sorted_within_horizon(self):
        events = FlashCrowdWorkload(3, 30.0).schedule(4.0)
        times = [e.t for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < 4.0 for t in times)

    def test_poisson_rate_is_roughly_offered(self):
        events = PoissonWorkload(11, 50.0).schedule(20.0)
        # ~1000 arrivals; 5 sigma ~ 160
        assert 800 <= len(events) <= 1200

    def test_churn_releases_follow_their_admit(self):
        workload = PoissonWorkload(5, 20.0, hold_s=0.5)
        events = workload.schedule(5.0)
        admit_t = {e.name: e.t for e in events if e.op == "admit"}
        releases = [e for e in events if e.op == "release"]
        assert releases, "expected churn releases within the horizon"
        for rel in releases:
            assert rel.t > admit_t[rel.name]
            assert rel.request is None

    def test_flash_crowd_spike_density(self):
        workload = FlashCrowdWorkload(9, 10.0, spike_factor=10.0,
                                      spike_at=4.0, spike_s=1.0)
        events = workload.schedule(10.0)
        in_spike = sum(1 for e in events if 4.0 <= e.t < 5.0)
        outside = len(events) - in_spike
        # spike second offers 100, the other nine seconds offer 90 total
        assert in_spike > outside / 3

    def test_bursty_preserves_average_rate(self):
        workload = BurstyWorkload(13, 20.0, mean_on_s=0.5, mean_off_s=1.5)
        events = workload.schedule(50.0)
        assert 600 <= len(events) <= 1400  # ~1000 on average

    def test_diurnal_peaks_mid_run(self):
        workload = DiurnalWorkload(17, 20.0, amplitude=1.0)
        events = workload.schedule(30.0)
        trough = sum(1 for e in events if e.t < 5.0 or e.t >= 25.0)
        peak = sum(1 for e in events if 10.0 <= e.t < 20.0)
        assert peak > 2 * trough

    def test_requests_for_closed_loop(self):
        workload = PoissonWorkload(1, 5.0)
        reqs = workload.requests(7)
        assert [r.name for r in reqs] == [f"c{i:06d}" for i in range(7)]
        assert workload.requests(0) == []
        with pytest.raises(LoadGenError):
            workload.requests(-1)

    def test_describe_round_trips_parameters(self):
        desc = BurstyWorkload(2, 8.0, mean_on_s=0.2,
                              hold_s=1.0).describe()
        assert desc["kind"] == "bursty"
        assert desc["seed"] == 2
        assert desc["mean_on_s"] == 0.2
        assert desc["hold_s"] == 1.0
        assert desc["template"]["n_servers"] == 4


class TestMakeWorkload:
    def test_registry_covers_cli_names(self):
        assert set(WORKLOADS) == {"poisson", "bursty", "diurnal",
                                  "flash-crowd", "churn"}

    def test_churn_defaults_hold(self):
        workload = make_workload("churn", 1, 20.0)
        assert workload.kind == "churn"
        assert workload.hold_s == pytest.approx(0.5)

    def test_explicit_hold_wins(self):
        assert make_workload("churn", 1, 20.0, hold_s=3.0).hold_s == 3.0

    def test_unknown_name(self):
        with pytest.raises(LoadGenError, match="unknown workload"):
            make_workload("constant", 1, 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(LoadGenError):
            make_workload("diurnal", 1, 1.0, amplitude=2.0)
        with pytest.raises(LoadGenError):
            make_workload("flash-crowd", 1, 1.0, spike_factor=0.5)
