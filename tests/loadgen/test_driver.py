"""Driver tests: lag accounting, chaos kills, closed-loop semantics.

Timing-sensitive behaviour is tested with an injected fake clock so
the assertions are exact, not statistical; durability behaviour runs
against the real service + journal in a tmp directory.
"""

import pytest

from repro.context import AnalysisContext, MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.errors import LoadGenError
from repro.loadgen import (
    ChaosPlan,
    Event,
    PoissonWorkload,
    RequestTemplate,
    run_closed_loop,
    run_open_loop,
    summarize,
)
from repro.network.topology import Network, ServerSpec
from repro.service import AdmissionService, recover_service

HOPS = 2


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, dt):
        self.sleeps.append(dt)
        self.now += dt


def make_service(tmp_path, tag="j", ctx=None):
    ctx = ctx or AnalysisContext(metrics=MetricsRegistry())
    empty = Network([ServerSpec(k) for k in range(1, HOPS + 1)], [])
    return AdmissionService(empty, IntegratedAnalysis(),
                            journal_dir=tmp_path / tag, ctx=ctx), ctx


def small_schedule(n=6, rate=4.0, hold_s=None, seed=3):
    workload = PoissonWorkload(
        seed, rate, template=RequestTemplate(n_servers=HOPS),
        hold_s=hold_s)
    return workload.schedule(n / rate)


class TestOpenLoop:
    def test_unpaced_run_has_zero_lag_when_service_keeps_up(self,
                                                            tmp_path):
        service, _ = make_service(tmp_path)
        events = small_schedule()
        clock = FakeClock()
        result = run_open_loop(service, events, duration_s=1.5,
                               offered_rate=4.0, clock=clock,
                               sleep=clock.sleep)
        result.service.close()
        # the fake clock never advances, so the driver is always early
        assert all(r.lag_s == 0.0 for r in result.records)
        assert not clock.sleeps

    def test_paced_run_sleeps_to_each_intended_instant(self, tmp_path):
        service, _ = make_service(tmp_path)
        events = small_schedule()
        clock = FakeClock()
        result = run_open_loop(service, events, duration_s=1.5,
                               offered_rate=4.0, pace=True,
                               clock=clock, sleep=clock.sleep)
        result.service.close()
        assert len(clock.sleeps) == len(events)
        assert all(r.lag_s == 0.0 for r in result.records)

    def test_lag_is_accounted_into_latency(self, tmp_path):
        """A slow service cannot hide behind coordinated omission."""
        service, _ = make_service(tmp_path)
        events = [Event(0.0, "admit", e.name, e.request)
                  for e in small_schedule()[:3]]
        clock = FakeClock()
        real_admit = service.admit

        def slow_admit(request):
            clock.now += 5.0  # every decision takes 5 virtual seconds
            return real_admit(request)

        service.admit = slow_admit
        result = run_open_loop(service, events, duration_s=1.0,
                               offered_rate=3.0, clock=clock,
                               sleep=clock.sleep)
        result.service.close()
        # all intended at t=0: event k dispatches 5k seconds late
        assert [r.lag_s for r in result.records] == [0.0, 5.0, 10.0]
        for rec in result.records:
            assert rec.latency_s == pytest.approx(rec.lag_s + 5.0)

    def test_records_carry_decision_fields(self, tmp_path):
        service, _ = make_service(tmp_path)
        result = run_open_loop(service, small_schedule(),
                               duration_s=1.5, offered_rate=4.0)
        result.service.close()
        admits = [r for r in result.records if r.op == "admit"]
        assert admits
        for rec in admits:
            assert rec.outcome in ("admitted", "rejected")
            assert rec.bound_hex
            assert rec.request_record["name"] == rec.name
        assert result.committed == {r.name for r in admits
                                    if r.outcome == "admitted"}

    def test_release_events_update_committed(self, tmp_path):
        service, _ = make_service(tmp_path)
        events = small_schedule(n=12, hold_s=0.2)
        result = run_open_loop(service, events, duration_s=3.0,
                               offered_rate=4.0)
        result.service.close()
        released = {r.name for r in result.records
                    if r.outcome == "released"}
        assert released
        assert not (released & result.committed)

    def test_unknown_op_raises(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(LoadGenError, match="unknown event op"):
            run_open_loop(service, [Event(0.0, "ping", "x")],
                          duration_s=1.0, offered_rate=1.0)
        service.close()


class TestClosedLoop:
    def test_closed_loop_has_no_lag_by_construction(self, tmp_path):
        service, _ = make_service(tmp_path)
        workload = PoissonWorkload(
            1, 4.0, template=RequestTemplate(n_servers=HOPS))
        result = run_closed_loop(service, workload.requests(8),
                                 clients=2)
        result.service.close()
        assert result.clients == 2
        assert result.lag.max == 0.0
        assert result.latency.count == 8

    def test_clients_validated(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(LoadGenError):
            run_closed_loop(service, [], clients=0)
        service.close()


class TestChaos:
    def test_kill_and_recover_loses_no_committed_admission(self,
                                                           tmp_path):
        service, ctx = make_service(tmp_path)
        events = small_schedule(n=10, hold_s=0.4)
        chaos = ChaosPlan(
            kill_at=[len(events) // 2],
            recover=lambda: recover_service(tmp_path / "j",
                                            verify=False, ctx=ctx))
        result = run_open_loop(service, events, duration_s=2.5,
                               offered_rate=4.0, chaos=chaos)
        result.service.close()
        assert result.chaos_kills == 1
        assert result.chaos_lost == ()
        # the surviving service still knows every committed admission
        report = summarize(result, metrics=ctx.metrics)
        assert report.chaos_kills == 1
        assert report.chaos_lost == ()

    def test_multiple_kill_points(self, tmp_path):
        service, ctx = make_service(tmp_path)
        events = small_schedule(n=9)
        chaos = ChaosPlan(
            kill_at=[2, 5, 7],
            recover=lambda: recover_service(tmp_path / "j",
                                            verify=False, ctx=ctx))
        result = run_open_loop(service, events, duration_s=2.25,
                               offered_rate=4.0, chaos=chaos)
        result.service.close()
        assert result.chaos_kills == 3
        assert result.chaos_lost == ()

    def test_lossy_recovery_is_detected(self, tmp_path):
        """The audit must notice a recovery that dropped admissions."""
        service, ctx = make_service(tmp_path)
        events = small_schedule(n=6)

        def amnesiac_recover():
            # a fresh empty service instead of a journal recovery:
            # everything committed before the kill is "lost"
            fresh, _ = make_service(tmp_path, tag="empty", ctx=ctx)
            return fresh

        chaos = ChaosPlan(kill_at=[4], recover=amnesiac_recover)
        result = run_open_loop(service, events, duration_s=1.5,
                               offered_rate=4.0, chaos=chaos)
        result.service.close()
        assert result.chaos_kills == 1
        assert len(result.chaos_lost) > 0

    def test_negative_kill_index_rejected(self):
        with pytest.raises(LoadGenError):
            ChaosPlan(kill_at=[-1], recover=lambda: None)


class TestBatchedClosedLoop:
    """workers > 1: rounds go through ``service.admit_batch``.

    The contract is the batch planner's serial equivalence carried up
    into the load harness: a batched closed loop must produce the same
    decisions (and the same canonical trace) as the round-robin, with
    genuine pool concurrency behind each round.
    """

    TANDEMS = 2

    def multi_service(self, tmp_path, tag):
        from repro.analysis.decomposed import DecomposedAnalysis

        servers = [ServerSpec(t * HOPS + k)
                   for t in range(self.TANDEMS)
                   for k in range(1, HOPS + 1)]
        ctx = AnalysisContext(metrics=MetricsRegistry())
        return AdmissionService(Network(servers, []),
                                DecomposedAnalysis(),
                                journal_dir=tmp_path / tag,
                                ctx=ctx), ctx

    def requests(self, n=8):
        template = RequestTemplate(n_servers=HOPS, tandems=self.TANDEMS)
        return PoissonWorkload(5, 4.0, template=template).requests(n)

    def test_batched_matches_serial_round_robin(self, tmp_path):
        reqs = self.requests()
        serial_svc, _ = self.multi_service(tmp_path, "serial")
        serial = run_closed_loop(serial_svc, reqs, clients=4, workers=1)
        serial.service.close()
        batched_svc, ctx = self.multi_service(tmp_path, "batched")
        batched = run_closed_loop(batched_svc, reqs, clients=4,
                                  workers=2)
        batched.service.close()
        assert [r.canonical_dict() for r in serial.records] == \
            [r.canonical_dict() for r in batched.records]
        assert serial.committed == batched.committed
        # the pool plan actually engaged (requests span two tandems)
        assert ctx.metrics.get("parallel.batch_groups") >= 2

    def test_batched_chaos_splits_round_at_kill_point(self, tmp_path):
        reqs = self.requests(10)
        service, ctx = self.multi_service(tmp_path, "j")
        chaos = ChaosPlan(
            kill_at=[5],  # mid-round for clients=4
            recover=lambda: recover_service(tmp_path / "j",
                                            verify=False, ctx=ctx))
        result = run_closed_loop(service, reqs, clients=4, workers=2,
                                 chaos=chaos)
        result.service.close()
        assert result.chaos_kills == 1
        assert result.chaos_lost == ()
        assert result.latency.count == 10
        assert [r.index for r in result.records] == list(range(10))

    def test_each_round_shares_its_wall_time(self, tmp_path):
        service, _ = self.multi_service(tmp_path, "j")
        result = run_closed_loop(service, self.requests(6), clients=3,
                                 workers=2)
        result.service.close()
        assert result.lag.max == 0.0
        latencies = [r.latency_s for r in result.records]
        # two rounds of three: each round's members share one latency
        assert latencies[0] == latencies[1] == latencies[2]
        assert latencies[3] == latencies[4] == latencies[5]

    def test_workers_validated(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(LoadGenError):
            run_closed_loop(service, [], workers=0)
        service.close()
