"""End-to-end tests for ``repro loadtest`` (the acceptance criteria)."""

import json

import pytest

from repro.cli import main

BASE = ["loadtest", "--workload", "flash-crowd", "--seed", "7",
        "--duration", "1.5", "--rate", "8", "--hops", "2",
        "--hold", "0.4"]


def run(*extra, out=""):
    args = list(BASE) + ["--out", str(out) if out else ""] + list(extra)
    return main(args)


class TestLoadtestCLI:
    def test_basic_run_prints_report(self, tmp_path, capsys):
        assert run() == 0
        out = capsys.readouterr().out
        assert "workload flash-crowd (seed 7)" in out
        assert "latency p50" in out
        assert "degradation:" in out

    def test_same_seed_twice_is_byte_identical(self, tmp_path, capsys):
        """The headline acceptance criterion, through the real CLI."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert run("--record", str(a)) == 0
        assert run("--record", str(b)) == 0
        assert a.read_bytes() == b.read_bytes()
        assert "wrote trace" in capsys.readouterr().out

    def test_chaos_run_loses_nothing_and_exits_zero(self, tmp_path,
                                                    capsys):
        rc = run("--chaos",
                 "--journal", str(tmp_path / "journal"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos: 1 kill(s), 0 lost committed admission(s)" in out

    def test_chaos_at_explicit_indices(self, tmp_path, capsys):
        rc = run("--chaos-at", "2", "--chaos-at", "5",
                 "--journal", str(tmp_path / "journal"))
        assert rc == 0
        assert "2 kill(s)" in capsys.readouterr().out

    def test_replay_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert run("--record", str(trace)) == 0
        capsys.readouterr()
        assert main(["loadtest", "--replay", str(trace),
                     "--out", ""]) == 0
        out = capsys.readouterr().out
        assert "deterministic" in out

    def test_replay_missing_trace_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace"):
            main(["loadtest", "--replay", str(tmp_path / "nope.jsonl"),
                  "--out", ""])

    def test_slo_pass_and_fail_exit_codes(self, tmp_path, capsys):
        assert run("--slo", "p99<3600,lost<1") == 0
        assert "SLO: pass" in capsys.readouterr().out
        assert run("--slo", "throughput>1e12") == 1
        assert "SLO: FAIL" in capsys.readouterr().out

    def test_bad_slo_spec_exits_before_running(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown SLO metric"):
            run("--slo", "zoom<1")

    def test_out_artifact_is_machine_readable(self, tmp_path, capsys):
        out = tmp_path / "BENCH_loadtest.json"
        rc = run("--chaos", "--slo", "lost<1",
                 "--journal", str(tmp_path / "journal"), out=out)
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "loadtest"
        assert payload["report"]["latency"]["p99"] > 0.0
        assert payload["report"]["chaos_kills"] == 1
        assert payload["report"]["chaos_lost"] == []
        assert payload["slo"]["ok"] is True
        assert payload["driver"]["mode"] == "open"

    def test_closed_loop_mode(self, tmp_path, capsys):
        rc = main(["loadtest", "--workload", "poisson", "--seed", "1",
                   "--rate", "5", "--duration", "1", "--hops", "2",
                   "--closed-loop", "3", "--requests", "6",
                   "--out", ""])
        assert rc == 0
        out = capsys.readouterr().out
        assert "6 event(s)" in out

    def test_workload_names_are_wired_through(self, tmp_path, capsys):
        for name in ("poisson", "bursty", "diurnal", "churn"):
            rc = main(["loadtest", "--workload", name, "--seed", "2",
                       "--duration", "1", "--rate", "8", "--hops", "2",
                       "--out", ""])
            assert rc == 0, name
        assert "workload churn" in capsys.readouterr().out


class TestParallelLoadtestCLI:
    def test_workers_require_closed_loop(self, tmp_path):
        with pytest.raises(SystemExit, match="requires "
                                             "--closed-loop"):
            run("--workers", "2")

    def test_workers_validated(self, tmp_path):
        with pytest.raises(SystemExit, match="workers must be >= 1"):
            run("--closed-loop", "2", "--workers", "0")

    def test_tandems_validated(self, tmp_path):
        with pytest.raises(SystemExit, match="tandems must be >= 1"):
            run("--tandems", "0")

    def test_parallel_closed_loop_matches_serial_trace(self, tmp_path,
                                                       capsys):
        """Same seed, workers 1 vs 2: byte-identical canonical trace."""
        base = ["loadtest", "--workload", "poisson", "--seed", "11",
                "--rate", "5", "--duration", "1", "--hops", "2",
                "--tandems", "2", "--analyzer", "decomposed",
                "--closed-loop", "4", "--requests", "8", "--out", ""]
        a, b = tmp_path / "serial.jsonl", tmp_path / "par.jsonl"
        assert main(base + ["--workers", "1", "--record", str(a)]) == 0
        assert main(base + ["--workers", "2", "--record", str(b)]) == 0
        # the header differs only in the recorded worker count; every
        # event line must be byte-identical
        a_head, *a_events = a.read_text().splitlines()
        b_head, *b_events = b.read_text().splitlines()
        assert a_events == b_events
        assert json.loads(a_head)["driver"]["workers"] == 1
        assert json.loads(b_head)["driver"]["workers"] == 2
        assert "8 event(s)" in capsys.readouterr().out

    def test_parallel_trace_replays(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["loadtest", "--workload", "poisson", "--seed",
                     "3", "--rate", "5", "--duration", "1", "--hops",
                     "2", "--tandems", "2", "--analyzer", "decomposed",
                     "--closed-loop", "4", "--requests", "8",
                     "--workers", "2", "--record", str(trace),
                     "--out", ""]) == 0
        capsys.readouterr()
        assert main(["loadtest", "--replay", str(trace),
                     "--out", ""]) == 0
        assert "deterministic" in capsys.readouterr().out
