"""SLO grammar and gating tests (pure, no service involved)."""

import pytest

from repro.errors import LoadGenError
from repro.loadgen import SLO, LoadReport, parse_slo


def report(**overrides) -> LoadReport:
    """A healthy baseline report, selectively overridden per test."""
    base = dict(
        workload={"kind": "poisson", "seed": 1},
        events=100,
        counts={"admitted": 80, "rejected": 20},
        degradation={"normal": 100},
        latency={"count": 100.0, "mean": 0.01, "p50": 0.01,
                 "p95": 0.02, "p99": 0.03, "max": 0.05},
        lag={"count": 100.0, "mean": 0.0, "p50": 0.0,
             "p95": 0.0, "p99": 0.0, "max": 0.0},
        latency_exact=True,
        wall_s=2.0,
        duration_s=2.0,
        offered_rate=50.0,
        clients=0,
        throughput=50.0,
        shed_level=0,
        breaker_opens={},
        chaos_kills=0,
        chaos_lost=(),
    )
    base.update(overrides)
    return LoadReport(**base)


class TestParse:
    def test_full_grammar(self):
        slo = parse_slo("p50<0.1,p95<0.2,p99<0.5,max<1,lag<2,"
                        "reject<0.3,degraded<0.5,shed<1,"
                        "throughput>10,lost<1")
        assert slo.max_p50_s == 0.1
        assert slo.max_latency_s == 1.0
        assert slo.max_shed_level == 1
        assert slo.min_throughput == 10.0
        assert slo.max_lost == 1

    def test_empty_and_whitespace_clauses_ignored(self):
        assert parse_slo("") == SLO()
        assert parse_slo(" p99<0.5 , ") == SLO(max_p99_s=0.5)

    @pytest.mark.parametrize("spec,match", [
        ("p99=0.5", "needs"),
        ("latency<0.5", "unknown SLO metric"),
        ("p99>0.5", "takes"),
        ("throughput<10", "takes"),
        ("p99<fast", "not a"),
        ("p99<0.5,p99<0.6", "duplicate"),
    ])
    def test_rejects_bad_specs(self, spec, match):
        with pytest.raises(LoadGenError, match=match):
            parse_slo(spec)


class TestEvaluate:
    def test_healthy_report_passes(self):
        result = parse_slo("p99<0.5,reject<0.5,throughput>10,"
                           "lost<1").evaluate(report())
        assert result.ok
        assert result.render() == "SLO: pass"

    def test_upper_bound_violation(self):
        result = SLO(max_p99_s=0.02).evaluate(report())
        assert not result.ok
        (v,) = result.violations
        assert v.metric == "p99"
        assert v.actual == 0.03
        assert v.direction == "<"
        assert "violates" in v.render()

    def test_lower_bound_violation(self):
        result = SLO(min_throughput=100.0).evaluate(report())
        (v,) = result.violations
        assert v.metric == "throughput"
        assert v.direction == ">"

    def test_bounds_are_strict(self):
        # actual == limit fails for both directions
        assert not SLO(max_p99_s=0.03).evaluate(report()).ok
        assert not SLO(min_throughput=50.0).evaluate(report()).ok

    def test_shed_level_gating_is_strict(self):
        slo = SLO(max_shed_level=2)
        assert slo.evaluate(report(shed_level=1)).ok
        assert not slo.evaluate(report(shed_level=2)).ok

    def test_reject_and_degraded_fractions(self):
        rep = report(counts={"admitted": 50, "rejected": 50},
                     degradation={"normal": 60, "cached": 40})
        assert rep.reject_fraction == 0.5
        assert rep.degraded_fraction == pytest.approx(0.4)
        assert not SLO(max_reject_fraction=0.5).evaluate(rep).ok
        assert SLO(max_degraded_fraction=0.5).evaluate(rep).ok

    def test_lost_gate_is_the_durability_invariant(self):
        slo = parse_slo("lost<1")
        assert slo.evaluate(report()).ok
        failed = slo.evaluate(report(chaos_kills=1,
                                     chaos_lost=("c000004",)))
        assert not failed.ok
        assert failed.violations[0].metric == "lost"

    def test_multiple_violations_reported_together(self):
        result = SLO(max_p50_s=0.001, max_p99_s=0.001,
                     min_throughput=1000.0).evaluate(report())
        assert len(result.violations) == 3
        assert "3 violation(s)" in result.render()
        payload = result.as_dict()
        assert payload["ok"] is False
        assert len(payload["violations"]) == 3

    def test_as_dict_omits_disabled_bounds(self):
        assert SLO(max_p99_s=0.5).as_dict() == {"max_p99_s": 0.5}
