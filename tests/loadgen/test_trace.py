"""Trace tests: byte-identity, torn tails, bit-exact replay."""

import json

import pytest

from repro.context import AnalysisContext, MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.errors import LoadGenError
from repro.loadgen import (
    PoissonWorkload,
    RequestTemplate,
    TraceWriter,
    load_trace,
    replay,
    run_open_loop,
)
from repro.network.topology import Network, ServerSpec
from repro.service import AdmissionService

HOPS = 2


def make_service(tmp_path, tag):
    empty = Network([ServerSpec(k) for k in range(1, HOPS + 1)], [])
    return AdmissionService(
        empty, IntegratedAnalysis(), journal_dir=tmp_path / tag,
        ctx=AnalysisContext(metrics=MetricsRegistry()))


def workload(seed=3, rate=5.0, hold_s=0.4):
    return PoissonWorkload(seed, rate,
                           template=RequestTemplate(n_servers=HOPS),
                           hold_s=hold_s)


def record_run(tmp_path, tag, path, *, seed=3, include_latency=False):
    w = workload(seed=seed)
    events = w.schedule(3.0)
    service = make_service(tmp_path, tag)
    with TraceWriter(path, include_latency=include_latency) as writer:
        writer.write_header(workload=w.describe(),
                            driver={"mode": "open", "hops": HOPS})
        result = run_open_loop(service, events, duration_s=3.0,
                               offered_rate=5.0, writer=writer)
    result.service.close()
    return result


class TestRecording:
    def test_same_seed_records_byte_identical_traces(self, tmp_path):
        record_run(tmp_path, "a", tmp_path / "a.jsonl")
        record_run(tmp_path, "b", tmp_path / "b.jsonl")
        assert (tmp_path / "a.jsonl").read_bytes() == \
               (tmp_path / "b.jsonl").read_bytes()

    def test_different_seed_records_different_trace(self, tmp_path):
        record_run(tmp_path, "a", tmp_path / "a.jsonl", seed=3)
        record_run(tmp_path, "b", tmp_path / "b.jsonl", seed=4)
        assert (tmp_path / "a.jsonl").read_bytes() != \
               (tmp_path / "b.jsonl").read_bytes()

    def test_rerecording_truncates_stale_trace(self, tmp_path):
        """Recording twice to one path must not append run to run."""
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        first = path.read_bytes()
        record_run(tmp_path, "b", path)
        assert path.read_bytes() == first
        header, _ = load_trace(path)  # single header survives
        assert header["v"] == 1

    def test_header_and_events_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = record_run(tmp_path, "a", path)
        header, events = load_trace(path)
        assert header["canonical"] is True
        assert header["workload"]["kind"] == "poisson"
        assert len(events) == len(result.records)
        admits = [e for e in events if e["op"] == "admit"]
        assert all("latency_s" not in e for e in admits)
        assert all(e["bound_hex"] for e in admits
                   if e["outcome"] == "admitted")

    def test_include_latency_marks_trace_non_canonical(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path, include_latency=True)
        header, events = load_trace(path)
        assert header["canonical"] is False
        assert all("latency_s" in e and "lag_s" in e for e in events)

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(LoadGenError):
            TraceWriter(tmp_path / "t.jsonl", flush_every=0)


class TestLoadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(LoadGenError, match="no trace"):
            load_trace(tmp_path / "absent.jsonl")

    def test_missing_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind":"event","op":"release","name":"x",'
                        '"outcome":"skipped","i":0,"t":0.0}\n')
        with pytest.raises(LoadGenError, match="no header"):
            load_trace(path)

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        _, events = load_trace(path)
        data = path.read_bytes()
        path.write_bytes(data + b'{"kind":"event","truncat')
        header, survived = load_trace(path)
        assert len(survived) == len(events)

    def test_corruption_mid_file_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5]  # tear a line that is not the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LoadGenError, match="corrupt trace line"):
            load_trace(path)

    def test_unknown_record_kind_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind":"comment"}\n')
        with pytest.raises(LoadGenError, match="unknown trace record"):
            load_trace(path)


class TestReplay:
    def test_replay_reproduces_every_decision(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        fresh = make_service(tmp_path, "replay")
        report = replay(path, fresh)
        fresh.close()
        assert report.ok
        assert report.events > 0
        assert "deterministic" in report.render()

    def test_replay_detects_tampered_outcome(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        header, events = load_trace(path)
        victim = next(e for e in events if e["op"] == "admit")
        victim["outcome"] = ("rejected"
                            if victim["outcome"] == "admitted"
                            else "admitted")
        fresh = make_service(tmp_path, "replay")
        report = replay((header, events), fresh)
        fresh.close()
        assert not report.ok
        assert any(m.field == "outcome" for m in report.mismatches)
        assert "MISMATCH" in report.render()

    def test_replay_detects_tampered_bound(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        header, events = load_trace(path)
        victim = next(e for e in events
                      if e["op"] == "admit" and e["outcome"] == "admitted")
        victim["bound_hex"] = float(1e9).hex()
        fresh = make_service(tmp_path, "replay")
        report = replay((header, events), fresh)
        fresh.close()
        mismatched = {m.field for m in report.mismatches}
        assert "bound_hex" in mismatched

    def test_replay_rejects_event_without_request(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        header, events = load_trace(path)
        victim = next(e for e in events if e["op"] == "admit")
        del victim["request"]
        fresh = make_service(tmp_path, "replay")
        with pytest.raises(LoadGenError, match="no replayable request"):
            replay((header, events), fresh)
        fresh.close()

    def test_replay_calls_back_per_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run(tmp_path, "a", path)
        seen = []
        fresh = make_service(tmp_path, "replay")
        replay(path, fresh, on_event=lambda i, rec: seen.append(i))
        fresh.close()
        _, events = load_trace(path)
        assert seen == list(range(len(events)))


def test_trace_records_are_compact_sorted_json(tmp_path):
    """Byte-stability rests on canonical JSON encoding — pin it."""
    path = tmp_path / "t.jsonl"
    record_run(tmp_path, "a", path)
    for line in path.read_text().splitlines():
        rec = json.loads(line)
        assert line == json.dumps(rec, sort_keys=True,
                                  separators=(",", ":"))
