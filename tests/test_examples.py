"""Smoke tests: every shipped example must run to completion.

Examples are executable documentation; these tests keep them from
rotting.  Each runs in a subprocess with the repository's interpreter;
the slower full-sweep example uses its --quick flag.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

CASES = [
    ("quickstart.py", []),
    ("paper_walkthrough.py", []),
    ("tandem_evaluation.py", ["--quick"]),
    ("admission_control.py", []),
    ("simulation_validation.py", []),
    ("custom_topology.py", []),
    ("two_server_kernels.py", []),
    ("atm_cells.py", []),
    ("feedback_ring.py", []),
    ("network_diagnosis.py", []),
    ("fault_injection.py", []),
    ("load_test.py", []),
]


@pytest.mark.parametrize("script,args", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} missing"
    proc = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


def test_every_example_file_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {c[0] for c in CASES}
    assert on_disk == covered, (
        f"examples not smoke-tested: {on_disk - covered} / "
        f"stale entries: {covered - on_disk}")
