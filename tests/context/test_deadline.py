"""Unit tests for the cooperative Deadline."""

import signal

import pytest

from repro.context import Deadline
from repro.errors import AnalysisError, AnalysisTimeoutError


class FakeClock:
    """Injectable monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestDeadline:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_fresh_deadline_passes_check(self):
        clock = FakeClock()
        dl = Deadline(2.0, clock=clock)
        dl.check()
        assert not dl.expired()
        assert dl.remaining() == pytest.approx(2.0)

    def test_check_raises_after_budget(self):
        clock = FakeClock()
        dl = Deadline(2.0, "my test", clock=clock)
        clock.advance(2.5)
        assert dl.expired()
        with pytest.raises(AnalysisTimeoutError) as ei:
            dl.check("propagation")
        err = ei.value
        assert err.budget == pytest.approx(2.0)
        assert err.elapsed == pytest.approx(2.5)
        assert "my test" in str(err)
        assert "propagation" in str(err)
        assert isinstance(err, AnalysisError)  # chain-catchable

    def test_elapsed_and_remaining_track_clock(self):
        clock = FakeClock()
        dl = Deadline(5.0, clock=clock)
        clock.advance(1.5)
        assert dl.elapsed() == pytest.approx(1.5)
        assert dl.remaining() == pytest.approx(3.5)

    def test_restart_resets_clock(self):
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert dl.expired()
        dl.restart()
        assert not dl.expired()
        dl.check()

    def test_cancel_makes_check_raise(self):
        clock = FakeClock()
        dl = Deadline(100.0, "abandoned work", clock=clock)
        dl.check()
        dl.cancel()
        assert dl.cancelled
        assert dl.expired()
        with pytest.raises(AnalysisTimeoutError) as ei:
            dl.check("next checkpoint")
        assert "cancelled" in str(ei.value)
        assert "next checkpoint" in str(ei.value)

    def test_restart_clears_cancellation(self):
        dl = Deadline(10.0)
        dl.cancel()
        dl.restart()
        assert not dl.cancelled
        dl.check()


class TestSignalBackstop:
    def test_preempts_noncooperative_code(self):
        import time

        dl = Deadline(0.1, "tight loop")
        with pytest.raises(AnalysisTimeoutError) as ei:
            with dl.signal_backstop():
                time.sleep(5)
        assert "signal backstop" in str(ei.value)

    def test_restores_handler_and_timer(self):
        import time

        before = signal.getsignal(signal.SIGALRM)
        dl = Deadline(0.05)
        with pytest.raises(AnalysisTimeoutError):
            with dl.signal_backstop():
                time.sleep(1)
        assert signal.getsignal(signal.SIGALRM) is before
        delay, interval = signal.setitimer(signal.ITIMER_REAL, 0)
        try:
            # only the suite's own hang guard may remain pending — the
            # backstop's 0.05s timer must be gone
            assert delay == 0.0 or delay > 10.0
        finally:
            if delay:  # re-arm the hang guard we just read off
                signal.setitimer(signal.ITIMER_REAL, delay, interval)

    def test_noop_when_budget_already_spent(self):
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        # must not arm a zero/negative timer; the block runs and the
        # next cooperative check reports the expiry
        with dl.signal_backstop():
            pass
        with pytest.raises(AnalysisTimeoutError):
            dl.check()

    def test_noop_off_main_thread(self):
        import threading

        outcome: dict = {}

        def run():
            dl = Deadline(0.05)
            try:
                with dl.signal_backstop():
                    outcome["entered"] = True
            except Exception as exc:  # pragma: no cover
                outcome["error"] = exc

        t = threading.Thread(target=run)
        t.start()
        t.join(timeout=3)
        assert outcome.get("entered") is True
        assert "error" not in outcome

    def test_rearms_outer_timer(self):
        import time

        fired = []
        prev = signal.signal(signal.SIGALRM, lambda s, f: fired.append(s))
        signal.setitimer(signal.ITIMER_REAL, 10.0)
        try:
            dl = Deadline(5.0)
            with dl.signal_backstop():
                time.sleep(0.01)
            delay, _ = signal.setitimer(signal.ITIMER_REAL, 0)
            assert 0.0 < delay <= 10.0
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, prev)
        assert not fired
