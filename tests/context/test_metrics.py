"""Unit tests for MetricsRegistry and the thread-local kernel hook."""

import math
import threading

import pytest

from repro.context import (
    MetricsRegistry,
    QuantileReservoir,
    activate_registry,
    active_registry,
    kernel_count,
)


class TestMetricsRegistry:
    def test_inc_get(self):
        reg = MetricsRegistry()
        assert reg.get("a") == 0.0
        reg.inc("a")
        reg.inc("a", 2.5)
        assert reg.get("a") == pytest.approx(3.5)

    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.inc("gauge", 7)
        reg.set("gauge", 2)
        assert reg.get("gauge") == 2.0

    def test_timed_accumulates_seconds_and_count(self):
        reg = MetricsRegistry()
        with reg.timed("phase"):
            pass
        with reg.timed("phase"):
            pass
        assert reg.get("phase.n") == 2.0
        assert reg.timer_s("phase") >= 0.0
        assert reg.timer_s("phase") == reg.get("phase.s")

    def test_as_dict_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("engine.hits")
        reg.inc("curve.convolve", 3)
        assert reg.as_dict("engine.") == {"engine.hits": 1.0}
        assert set(reg.as_dict()) == {"engine.hits", "curve.convolve"}

    def test_merge_into_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 2)
        b.inc("x", 3)
        b.inc("y", 1)
        b.merge_into(a)
        assert a.get("x") == 5.0
        assert a.get("y") == 1.0
        assert b.get("x") == 3.0  # source unchanged

    def test_reset_prefix(self):
        reg = MetricsRegistry()
        reg.inc("engine.hits")
        reg.inc("curve.convolve")
        reg.reset("engine.")
        assert reg.get("engine.hits") == 0.0
        assert reg.get("curve.convolve") == 1.0
        reg.reset()
        assert len(reg) == 0


class TestActiveRegistry:
    def test_kernel_count_noop_without_registry(self):
        assert active_registry() is None
        kernel_count("curve.convolve")  # must not raise

    def test_kernel_count_lands_in_active_registry(self):
        reg = MetricsRegistry()
        with activate_registry(reg):
            assert active_registry() is reg
            kernel_count("curve.convolve")
            kernel_count("curve.convolve", 2)
        assert active_registry() is None
        assert reg.get("curve.convolve") == 3.0

    def test_nested_activations_stack(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with activate_registry(outer):
            kernel_count("op")
            with activate_registry(inner):
                kernel_count("op")
            with activate_registry(None):  # disable counting
                kernel_count("op")
            kernel_count("op")
        assert outer.get("op") == 2.0
        assert inner.get("op") == 1.0

    def test_registry_is_thread_local(self):
        reg = MetricsRegistry()
        seen: dict = {}

        def other_thread():
            seen["active"] = active_registry()
            kernel_count("op")  # must be a no-op over there

        with activate_registry(reg):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join(timeout=3)
        assert seen["active"] is None
        assert reg.get("op") == 0.0


class TestQuantileReservoir:
    def test_empty_is_nan(self):
        res = QuantileReservoir()
        assert res.count == 0
        assert math.isnan(res.max)
        assert math.isnan(res.mean)
        assert math.isnan(res.quantile(0.5))
        assert math.isnan(res.summary()["p99"])

    def test_exact_quantiles_small_sample(self):
        res = QuantileReservoir()
        for v in range(1, 101):  # 1..100
            res.observe(float(v))
        assert res.exact
        assert res.count == 100
        assert res.max == 100.0
        assert res.mean == pytest.approx(50.5)
        assert res.quantile(0.5) == 50.0
        assert res.quantile(0.95) == 95.0
        assert res.quantile(0.99) == 99.0
        assert res.quantile(0.0) == 1.0
        assert res.quantile(1.0) == 100.0

    def test_summary_matches_quantiles(self):
        res = QuantileReservoir()
        for v in (3.0, 1.0, 2.0):
            res.observe(v)
        s = res.summary()
        assert s["count"] == 3.0
        assert s["p50"] == res.quantile(0.5)
        assert s["max"] == 3.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            QuantileReservoir().quantile(1.5)
        with pytest.raises(ValueError):
            QuantileReservoir(capacity=0)

    def test_sampling_past_capacity_stays_bounded_and_exact_stats(self):
        res = QuantileReservoir(capacity=64, seed=1)
        for v in range(1000):
            res.observe(float(v))
        assert not res.exact
        assert res.count == 1000
        assert res.max == 999.0  # max is exact even while sampling
        assert res.mean == pytest.approx(499.5)
        # retained sample stays capped and representative
        assert len(res._samples) == 64
        assert 200.0 < res.quantile(0.5) < 800.0

    def test_sampling_is_deterministic_per_seed(self):
        def fill(seed):
            res = QuantileReservoir(capacity=32, seed=seed)
            for v in range(500):
                res.observe(float(v))
            return res.summary()

        assert fill(7) == fill(7)

    def test_gauge_into_publishes_metrics(self):
        reg = MetricsRegistry()
        res = QuantileReservoir()
        res.observe(1.0)
        res.observe(2.0)
        out = res.gauge_into(reg, "svc.latency")
        assert reg.get("svc.latency.p50") == out["p50"]
        assert reg.get("svc.latency.max") == 2.0
        assert reg.get("svc.latency.count") == 2.0
        # a None registry still returns the summary
        assert res.gauge_into(None, "x")["max"] == 2.0


class TestThreadSafety:
    """Regression: shared registries are hammered from worker threads
    (service latency bookkeeping, the load harness) and unlocked
    read-modify-writes silently lose counts."""

    def test_concurrent_inc_loses_nothing(self):
        import threading

        reg = MetricsRegistry()
        n_threads, n_incs = 8, 2500
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for _ in range(n_incs):
                reg.inc("hits")
                reg.add("bytes", 2.0)

        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.get("hits") == float(n_threads * n_incs)
        assert reg.get("bytes") == float(2 * n_threads * n_incs)

    def test_concurrent_observe_loses_nothing(self):
        import threading

        res = QuantileReservoir(capacity=128)
        n_threads, n_obs = 8, 2000
        start = threading.Barrier(n_threads)

        def hammer(base):
            start.wait()
            for i in range(n_obs):
                res.observe(float(base + i))

        threads = [threading.Thread(target=hammer, args=(k * n_obs,))
                   for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert res.count == n_threads * n_obs
        assert res.max == float(n_threads * n_obs - 1)
        total = sum(range(n_threads * n_obs))
        assert res.mean == pytest.approx(total / (n_threads * n_obs))
        assert len(res._samples) == 128

    def test_merge_into_cross_merge_does_not_deadlock(self):
        import threading

        a, b = MetricsRegistry(), MetricsRegistry()
        for k in range(50):
            a.inc(f"a{k}")
            b.inc(f"b{k}")
        start = threading.Barrier(2)

        def merge(src, dst):
            start.wait()
            for _ in range(200):
                src.merge_into(dst)

        t1 = threading.Thread(target=merge, args=(a, b))
        t2 = threading.Thread(target=merge, args=(b, a))
        t1.start(); t2.start()
        t1.join(timeout=30); t2.join(timeout=30)
        assert not t1.is_alive() and not t2.is_alive()

    def test_reads_are_consistent_under_writes(self):
        import threading

        reg = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                reg.inc("w")
                reg.set("gauge", 1.0)
                reg.reset("gone.")

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(2000):
                snap = reg.as_dict()
                assert all(isinstance(v, float) for v in snap.values())
                len(reg)
        finally:
            stop.set()
            t.join()
