"""Unit tests for MetricsRegistry and the thread-local kernel hook."""

import threading

import pytest

from repro.context import (
    MetricsRegistry,
    activate_registry,
    active_registry,
    kernel_count,
)


class TestMetricsRegistry:
    def test_inc_get(self):
        reg = MetricsRegistry()
        assert reg.get("a") == 0.0
        reg.inc("a")
        reg.inc("a", 2.5)
        assert reg.get("a") == pytest.approx(3.5)

    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.inc("gauge", 7)
        reg.set("gauge", 2)
        assert reg.get("gauge") == 2.0

    def test_timed_accumulates_seconds_and_count(self):
        reg = MetricsRegistry()
        with reg.timed("phase"):
            pass
        with reg.timed("phase"):
            pass
        assert reg.get("phase.n") == 2.0
        assert reg.timer_s("phase") >= 0.0
        assert reg.timer_s("phase") == reg.get("phase.s")

    def test_as_dict_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("engine.hits")
        reg.inc("curve.convolve", 3)
        assert reg.as_dict("engine.") == {"engine.hits": 1.0}
        assert set(reg.as_dict()) == {"engine.hits", "curve.convolve"}

    def test_merge_into_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 2)
        b.inc("x", 3)
        b.inc("y", 1)
        b.merge_into(a)
        assert a.get("x") == 5.0
        assert a.get("y") == 1.0
        assert b.get("x") == 3.0  # source unchanged

    def test_reset_prefix(self):
        reg = MetricsRegistry()
        reg.inc("engine.hits")
        reg.inc("curve.convolve")
        reg.reset("engine.")
        assert reg.get("engine.hits") == 0.0
        assert reg.get("curve.convolve") == 1.0
        reg.reset()
        assert len(reg) == 0


class TestActiveRegistry:
    def test_kernel_count_noop_without_registry(self):
        assert active_registry() is None
        kernel_count("curve.convolve")  # must not raise

    def test_kernel_count_lands_in_active_registry(self):
        reg = MetricsRegistry()
        with activate_registry(reg):
            assert active_registry() is reg
            kernel_count("curve.convolve")
            kernel_count("curve.convolve", 2)
        assert active_registry() is None
        assert reg.get("curve.convolve") == 3.0

    def test_nested_activations_stack(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with activate_registry(outer):
            kernel_count("op")
            with activate_registry(inner):
                kernel_count("op")
            with activate_registry(None):  # disable counting
                kernel_count("op")
            kernel_count("op")
        assert outer.get("op") == 2.0
        assert inner.get("op") == 1.0

    def test_registry_is_thread_local(self):
        reg = MetricsRegistry()
        seen: dict = {}

        def other_thread():
            seen["active"] = active_registry()
            kernel_count("op")  # must be a no-op over there

        with activate_registry(reg):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join(timeout=3)
        assert seen["active"] is None
        assert reg.get("op") == 0.0
