"""Differential guarantees of the execution layer.

The context must be *observation only*: running any analysis under full
tracing/metrics — or under a deadline that never fires — must produce a
report bit-identical (exact float ``==``) to the NULL_CONTEXT run.  And
when a deadline does fire mid-propagation, the failure must be a
structured :class:`AnalysisTimeoutError` with the partial trace still
exportable.
"""

import json

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.context import AnalysisContext, Deadline
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.engine import (
    IncrementalEngine,
    describe_report_difference,
    reports_identical,
)
from repro.errors import AnalysisTimeoutError
from repro.network.flow import Flow
from repro.network.generators import random_feedforward
from repro.network.tandem import build_tandem

FACTORIES = [DecomposedAnalysis, IntegratedAnalysis, ServiceCurveAnalysis]


class TickingClock:
    """Monotonic clock advancing one second per observation."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


@pytest.mark.parametrize("factory", FACTORIES, ids=lambda f: f.__name__)
def test_traced_run_bit_identical(factory):
    net = build_tandem(4, 0.7)
    want = factory().analyze(net)
    ctx = AnalysisContext.tracing()
    got = factory().analyze(net, ctx=ctx)
    assert reports_identical(got, want), \
        describe_report_difference(got, want)
    assert ctx.tracer.n_spans > 0
    assert len(ctx.metrics) > 0


@pytest.mark.parametrize("factory", FACTORIES, ids=lambda f: f.__name__)
def test_generous_deadline_bit_identical(factory):
    net = build_tandem(4, 0.7)
    want = factory().analyze(net)
    ctx = AnalysisContext.tracing(deadline=Deadline(3600.0))
    got = factory().analyze(net, ctx=ctx)
    assert reports_identical(got, want), \
        describe_report_difference(got, want)


@pytest.mark.parametrize("factory", [DecomposedAnalysis,
                                     IntegratedAnalysis],
                         ids=lambda f: f.__name__)
def test_traced_run_bit_identical_random_networks(factory):
    net = random_feedforward(seed=11, n_servers=7, n_flows=8,
                             max_utilization=0.5)
    want = factory().analyze(net)
    got = factory().analyze(net, ctx=AnalysisContext.tracing())
    assert reports_identical(got, want), \
        describe_report_difference(got, want)


def test_engine_under_tracing_bit_identical():
    base = random_feedforward(seed=3, n_servers=6, n_flows=6,
                              max_utilization=0.5)
    engine = IncrementalEngine(DecomposedAnalysis(), base)
    cold = DecomposedAnalysis()
    ctx = AnalysisContext.tracing()
    servers = sorted(base.servers, key=str)

    net = base
    for k in range(4):
        flow = Flow(f"extra{k}", TokenBucket(0.3, 0.02),
                    tuple(servers[k % 2:k % 2 + 3]), deadline=500.0)
        candidate = net.with_flow(flow)
        want = cold.analyze(candidate)
        got = engine.admit(flow, ctx=ctx)
        assert reports_identical(got, want), \
            describe_report_difference(got, want)
        net = candidate

    # the engine's verdict counters are mirrored into the context
    assert ctx.metrics.get("engine.queries") == engine.stats.queries
    assert ctx.metrics.get("engine.hits") == engine.stats.hits
    assert engine.stats.queries == 4


def test_deadline_expiry_mid_propagation_flushes_partial_trace(tmp_path):
    net = build_tandem(6, 0.7)
    # one tick per deadline observation: the budget survives the first
    # couple of server steps, then expires strictly mid-propagation
    deadline = Deadline(4.5, "expiry test", clock=TickingClock())
    ctx = AnalysisContext.tracing(deadline=deadline)

    with pytest.raises(AnalysisTimeoutError) as ei:
        DecomposedAnalysis().analyze(net, ctx=ctx)
    err = ei.value
    assert err.budget == pytest.approx(4.5)
    assert err.elapsed >= 4.5
    assert "expiry test" in str(err)

    # the analyze span aborted but survived; some server steps completed
    (root,) = ctx.tracer.roots
    assert root.name == "analyze"
    assert root.status == "aborted"
    steps = [c for c in root.children if c.name == "server_step"]
    assert 0 < len(steps) < 6

    # the partial trace still exports as valid JSON
    blob = json.loads(
        ctx.write_trace(tmp_path / "partial.json").read_text())
    assert blob["spans"][0]["status"] == "aborted"
    assert "AnalysisTimeoutError" in blob["spans"][0]["attrs"]["error"]
