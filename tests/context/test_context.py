"""Unit tests for AnalysisContext / NullContext plumbing."""

import json
from types import SimpleNamespace

import pytest

from repro.context import (
    NULL_CONTEXT,
    AnalysisContext,
    Deadline,
    MetricsRegistry,
    NullContext,
    Tracer,
    active_registry,
)
from repro.errors import AnalysisTimeoutError
from tests.context.test_deadline import FakeClock


def _unit(flows=()):
    """A stand-in for ServerInput/BlockInput (only .flows/.kind used)."""
    return SimpleNamespace(flows=flows, kind="theorem1")


class TestBuilders:
    def test_tracing_builder_is_fully_instrumented(self):
        ctx = AnalysisContext.tracing()
        assert ctx.tracer is not None
        assert ctx.metrics is not None
        assert ctx.deadline is None

    def test_with_deadline_shares_observability(self):
        base = AnalysisContext.tracing()
        dl = Deadline(10.0)
        derived = base.with_deadline(dl)
        assert derived.deadline is dl
        assert derived.tracer is base.tracer
        assert derived.metrics is base.metrics
        assert base.deadline is None  # original untouched

    def test_null_context_derivations_enforce(self):
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        derived = NULL_CONTEXT.with_deadline(dl)
        # a NullContext-derived copy must be a real enforcing context
        assert not isinstance(derived, NullContext)
        clock.advance(2.0)
        with pytest.raises(AnalysisTimeoutError):
            derived.checkpoint("after expiry")

    def test_with_interceptors_shares_deadline(self):
        dl = Deadline(10.0)
        base = AnalysisContext(deadline=dl)
        step = lambda sid, si: "memo"  # noqa: E731
        derived = base.with_interceptors(step=step)
        assert derived.step_interceptor is step
        assert derived.deadline is dl


class TestPrimitives:
    def test_checkpoint_count_annotate_are_noops_unconfigured(self):
        ctx = AnalysisContext()
        ctx.checkpoint("free")
        ctx.count("x")
        ctx.annotate(k=1)
        with ctx.span("s"):
            pass
        with ctx.timed("t"):
            pass

    def test_count_lands_in_registry(self):
        ctx = AnalysisContext(metrics=MetricsRegistry())
        ctx.count("admission.requests")
        ctx.count("engine.spent_s", 0.5)
        assert ctx.metrics.get("admission.requests") == 1.0
        assert ctx.metrics.get("engine.spent_s") == 0.5

    def test_analysis_scope_activates_registry(self):
        ctx = AnalysisContext.tracing()
        assert active_registry() is None
        with ctx.analysis_scope("decomposed"):
            assert active_registry() is ctx.metrics
        assert active_registry() is None
        (root,) = ctx.tracer.roots
        assert root.name == "analyze"
        assert root.attrs["algorithm"] == "decomposed"

    def test_null_singleton_is_pure_passthrough(self):
        si = _unit()
        out = NULL_CONTEXT.run_server_step("s1", si, lambda x: ("pure", x))
        assert out == ("pure", si)


class TestStepDispatch:
    def test_interceptor_replaces_compute(self):
        calls = []
        ctx = AnalysisContext(
            step_interceptor=lambda sid, si: calls.append(sid) or "memo")
        out = ctx.run_server_step("s1", _unit(), lambda si: "pure")
        assert out == "memo"
        assert calls == ["s1"]

    def test_compute_used_without_interceptor(self):
        ctx = AnalysisContext(metrics=MetricsRegistry())
        out = ctx.run_server_step("s1", _unit(), lambda si: "pure")
        assert out == "pure"
        assert ctx.metrics.get("analysis.server_steps") == 1.0

    def test_block_step_traced_and_counted(self):
        ctx = AnalysisContext.tracing()
        out = ctx.run_block_step((1, 2), _unit(flows=("f",)),
                                 lambda bi: "joint")
        assert out == "joint"
        assert ctx.metrics.get("analysis.block_steps") == 1.0
        (sp,) = ctx.tracer.roots
        assert sp.name == "block"
        assert sp.attrs["servers"] == str((1, 2))

    def test_deadline_checked_at_step_boundary(self):
        clock = FakeClock()
        dl = Deadline(1.0, "unit test", clock=clock)
        ctx = AnalysisContext(deadline=dl)
        ctx.run_server_step("s1", _unit(), lambda si: None)
        clock.advance(2.0)
        with pytest.raises(AnalysisTimeoutError):
            ctx.run_server_step("s1", _unit(), lambda si: None)
        with pytest.raises(AnalysisTimeoutError):
            ctx.run_block_step((1,), _unit(), lambda bi: None)


class TestExport:
    def test_export_merges_spans_counters_meta(self, tmp_path):
        ctx = AnalysisContext.tracing()
        with ctx.span("analyze", algorithm="integrated"):
            ctx.count("curve.convolve", 4)
        blob = ctx.export(command="unit-test")
        assert blob["trace_version"] == 1
        assert blob["meta"] == {"command": "unit-test"}
        assert blob["counters"]["curve.convolve"] == 4.0
        assert blob["spans"][0]["name"] == "analyze"

        path = ctx.write_trace(tmp_path / "t.json", command="unit-test")
        assert json.loads(path.read_text()) == blob

    def test_write_trace_flushes_open_spans(self, tmp_path):
        ctx = AnalysisContext.tracing()
        ctx.tracer.span("left_open").__enter__()
        path = ctx.write_trace(tmp_path / "partial.json")
        blob = json.loads(path.read_text())
        assert blob["spans"][0]["status"] == "aborted"
