"""Unit tests for the span tracer."""

import json

import pytest

from repro.context import Tracer


class TestSpanNesting:
    def test_sibling_and_child_structure(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("a1"):
                pass
            with tr.span("a2"):
                pass
        with tr.span("b"):
            pass
        assert [s.name for s in tr.roots] == ["a", "b"]
        (a, b) = tr.roots
        assert [c.name for c in a.children] == ["a1", "a2"]
        assert b.children == []
        assert tr.n_spans == 4
        assert tr.depth == 0

    def test_span_timing_and_status(self):
        tr = Tracer()
        with tr.span("work") as sp:
            assert sp.status == "open"
        assert sp.status == "ok"
        assert sp.duration_s >= 0.0
        assert sp.start_s >= 0.0

    def test_attrs_and_annotate(self):
        tr = Tracer()
        with tr.span("s", server=3):
            tr.annotate(delay=1.5)
        (sp,) = tr.roots
        assert sp.attrs == {"server": 3, "delay": 1.5}

    def test_annotate_outside_span_is_noop(self):
        tr = Tracer()
        tr.annotate(ignored=True)
        assert tr.roots == ()

    def test_exception_aborts_span_and_propagates(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        (outer,) = tr.roots
        (inner,) = outer.children
        assert inner.status == "aborted"
        assert outer.status == "aborted"
        assert "boom" in inner.attrs["error"]
        assert tr.depth == 0


class TestCaps:
    def test_max_spans_drops_but_keeps_counting(self):
        tr = Tracer(max_spans=2)
        for _ in range(5):
            with tr.span("s") as sp:
                pass
        assert tr.n_spans == 2
        assert tr.dropped == 3
        assert sp is None  # over-cap spans yield None

    def test_rejects_bad_max_spans(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestExport:
    def test_as_dict_round_trips_through_json(self):
        tr = Tracer()
        with tr.span("analyze", algorithm="decomposed"):
            with tr.span("server_step", server="1", weird=object()):
                pass
        blob = json.loads(tr.to_json())
        assert blob["n_spans"] == 2
        (root,) = blob["spans"]
        assert root["name"] == "analyze"
        (child,) = root["children"]
        # non-JSON attr values are coerced via repr
        assert isinstance(child["attrs"]["weird"], str)

    def test_flush_open_closes_stack(self):
        tr = Tracer()
        cm = tr.span("hanging")
        cm.__enter__()
        assert tr.depth == 1
        n = tr.flush_open("timeout post-mortem")
        assert n == 1
        assert tr.depth == 0
        (sp,) = tr.roots
        assert sp.status == "aborted"
        assert sp.attrs["error"] == "timeout post-mortem"

    def test_write_flushes_and_writes(self, tmp_path):
        tr = Tracer()
        cm = tr.span("open_at_export")
        cm.__enter__()
        path = tr.write(tmp_path / "trace.json")
        blob = json.loads(path.read_text())
        assert blob["spans"][0]["status"] == "aborted"
