"""Edge cases of the structural edit methods used by fault injection
and the incremental engine: ``replace_server``, ``without_server`` and
``replace_flow``."""

import pytest

from repro.curves.token_bucket import TokenBucket
from repro.errors import TopologyError
from repro.network.flow import Flow
from repro.network.topology import Network, ServerSpec


def flow(name, path, rho=0.1):
    return Flow(name, TokenBucket(1.0, rho), tuple(path))


def net3():
    return Network([ServerSpec(k) for k in (1, 2, 3)],
                   [flow("a", [1, 2, 3]), flow("b", [2, 3]),
                    flow("c", [3])])


class TestReplaceServer:
    def test_swaps_spec_keeps_flows(self):
        out = net3().replace_server(ServerSpec(2, capacity=5.0))
        assert out.server(2).capacity == 5.0
        assert set(out.flows) == {"a", "b", "c"}

    def test_unknown_server_raises(self):
        with pytest.raises(TopologyError):
            net3().replace_server(ServerSpec(9))

    def test_original_untouched(self):
        base = net3()
        base.replace_server(ServerSpec(1, capacity=2.0))
        assert base.server(1).capacity != 2.0

    def test_version_counter_advances(self):
        base = net3()
        out = base.replace_server(ServerSpec(1, capacity=2.0))
        assert out.version > base.version

    def test_content_key_tracks_spec_change(self):
        base = net3()
        same = Network(base.servers.values(), base.flows.values())
        changed = base.replace_server(ServerSpec(1, capacity=2.0))
        assert base.content_key() == same.content_key()
        assert base.content_key() != changed.content_key()


class TestWithoutServer:
    def test_severs_traversing_flows(self):
        out = net3().without_server(2)
        assert set(out.servers) == {1, 3}
        # 'a' and 'b' traverse server 2 and are severed with it
        assert set(out.flows) == {"c"}

    def test_no_dangling_path_references(self):
        out = net3().without_server(2)
        for f in out.flows.values():
            assert all(sid in out.servers for sid in f.path)

    def test_removing_every_server_leaves_empty_network(self):
        out = net3().without_server(3).without_server(2) \
                    .without_server(1)
        assert not out.servers and not out.flows
        out.check_stability()  # trivially stable

    def test_unknown_server_raises(self):
        with pytest.raises(TopologyError):
            net3().without_server(0)

    def test_result_rejects_flow_through_removed_server(self):
        out = net3().without_server(2)
        with pytest.raises(TopologyError):
            out.with_flow(flow("d", [1, 2]))


class TestReplaceFlow:
    def test_swaps_same_name(self):
        out = net3().replace_flow(flow("b", [1, 2], rho=0.3))
        assert out.flow("b").path == (1, 2)
        assert out.flow("b").bucket.rho == 0.3
        assert len(out.flows) == 3

    def test_unknown_flow_raises(self):
        with pytest.raises(TopologyError):
            net3().replace_flow(flow("zz", [1]))

    def test_new_path_must_exist(self):
        with pytest.raises(TopologyError):
            net3().replace_flow(flow("a", [1, 2, 99]))

    def test_replace_on_empty_network_raises(self):
        empty = Network([], [])
        with pytest.raises(TopologyError):
            empty.replace_flow(flow("a", [1]))

    def test_duplicate_ids_still_rejected_after_edits(self):
        out = net3().without_flow("a")
        with pytest.raises(TopologyError):
            Network(list(out.servers.values()) + [ServerSpec(1)],
                    out.flows.values())
