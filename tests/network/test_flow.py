"""Unit tests for Flow (connections)."""

import math

import pytest

from repro.curves.token_bucket import TokenBucket
from repro.errors import FlowError
from repro.network.flow import Flow


@pytest.fixture
def tb():
    return TokenBucket(1.0, 0.25, peak=1.0)


class TestConstruction:
    def test_basic(self, tb):
        f = Flow("f", tb, [1, 2, 3])
        assert f.path == (1, 2, 3)
        assert f.n_hops == 3
        assert math.isinf(f.deadline)

    def test_empty_name_rejected(self, tb):
        with pytest.raises(FlowError):
            Flow("", tb, [1])

    def test_empty_path_rejected(self, tb):
        with pytest.raises(FlowError):
            Flow("f", tb, [])

    def test_repeating_path_rejected(self, tb):
        with pytest.raises(FlowError):
            Flow("f", tb, [1, 2, 1])

    def test_non_bucket_rejected(self):
        with pytest.raises(FlowError):
            Flow("f", "not a bucket", [1])

    def test_bad_deadline_rejected(self, tb):
        with pytest.raises(FlowError):
            Flow("f", tb, [1], deadline=0.0)

    def test_frozen(self, tb):
        f = Flow("f", tb, [1])
        with pytest.raises(AttributeError):
            f.name = "g"


class TestPathQueries:
    def test_traverses(self, tb):
        f = Flow("f", tb, [1, 2])
        assert f.traverses(1) and f.traverses(2)
        assert not f.traverses(3)

    def test_hop_index(self, tb):
        f = Flow("f", tb, ["a", "b", "c"])
        assert f.hop_index("b") == 1

    def test_hop_index_missing_raises(self, tb):
        with pytest.raises(FlowError):
            Flow("f", tb, [1]).hop_index(2)

    def test_next_hop(self, tb):
        f = Flow("f", tb, [1, 2, 3])
        assert f.next_hop(1) == 2
        assert f.next_hop(3) is None

    def test_with_deadline(self, tb):
        f = Flow("f", tb, [1], priority=2).with_deadline(5.0)
        assert f.deadline == 5.0
        assert f.priority == 2
        assert f.path == (1,)

    def test_str(self, tb):
        assert "f" in str(Flow("f", tb, [1]))
