"""Unit tests for the paper's Figure-3 tandem builder (experiment FIG3)."""

import math

import pytest

from repro.network.tandem import (
    CONNECTION0,
    build_tandem,
    long_name,
    short_name,
    tandem_rho,
)


class TestRho:
    def test_quarter_load(self):
        assert tandem_rho(0.8) == pytest.approx(0.2)

    def test_rejects_full_load(self):
        with pytest.raises(ValueError):
            tandem_rho(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tandem_rho(0.0)


class TestStructure:
    def test_flow_count_matches_paper(self):
        # 2n + 1 connections
        for n in (1, 3, 5):
            assert len(build_tandem(n, 0.5).flows) == 2 * n + 1

    def test_server_count(self):
        assert len(build_tandem(5, 0.5).servers) == 5

    def test_connection0_spans_all(self):
        net = build_tandem(4, 0.5)
        assert net.flow(CONNECTION0).path == (1, 2, 3, 4)

    def test_interior_ports_carry_four_connections(self):
        net = build_tandem(5, 0.5)
        for k in range(2, 6):
            assert len(net.flows_at(k)) == 4

    def test_first_port_carries_three(self):
        net = build_tandem(5, 0.5)
        assert len(net.flows_at(1)) == 3

    def test_cross_paths(self):
        net = build_tandem(4, 0.5)
        assert net.flow(short_name(2)).path == (2,)
        assert net.flow(long_name(2)).path == (2, 3)
        assert net.flow(long_name(4)).path == (4,)  # truncated at edge

    def test_single_switch(self):
        net = build_tandem(1, 0.5)
        assert len(net.flows) == 3
        assert net.flow(CONNECTION0).path == (1,)


class TestLoad:
    def test_interior_utilization_is_u(self):
        net = build_tandem(4, 0.72)
        for k in range(2, 5):
            assert net.utilization(k) == pytest.approx(0.72)

    def test_first_port_runs_lighter(self):
        net = build_tandem(4, 0.8)
        assert net.utilization(1) == pytest.approx(0.6)

    def test_stable_for_all_loads(self):
        for u in (0.1, 0.5, 0.99):
            build_tandem(3, u).check_stability()


class TestParameters:
    def test_sigma_scaling(self):
        net = build_tandem(2, 0.5, sigma=3.0)
        assert net.flow(CONNECTION0).bucket.sigma == 3.0

    def test_capacity_scaling(self):
        net = build_tandem(2, 0.8, capacity=155.0)
        assert net.server(1).capacity == 155.0
        assert net.flow(CONNECTION0).bucket.rho == pytest.approx(31.0)
        assert net.utilization(2) == pytest.approx(0.8)

    def test_peak_unlimited(self):
        net = build_tandem(2, 0.5, peak_limited=False)
        assert math.isinf(net.flow(CONNECTION0).bucket.peak)

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            build_tandem(0, 0.5)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            build_tandem(2, 0.5, sigma=0.0)
