"""Unit tests for the topology generators."""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.network.generators import (
    fat_tree,
    parking_lot,
    random_feedforward,
)


class TestParkingLot:
    def test_structure(self):
        net = parking_lot(4, 0.6)
        assert len(net.servers) == 4
        assert len(net.flows) == 5
        assert net.flow("long").n_hops == 4
        assert net.flow("cross_2").path == (2,)

    def test_utilization(self):
        net = parking_lot(3, 0.6)
        for k in (1, 2, 3):
            assert net.utilization(k) == pytest.approx(0.6)

    def test_analyzable(self):
        net = parking_lot(4, 0.7)
        di = IntegratedAnalysis().analyze(net).delay_of("long")
        dd = DecomposedAnalysis().analyze(net).delay_of("long")
        assert 0 < di <= dd

    def test_invalid(self):
        with pytest.raises(ValueError):
            parking_lot(0, 0.5)
        with pytest.raises(ValueError):
            parking_lot(2, 1.0)


class TestFatTree:
    def test_structure(self):
        net = fat_tree(2, 0.6)
        # 4 leaves + 2 mid + 1 root
        assert len(net.servers) == 7
        assert len(net.flows) == 4
        assert net.flow("leaf_0").n_hops == 3

    def test_root_utilization(self):
        net = fat_tree(3, 0.72)
        assert net.utilization((3, 0)) == pytest.approx(0.72)

    def test_upstream_lighter(self):
        net = fat_tree(2, 0.8)
        assert net.utilization((0, 0)) < net.utilization((2, 0))

    def test_analyzable_and_symmetric(self):
        net = fat_tree(2, 0.6)
        rep = DecomposedAnalysis().analyze(net)
        vals = {round(rep.delay_of(f"leaf_{i}"), 9) for i in range(4)}
        assert len(vals) == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            fat_tree(0, 0.5)


class TestRandomFeedforward:
    @pytest.mark.parametrize("seed", range(6))
    def test_stable_and_analyzable(self, seed):
        net = random_feedforward(seed)
        net.check_stability()
        assert net.max_utilization() < 0.9
        rep = IntegratedAnalysis().analyze(net)
        assert rep.all_finite()

    def test_deterministic(self):
        a = random_feedforward(7)
        b = random_feedforward(7)
        assert {f.name: f.path for f in a.flows.values()} == \
            {f.name: f.path for f in b.flows.values()}

    def test_seeds_differ(self):
        a = random_feedforward(1)
        b = random_feedforward(2)
        pa = {f.name: f.path for f in a.flows.values()}
        pb = {f.name: f.path for f in b.flows.values()}
        assert pa != pb

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_feedforward(0, n_servers=0)
        with pytest.raises(ValueError):
            random_feedforward(0, max_utilization=1.2)
