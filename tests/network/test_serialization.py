"""Unit tests for network JSON (de)serialization."""

import json
import math

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.errors import TopologyError
from repro.network.generators import parking_lot
from repro.network.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec
from repro.network.flow import Flow
from repro.curves.token_bucket import TokenBucket


class TestRoundTrip:
    def test_tandem_roundtrip(self):
        net = build_tandem(3, 0.6)
        back = network_from_dict(network_to_dict(net))
        assert set(back.flows) == set(net.flows)
        assert back.flow(CONNECTION0).path == net.flow(CONNECTION0).path
        assert back.flow(CONNECTION0).bucket == \
            net.flow(CONNECTION0).bucket

    def test_analysis_identical_after_roundtrip(self):
        net = parking_lot(3, 0.7)
        back = network_from_dict(network_to_dict(net))
        a = DecomposedAnalysis().analyze(net).delay_of("long")
        b = DecomposedAnalysis().analyze(back).delay_of("long")
        assert a == pytest.approx(b, rel=1e-12)

    def test_infinite_fields_become_null(self):
        net = build_tandem(2, 0.5, peak_limited=False)
        doc = network_to_dict(net)
        flow_doc = next(f for f in doc["flows"]
                        if f["name"] == CONNECTION0)
        assert flow_doc["peak"] is None
        assert flow_doc["deadline"] is None
        back = network_from_dict(doc)
        assert math.isinf(back.flow(CONNECTION0).bucket.peak)

    def test_priorities_and_deadlines_roundtrip(self):
        tb = TokenBucket(1.0, 0.1, peak=1.0)
        net = Network(
            [ServerSpec("s", 2.0, "static_priority")],
            [Flow("f", tb, ("s",), deadline=7.5, priority=3)])
        back = network_from_dict(network_to_dict(net))
        f = back.flow("f")
        assert f.deadline == 7.5 and f.priority == 3
        assert back.server("s").capacity == 2.0

    def test_allow_cycles_roundtrip(self):
        tb = TokenBucket(1.0, 0.1, peak=1.0)
        net = Network([ServerSpec(0), ServerSpec(1)],
                      [Flow("a", tb, (0, 1)), Flow("b", tb, (1, 0))],
                      allow_cycles=True)
        back = network_from_dict(network_to_dict(net))
        assert not back.is_feedforward

    def test_json_serializable(self):
        doc = network_to_dict(build_tandem(2, 0.5))
        json.dumps(doc)  # must not raise


class TestFiles:
    def test_save_and_load(self, tmp_path):
        net = build_tandem(2, 0.5)
        path = save_network(net, tmp_path / "net.json")
        back = load_network(path)
        assert set(back.flows) == set(net.flows)

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TopologyError):
            load_network(bad)


class TestValidation:
    def test_missing_keys(self):
        with pytest.raises(TopologyError):
            network_from_dict({"servers": [], "flows": [{"name": "f"}]})

    def test_non_serializable_id(self):
        tb = TokenBucket(1.0, 0.1)
        net = Network([ServerSpec(("tuple", "id"))],
                      [Flow("f", tb, (("tuple", "id"),))])
        with pytest.raises(TopologyError):
            network_to_dict(net)
