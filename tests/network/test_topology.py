"""Unit tests for the Network model and feed-forward validation."""

import networkx as nx
import pytest

from repro.curves.token_bucket import TokenBucket
from repro.errors import InstabilityError, TopologyError
from repro.network.flow import Flow
from repro.network.topology import Discipline, Network, ServerSpec


TB = TokenBucket(1.0, 0.25, peak=1.0)


def two_server_net(rho=0.25):
    tb = TokenBucket(1.0, rho, peak=1.0)
    servers = [ServerSpec(1), ServerSpec(2)]
    flows = [
        Flow("through", tb, [1, 2]),
        Flow("c1", tb, [1]),
        Flow("c2", tb, [2]),
    ]
    return Network(servers, flows)


class TestServerSpec:
    def test_defaults(self):
        s = ServerSpec("s")
        assert s.capacity == 1.0
        assert s.discipline == Discipline.FIFO

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ServerSpec("s", capacity=0.0)

    def test_invalid_discipline(self):
        with pytest.raises(TopologyError):
            ServerSpec("s", discipline="weird")


class TestConstruction:
    def test_duplicate_server_rejected(self):
        with pytest.raises(TopologyError):
            Network([ServerSpec(1), ServerSpec(1)], [])

    def test_duplicate_flow_rejected(self):
        with pytest.raises(TopologyError):
            Network([ServerSpec(1)],
                    [Flow("f", TB, [1]), Flow("f", TB, [1])])

    def test_unknown_server_in_path_rejected(self):
        with pytest.raises(TopologyError):
            Network([ServerSpec(1)], [Flow("f", TB, [1, 2])])

    def test_cycle_rejected(self):
        servers = [ServerSpec(1), ServerSpec(2)]
        flows = [Flow("a", TB, [1, 2]), Flow("b", TB, [2, 1])]
        with pytest.raises(TopologyError):
            Network(servers, flows)

    def test_empty_network(self):
        net = Network([], [])
        assert net.max_utilization() == 0.0


class TestAccessors:
    def test_server_lookup(self):
        net = two_server_net()
        assert net.server(1).capacity == 1.0
        with pytest.raises(TopologyError):
            net.server(9)

    def test_flow_lookup(self):
        net = two_server_net()
        assert net.flow("through").n_hops == 2
        with pytest.raises(TopologyError):
            net.flow("nope")

    def test_flows_at(self):
        net = two_server_net()
        names = [f.name for f in net.flows_at(1)]
        assert names == ["c1", "through"]

    def test_flows_at_unknown_server(self):
        with pytest.raises(TopologyError):
            two_server_net().flows_at(9)

    def test_server_graph_is_copy(self):
        net = two_server_net()
        g = net.server_graph
        g.add_edge(2, 1)
        assert nx.is_directed_acyclic_graph(net.server_graph)

    def test_topological_order(self):
        net = two_server_net()
        order = net.topological_servers()
        assert order.index(1) < order.index(2)

    def test_iter_flows_sorted(self):
        names = [f.name for f in two_server_net().iter_flows()]
        assert names == sorted(names)


class TestDerived:
    def test_utilization(self):
        net = two_server_net(rho=0.25)
        assert net.utilization(1) == pytest.approx(0.5)
        assert net.max_utilization() == pytest.approx(0.5)

    def test_stability_ok(self):
        two_server_net(rho=0.25).check_stability()

    def test_stability_violation(self):
        net = two_server_net(rho=0.5)  # 2 flows x 0.5 = capacity
        with pytest.raises(InstabilityError) as exc:
            net.check_stability()
        assert exc.value.capacity == 1.0

    def test_with_flow(self):
        net = two_server_net()
        net2 = net.with_flow(Flow("new", TB, [1, 2]))
        assert "new" in net2.flows and "new" not in net.flows

    def test_without_flow(self):
        net = two_server_net().without_flow("c1")
        assert "c1" not in net.flows

    def test_without_unknown_flow_raises(self):
        with pytest.raises(TopologyError):
            two_server_net().without_flow("nope")
