"""Unit tests for the combined two-server subsystem kernel."""

import math

import pytest

from repro.core.subsystem import TwoServerSubsystem
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket


def bucket_curve(sigma=1.0, rho=0.2, peak=1.0):
    return TokenBucket(sigma, rho, peak).constraint_curve()


def paper_subsystem(u=0.8, **kw):
    rho = u / 4.0
    b = bucket_curve(rho=rho)
    return TwoServerSubsystem(
        through_curves={"conn0": b, "long_1": b},
        cross1_curves={"short_1": b},
        cross2_curves={"short_2": b, "long_2": b},
        c1=1.0, c2=1.0, **kw)


class TestAnalyze:
    def test_through_is_min_of_kernels(self):
        res = paper_subsystem().analyze()
        assert res.delay_through == pytest.approx(
            min(res.theorem1.delay_through, res.family.delay_through))

    def test_winner_reported(self):
        res = paper_subsystem().analyze()
        assert res.winning_kernel in ("theorem1", "family", "tie")

    def test_family_kernel_can_be_disabled(self):
        res = paper_subsystem(use_family_kernel=False).analyze()
        assert math.isinf(res.family.delay_through)
        assert res.delay_through == pytest.approx(
            res.theorem1.delay_through)

    def test_single_node_exactness_with_idle_second_server(self):
        # theorem1 kernel reaches the exact 2.0 here; the family gives
        # 2.2 — the subsystem takes the min
        sub = TwoServerSubsystem(
            through_curves={"f": P.affine(1.0, 0.2)},
            cross1_curves={"x": P.affine(1.0, 0.2)},
            cross2_curves={},
            c1=1.0, c2=1.0)
        res = sub.analyze()
        assert res.delay_through == pytest.approx(2.0, abs=1e-9)
        assert res.winning_kernel in ("theorem1", "tie")

    def test_cross_only_subsystem(self):
        b = bucket_curve()
        sub = TwoServerSubsystem({}, {"x": b}, {"y": b}, 1.0, 1.0)
        res = sub.analyze()
        assert res.delay_server1 == pytest.approx(0.0)  # one fresh flow
        assert res.delay_server2 == pytest.approx(0.0)

    def test_subsystem_beats_uncapped_chain(self):
        res = paper_subsystem(u=0.9).analyze()
        b = bucket_curve(rho=0.225)
        f12 = b + b
        f1 = b
        f2 = b + b
        d1 = (f12 + f1).horizontal_deviation(P.line(1.0))
        d2 = (f12.shift_left_x(d1) + f2).horizontal_deviation(P.line(1.0))
        assert res.delay_through < d1 + d2


class TestOutputs:
    def test_output_classes_cover_all_flows(self):
        sub = paper_subsystem()
        res = sub.analyze()
        outs = sub.output_curves(res)
        assert set(outs) == {"conn0", "long_1", "short_1", "short_2",
                             "long_2"}

    def test_outputs_line_capped(self):
        sub = paper_subsystem()
        res = sub.analyze()
        outs = sub.output_curves(res)
        for curve in outs.values():
            for t in (0.0, 0.5, 2.0):
                assert curve(t) <= t + 1e-9

    def test_through_output_uses_through_delay(self):
        sub = paper_subsystem()
        res = sub.analyze()
        outs = sub.output_curves(res)
        b = sub.through_curves["conn0"]
        assert outs["conn0"](100.0) == pytest.approx(
            b(100.0 + res.delay_through))
