"""Unit tests for the static-priority integrated pair (paper §5 ext)."""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.core.sp_subsystem import sp_pair_bound
from repro.curves.token_bucket import TokenBucket
from repro.errors import AnalysisError
from repro.network.flow import Flow
from repro.network.topology import Discipline, Network, ServerSpec
from repro.sim.simulator import NetworkSimulator
from repro.sim.sources import GreedySource


def curves(rho=0.15, sigma=1.0, names=("a",)):
    tb = TokenBucket(sigma, rho, peak=1.0)
    return {n: tb.constraint_curve() for n in names}


class TestSpPairBound:
    def test_requires_through_traffic(self):
        with pytest.raises(AnalysisError):
            sp_pair_bound({}, curves(), curves(), {"a": 0}, 1.0, 1.0)

    def test_requires_single_through_class(self):
        th = curves(names=("t1", "t2"))
        with pytest.raises(AnalysisError):
            sp_pair_bound(th, {}, {}, {"t1": 0, "t2": 1}, 1.0, 1.0)

    def test_never_worse_than_sp_decomposition(self):
        th = curves(names=("t",), rho=0.2)
        x1 = curves(names=("x1",), rho=0.2)
        x2 = curves(names=("x2",), rho=0.2)
        prios = {"t": 1, "x1": 0, "x2": 0}
        res = sp_pair_bound(th, x1, x2, prios, 1.0, 1.0)
        # decomposition: d1 + d2 with uncapped inflation
        from repro.servers.static_priority import sp_delay_bounds
        d1 = sp_delay_bounds(dict(th) | dict(x1),
                             {"t": 1, "x1": 0}, 1.0)["t"]
        inflated = th["t"].shift_left_x(d1)
        d2 = sp_delay_bounds({"t": inflated, "x2": x2["x2"]},
                             {"t": 1, "x2": 0}, 1.0)["t"]
        assert res.delay_through <= d1 + d2 + 1e-9

    def test_high_priority_through_unimpeded(self):
        # top-priority peak-limited through flow never queues
        th = curves(names=("t",))
        x = curves(names=("x",))
        res = sp_pair_bound(th, x, {}, {"t": 0, "x": 1}, 1.0, 1.0)
        assert res.delay_through == pytest.approx(0.0, abs=1e-9)

    def test_cross_bounds_reported(self):
        th = curves(names=("t",))
        x1 = curves(names=("x1",))
        x2 = curves(names=("x2",))
        res = sp_pair_bound(th, x1, x2, {"t": 0, "x1": 1, "x2": 1},
                            1.0, 1.0)
        assert set(res.delay1_by_flow) == {"x1"}
        assert set(res.delay2_by_flow) == {"x2"}
        assert res.delay1_by_flow["x1"] > 0


def sp_tandem_pair_net(conn_prio=1, cross_prio=0, rho=0.15):
    tb = TokenBucket(1.0, rho, peak=1.0)
    servers = [ServerSpec(1, 1.0, Discipline.STATIC_PRIORITY),
               ServerSpec(2, 1.0, Discipline.STATIC_PRIORITY)]
    flows = [
        Flow("through", tb, (1, 2), priority=conn_prio),
        Flow("x1", tb, (1,), priority=cross_prio),
        Flow("x2", tb, (2,), priority=cross_prio),
    ]
    return Network(servers, flows)


class TestIntegratedSpPairs:
    def test_driver_uses_sp_pair(self):
        rep = IntegratedAnalysis().analyze(sp_tandem_pair_net())
        assert rep.meta["kernel_wins"].get((1, 2)) == "sp_theorem1"
        fd = rep.delays["through"]
        assert [blk for blk, _ in fd.contributions] == [(1, 2)]

    def test_beats_sp_decomposition(self):
        net = sp_tandem_pair_net(conn_prio=2, rho=0.2)
        integ = IntegratedAnalysis().analyze(net)
        dec = DecomposedAnalysis().analyze(net)
        for name in net.flows:
            assert integ.delay_of(name) <= dec.delay_of(name) + 1e-9
        assert integ.delay_of("through") < dec.delay_of("through")

    def test_mixed_through_classes_fall_back(self):
        tb = TokenBucket(1.0, 0.1, peak=1.0)
        servers = [ServerSpec(1, 1.0, Discipline.STATIC_PRIORITY),
                   ServerSpec(2, 1.0, Discipline.STATIC_PRIORITY)]
        flows = [Flow("hi", tb, (1, 2), priority=0),
                 Flow("lo", tb, (1, 2), priority=1)]
        rep = IntegratedAnalysis().analyze(Network(servers, flows))
        fd = rep.delays["hi"]
        assert [blk for blk, _ in fd.contributions] == [(1,), (2,)]

    def test_sound_vs_simulation(self):
        net = sp_tandem_pair_net(conn_prio=1, cross_prio=0, rho=0.2)
        rep = IntegratedAnalysis().analyze(net)
        pkt = 0.05
        sources = {n: GreedySource(f.bucket, pkt)
                   for n, f in net.flows.items()}
        sim = NetworkSimulator(net, sources).run(100.0)
        # slack: packetization + one non-preemption blocking per hop
        slack = 2 * pkt + 2 * pkt
        for name in net.flows:
            assert sim.max_delay(name) <= rep.delay_of(name) + slack
